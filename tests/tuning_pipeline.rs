//! Integration of the Auto-tuning Runtime with the full simulation: the
//! tuner must turn an SLA-violating manual scheme into a safe one while
//! keeping most of the memory saving (the Fig. 8 claim, at small scale).

use daos::{run, score_inputs, Normalized, RunConfig};
use daos_mm::clock::{ms, sec};
use daos_mm::MachineProfile;
use daos_tuner::{tune, DefaultScore, ScoreFn, TunerConfig};
use daos_workloads::{Behavior, Suite, WorkloadSpec};

/// A thrash-prone streaming workload: it re-sweeps its whole footprint
/// every few seconds, so the manual min_age of 1 s evicts pages that the
/// next sweep faults right back in.
fn thrashy() -> WorkloadSpec {
    WorkloadSpec {
        name: "thrashy",
        suite: Suite::Splash2x,
        footprint: 48 << 20,
        nr_epochs: 6400, // 4 sweeps
        compute_ns: ms(1),
        behavior: Behavior::Streaming {
            window_frac: 0.1,
            stride: 1,
            apc: 8.0,
            sweep_period: sec(8),
        },
    }
}

#[test]
fn autotuning_recovers_from_a_bad_manual_threshold() {
    let machine = MachineProfile::i3_metal();
    let spec = thrashy();
    let baseline = run(&machine, &RunConfig::baseline(), &spec, 5).unwrap();

    // Manual: aggressive 1 s threshold → refault storm.
    let manual = run(&machine, &RunConfig::prcl_with_min_age(sec(1)), &spec, 5).unwrap();
    let nm = Normalized::of(&baseline, &manual);
    assert!(
        nm.slowdown_pct() > 10.0,
        "the manual scheme must hurt for this test to be meaningful: {:.1}%",
        nm.slowdown_pct()
    );

    // Tune with 10 samples over min_age ∈ [0, 20] s.
    let mut score_fn = DefaultScore::default();
    let cfg = TunerConfig {
        time_limit: sec(100),
        unit_work_time: sec(10),
        range: (0.0, 20.0),
        seed: 5,
    };
    let result = tune(&cfg, |min_age| {
        let r = run(
            &machine,
            &RunConfig::prcl_with_min_age((min_age * 1e9) as u64),
            &spec,
            5,
        )
        .unwrap();
        score_fn.score(&score_inputs(&baseline, &r))
    });
    assert_eq!(result.samples.len(), 10);

    let auto = run(
        &machine,
        &RunConfig::prcl_with_min_age((result.best_x * 1e9) as u64),
        &spec,
        5,
    )
    .unwrap();
    let na = Normalized::of(&baseline, &auto);
    assert!(
        na.slowdown_pct() < nm.slowdown_pct() / 2.0,
        "auto ({:.1}%) must remove most of the manual slowdown ({:.1}%)",
        na.slowdown_pct(),
        nm.slowdown_pct()
    );
    assert!(
        na.slowdown_pct() < 12.0,
        "auto-tuned scheme respects the SLA region: {:.1}%",
        na.slowdown_pct()
    );
}

#[test]
fn tuner_keeps_savings_on_a_safe_workload() {
    // Mostly-idle workload: aggressive settings are fine, so the tuner
    // must NOT retreat to a do-nothing threshold.
    let machine = MachineProfile::i3_metal();
    let spec = WorkloadSpec {
        name: "idle",
        suite: Suite::Parsec3,
        footprint: 32 << 20,
        nr_epochs: 3000,
        compute_ns: ms(1),
        behavior: Behavior::MostlyIdle { active_frac: 0.1, apc: 4.0, stray_prob: 0.0 },
    };
    let baseline = run(&machine, &RunConfig::baseline(), &spec, 5).unwrap();
    let mut score_fn = DefaultScore::default();
    let cfg = TunerConfig {
        time_limit: sec(80),
        unit_work_time: sec(10),
        range: (0.0, 10.0),
        seed: 5,
    };
    let result = tune(&cfg, |min_age| {
        let r = run(
            &machine,
            &RunConfig::prcl_with_min_age((min_age * 1e9) as u64),
            &spec,
            5,
        )
        .unwrap();
        score_fn.score(&score_inputs(&baseline, &r))
    });
    let auto = run(
        &machine,
        &RunConfig::prcl_with_min_age((result.best_x * 1e9) as u64),
        &spec,
        5,
    )
    .unwrap();
    let na = Normalized::of(&baseline, &auto);
    assert!(
        na.memory_saving_pct() > 40.0,
        "tuned scheme still saves plenty: {:.1}%",
        na.memory_saving_pct()
    );
    assert!(na.slowdown_pct() < 10.0);
}
