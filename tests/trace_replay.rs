//! Integration: the exported JSONL event log is a faithful replay
//! source. Running a workload with the collector installed, exporting
//! the stream, and re-parsing it must re-derive the monitor's Fig. 7
//! overhead bound (`max checks/tick <= 2 * max_nr_regions`) — the same
//! number the runner reports through `OverheadStats`.

use daos::{run, RunConfig};
use daos_mm::MachineProfile;
use daos_trace::{events_from_jsonl, Collector, Event};
use daos_workloads::by_path;

#[test]
fn jsonl_replay_rederives_fig7_overhead_bound() {
    let machine = MachineProfile::i3_metal();
    let mut spec = by_path("parsec3/freqmine").unwrap();
    spec.nr_epochs = 1_500; // shortened run; the bound is per-tick, not per-run

    // Generous ring: losing early ticks to overwrite would understate
    // the replayed maximum.
    let collector = Collector::builder().ring_capacity(1 << 18).build().unwrap();
    daos_trace::install(collector).unwrap();
    let run_result = run(&machine, &RunConfig::prcl(), &spec, 42);
    let collector = daos_trace::take().expect("collector installed above");
    let result = run_result.unwrap();
    assert_eq!(collector.ring().dropped(), 0, "ring too small for a faithful replay");

    // Export and re-parse: the JSONL round trip is the replay source.
    let jsonl = daos_trace::export_collector(&collector);
    let events = events_from_jsonl(&jsonl).unwrap();
    assert!(!events.is_empty());

    let max_checks = events
        .iter()
        .filter_map(|t| match t.event {
            Event::SamplingTick { checks, .. } => Some(checks),
            _ => None,
        })
        .max()
        .expect("a prcl run must emit sampling ticks");

    // The replayed maximum is the runner's reported maximum…
    let overhead = result.overhead.expect("prcl monitors, so overhead is recorded");
    assert_eq!(max_checks, overhead.max_checks_per_tick);

    // …and both respect the paper's bound: each region costs at most
    // one mkold and one young check per tick.
    let bound = 2 * RunConfig::prcl().attrs.max_nr_regions as u64;
    assert!(
        max_checks <= bound,
        "max {max_checks} checks/tick exceeds Fig. 7 bound {bound}"
    );

    // The metrics registry agrees with the event stream on tick count.
    let ticks = events
        .iter()
        .filter(|t| matches!(t.event, Event::SamplingTick { .. }))
        .count() as u64;
    let hist = collector
        .registry()
        .hist(daos_trace::keys::MONITOR_CHECKS_PER_TICK)
        .expect("monitor records its per-tick histogram");
    assert_eq!(ticks, hist.count());
    assert_eq!(max_checks, hist.max());
}
