//! Integration: the offline report pipeline is *exact*. A record
//! rebuilt from a trace equals the record the runner kept in memory, a
//! heatmap driven from the trace equals the in-memory Fig. 6 heatmap
//! cell-for-cell, and a run without the collector emits zero span
//! events (the zero-overhead pin, observed end to end).

use daos::{biggest_active_span, run, Heatmap, RunConfig};
use daos_mm::MachineProfile;
use daos_report::{record_from_doc, Profile, Summary};
use daos_trace::{parse_export, Collector, Event};
use daos_workloads::by_path;

fn traced_run(seed: u64) -> (daos::RunResult, Collector) {
    let machine = MachineProfile::i3_metal();
    let mut spec = by_path("parsec3/freqmine").unwrap();
    spec.nr_epochs = 1_000;
    let collector = Collector::builder().ring_capacity(1 << 20).build().unwrap();
    daos_trace::install(collector).unwrap();
    let run_result = run(&machine, &RunConfig::rec(), &spec, seed);
    let collector = daos_trace::take().expect("collector installed above");
    (run_result.unwrap(), collector)
}

#[test]
fn trace_rebuilt_record_equals_the_in_memory_record() {
    let (result, collector) = traced_run(7);
    assert_eq!(collector.ring().dropped(), 0, "ring too small for an exact rebuild");

    // Full offline path: export -> parse -> rebuild.
    let doc = parse_export(&daos_trace::export_collector(&collector)).unwrap();
    assert!(doc.is_complete());
    let rebuilt = record_from_doc(&doc);
    let live = result.record.as_ref().expect("rec config records");
    assert_eq!(live, &rebuilt, "trace-rebuilt record diverged from the in-memory one");

    // Therefore the Fig. 6 heatmap is identical cell-for-cell.
    let span = biggest_active_span(live).expect("freqmine shows activity");
    let from_live = Heatmap::from_record(live, span, 24, 12).unwrap();
    let from_trace =
        daos_report::heatmap_from_doc(&doc, 24, 12).expect("trace holds complete windows");
    assert_eq!(from_live.cells, from_trace.cells);
    assert_eq!(from_live.time_span, from_trace.time_span);
    assert_eq!(from_live.addr_span, from_trace.addr_span);

    // And the summary sees a consistent document.
    let summary = Summary::of(&doc);
    assert!(summary.is_complete());
    assert_eq!(summary.nr_events, doc.events.len() as u64);
}

#[test]
fn profile_cross_checks_overhead_and_sees_all_phases() {
    let (result, collector) = traced_run(11);
    let doc = parse_export(&daos_trace::export_collector(&collector)).unwrap();
    let profile = Profile::of(&doc);

    // Sample spans must sum to exactly the monitor's own accounting.
    assert!(profile.overhead_consistent(), "{}", profile.render());
    let overhead = result.overhead.expect("rec config monitors");
    assert_eq!(profile.sample_span_ns, overhead.work_ns);

    // A monitoring run exercises sample + aggregate + split/merge.
    let names: Vec<&str> = profile.phases.iter().map(|p| p.phase.key_name()).collect();
    for want in ["sample", "aggregate", "split_merge"] {
        assert!(names.contains(&want), "missing phase {want} in {names:?}");
    }
}

#[test]
fn disabled_collection_emits_zero_span_events() {
    // Same workload, no collector installed: the spans' bodies still run
    // (they ARE the cost model) but no events may exist anywhere.
    let machine = MachineProfile::i3_metal();
    let mut spec = by_path("parsec3/freqmine").unwrap();
    spec.nr_epochs = 300;
    assert!(!daos_trace::enabled());
    let result = run(&machine, &RunConfig::rec(), &spec, 3).unwrap();
    assert!(result.record.is_some(), "the run itself is unaffected");

    // An empty trace document reports exactly that: zero spans.
    let doc = parse_export("").unwrap();
    let profile = Profile::of(&doc);
    assert!(profile.phases.is_empty());
    assert!(profile.render().contains("no spans recorded"));
}

#[test]
fn span_events_nest_enter_before_exit() {
    let (_, collector) = traced_run(5);
    let events = collector.events();
    let mut open: Vec<daos_trace::Phase> = Vec::new();
    let mut seen = 0u64;
    for te in &events {
        match te.event {
            Event::SpanEnter { phase } => open.push(phase),
            Event::SpanExit { phase, dur_ns } => {
                let entered = open.pop().expect("exit without enter");
                assert_eq!(entered, phase, "spans must close in LIFO order");
                let _ = dur_ns;
                seen += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");
    assert!(seen > 0, "a monitored run must record spans");
}
