//! Cross-crate integration tests: the full monitor → engine → substrate
//! pipeline on reduced-scale workloads.

use daos::{run, Normalized, RunConfig};
use daos_mm::clock::{ms, sec};
use daos_mm::MachineProfile;
use daos_workloads::{Behavior, Suite, Workload, WorkloadSpec};

/// A scaled-down workload that still exercises every moving part
/// (~8 s virtual, < 200 ms real).
fn small(behavior: Behavior) -> WorkloadSpec {
    WorkloadSpec {
        name: "small",
        suite: Suite::Parsec3,
        footprint: 24 << 20,
        nr_epochs: 3000,
        compute_ns: ms(1),
        behavior,
    }
}

fn machine() -> MachineProfile {
    MachineProfile::i3_metal()
}

#[test]
fn monitor_finds_the_ground_truth_hot_set() {
    let spec = small(Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.0 });
    let r = run(&machine(), &RunConfig::rec(), &spec, 7).unwrap();
    let record = r.record.unwrap();
    let agg = record.aggregations.last().unwrap();

    // Ground truth: the workload's hot range is the first quarter of its
    // footprint. Weighted-frequency mass must concentrate there.
    let mut wl = daos_workloads::instantiate(spec, 7);
    let mut sys = daos_mm::MemorySystem::new(machine(), daos_mm::SwapConfig::paper_zram(), 7);
    wl.setup(&mut sys, daos_mm::ThpMode::Never).unwrap();
    let hot = wl.hot_ranges(0)[0];

    let mass = |inside: bool| -> f64 {
        agg.regions
            .iter()
            .filter(|r| hot.contains(r.range.start) == inside)
            .map(|r| agg.freq_ratio(r) * r.range.len() as f64)
            .sum()
    };
    let hot_mass = mass(true);
    let cold_mass = mass(false);
    assert!(
        hot_mass > 5.0 * cold_mass.max(1.0),
        "hot mass {hot_mass} must dominate cold mass {cold_mass}"
    );
    // And the hot-byte estimate lands near the true 6 MiB.
    let est = agg.hot_bytes_estimate() as f64 / (1 << 20) as f64;
    assert!((3.0..12.0).contains(&est), "hot estimate {est} MiB vs truth 6 MiB");
}

#[test]
fn monitoring_overhead_bounded_and_target_size_independent() {
    // rec monitors 24 MiB; prec monitors the whole 512 MiB machine.
    let spec = small(Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.0 });
    let rec = run(&machine(), &RunConfig::rec(), &spec, 7).unwrap();
    let prec = run(&machine(), &RunConfig::prec(), &spec, 7).unwrap();
    let cap = 2 * RunConfig::rec().attrs.max_nr_regions as u64;
    for r in [&rec, &prec] {
        let o = r.overhead.unwrap();
        assert!(o.max_checks_per_tick <= cap, "{}: {} checks", r.config, o.max_checks_per_tick);
        assert!(r.monitor_cpu_share() < 0.05, "{}: share {}", r.config, r.monitor_cpu_share());
    }
    // 21x bigger target, same order of work per tick.
    let rec_avg = rec.overhead.unwrap().avg_checks_per_tick();
    let prec_avg = prec.overhead.unwrap().avg_checks_per_tick();
    assert!(
        prec_avg < 8.0 * rec_avg.max(20.0),
        "prec {prec_avg} vs rec {rec_avg} checks/tick"
    );
}

#[test]
fn prcl_pipeline_reclaims_idle_memory() {
    let spec = small(Behavior::MostlyIdle { active_frac: 0.1, apc: 4.0, stray_prob: 0.0 });
    let base = run(&machine(), &RunConfig::baseline(), &spec, 7).unwrap();
    let prcl = run(&machine(), &RunConfig::prcl_with_min_age(sec(1)), &spec, 7).unwrap();
    let n = Normalized::of(&base, &prcl);
    assert!(n.memory_saving_pct() > 40.0, "saving {}", n.memory_saving_pct());
    assert!(n.slowdown_pct() < 15.0, "slowdown {}", n.slowdown_pct());
    assert!(prcl.kstats.damos_pageouts > 0);
    assert_eq!(prcl.scheme_stats.len(), 1);
    assert!(prcl.scheme_stats[0].nr_applied > 0);
}

#[test]
fn thp_pipeline_trades_speed_for_bloat_and_ethp_rebalances() {
    let spec = WorkloadSpec {
        footprint: 48 << 20,
        ..small(Behavior::Streaming {
            window_frac: 0.2,
            stride: 2,
            apc: 16.0,
            sweep_period: sec(2),
        })
    };
    let base = run(&machine(), &RunConfig::baseline(), &spec, 7).unwrap();
    let thp = run(&machine(), &RunConfig::thp(), &spec, 7).unwrap();
    let ethp = run(&machine(), &RunConfig::ethp(), &spec, 7).unwrap();
    let nt = Normalized::of(&base, &thp);
    let ne = Normalized::of(&base, &ethp);
    assert!(nt.performance > 1.03, "thp gain {}", nt.performance);
    assert!(nt.memory_efficiency < 0.8, "thp bloat {}", nt.memory_efficiency);
    assert!(ne.performance > 1.0, "ethp keeps some gain: {}", ne.performance);
    assert!(
        ne.memory_efficiency > nt.memory_efficiency,
        "ethp bloats less: {} vs {}",
        ne.memory_efficiency,
        nt.memory_efficiency
    );
}

#[test]
fn runs_are_deterministic_across_all_configs() {
    let spec = small(Behavior::PhaseShift {
        nr_phases: 3,
        hot_frac: 0.2,
        apc: 4.0,
        phase_len: sec(1),
    });
    for cfg in RunConfig::paper_configs() {
        let a = run(&machine(), &cfg, &spec, 11).unwrap();
        let b = run(&machine(), &cfg, &spec, 11).unwrap();
        assert_eq!(a.runtime_ns, b.runtime_ns, "{} runtime", cfg.name);
        assert_eq!(a.avg_rss, b.avg_rss, "{} rss", cfg.name);
        assert_eq!(a.stats, b.stats, "{} stats", cfg.name);
    }
}

#[test]
fn machines_differ_but_all_complete() {
    let spec = small(Behavior::CompactHot { hot_frac: 0.3, apc: 6.0, cold_touch_prob: 0.001 });
    let runtimes: Vec<u64> = MachineProfile::paper_machines()
        .iter()
        .map(|m| run(m, &RunConfig::baseline(), &spec, 3).unwrap().runtime_ns)
        .collect();
    assert_eq!(runtimes.len(), 3);
    // z1d (4 GHz) must beat i3 (3 GHz) on a compute-heavy workload.
    assert!(runtimes[2] < runtimes[0], "z1d {} vs i3 {}", runtimes[2], runtimes[0]);
}
