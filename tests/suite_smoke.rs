//! Whole-suite smoke: every one of the 24 workload analogs runs through
//! the full monitored pipeline (truncated) without error, stays within
//! its declared footprint, and is observable by the monitor.

use daos::{run, RunConfig};
use daos_mm::MachineProfile;
use daos_workloads::paper_suite;

#[test]
fn all_24_workloads_run_monitored() {
    let machine = MachineProfile::i3_metal();
    for mut spec in paper_suite() {
        // Truncate for test time; behaviour machinery is identical.
        spec.nr_epochs = spec.nr_epochs.min(400);
        let r = run(&machine, &RunConfig::rec(), &spec, 17)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.path_name()));
        assert!(r.runtime_ns > 0, "{}", spec.path_name());
        assert!(
            r.peak_rss <= spec.footprint + (1 << 20),
            "{}: peak RSS {} exceeds footprint {}",
            spec.path_name(),
            r.peak_rss,
            spec.footprint
        );
        let record = r.record.expect("rec records");
        assert!(!record.is_empty(), "{}: no aggregations", spec.path_name());
        // The monitor saw *some* activity on every workload.
        let active = record
            .aggregations
            .iter()
            .any(|a| a.regions.iter().any(|reg| reg.nr_accesses > 0));
        assert!(active, "{}: monitor saw no accesses", spec.path_name());
        // Overhead bound held.
        let o = r.overhead.unwrap();
        assert!(
            o.max_checks_per_tick <= 2 * RunConfig::rec().attrs.max_nr_regions as u64,
            "{}: {} checks/tick",
            spec.path_name(),
            o.max_checks_per_tick
        );
    }
}
