//! Tooling-level integration: record files, WSS reports, trace replay
//! and the scheme DSL driving real runs end to end.

use daos::{record_from_csv, record_to_csv, run, RunConfig, WssReport};
use daos_mm::clock::ms;
use daos_mm::{AccessBatch, MachineProfile, MemorySystem, SwapConfig, ThpMode};
use daos_workloads::{Behavior, Suite, Trace, TraceWorkload, Workload, WorkloadSpec};

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "tooling",
        suite: Suite::Parsec3,
        footprint: 16 << 20,
        nr_epochs: 1500,
        compute_ns: ms(1),
        behavior: Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.0 },
    }
}

#[test]
fn record_file_roundtrip_preserves_analysis_results() {
    let machine = MachineProfile::i3_metal();
    let result = run(&machine, &RunConfig::rec(), &small_spec(), 3).unwrap();
    let record = result.record.unwrap();

    let csv = record_to_csv(&record);
    let reloaded = record_from_csv(&csv).unwrap();
    assert_eq!(record, reloaded);

    // Analyses computed on the reloaded record agree exactly.
    let wss_a = WssReport::from_record(&record);
    let wss_b = WssReport::from_record(&reloaded);
    assert_eq!(wss_a, wss_b);
    // The hot quarter of 16 MiB is 4 MiB; the median WSS estimate should
    // sit in that ballpark.
    let median = wss_a.percentile(50.0);
    assert!(
        (2 << 20..8 << 20).contains(&median),
        "median WSS {} vs true hot set 4 MiB",
        median
    );

    let span_a = daos::biggest_active_span(&record).unwrap();
    let span_b = daos::biggest_active_span(&reloaded).unwrap();
    assert_eq!(span_a, span_b);
}

#[test]
fn trace_recorded_from_suite_workload_replays_deterministically() {
    let spec = small_spec();
    let machine = MachineProfile::i3_metal();

    // Record the generator into a trace, write it to text, read it back.
    let mut recorder = daos_workloads::SyntheticWorkload::new(spec, 9);
    let mut sys = MemorySystem::new(machine.clone(), SwapConfig::paper_zram(), 9);
    recorder.setup(&mut sys, ThpMode::Never).unwrap();
    let base = recorder.region().start;
    let trace = Trace::record(&mut recorder, spec.footprint, base);
    let text = trace.to_text();
    let reloaded = Trace::from_text(&text).unwrap();
    assert_eq!(trace, reloaded);

    // Replay through the full substrate; hot pages must be the ones the
    // original would have touched.
    let mut replay = TraceWorkload::new("tooling", reloaded);
    let mut sys2 = MemorySystem::new(machine, SwapConfig::paper_zram(), 10);
    let pid = replay.setup(&mut sys2, ThpMode::Never).unwrap();
    let mut batches = Vec::new();
    for idx in 0..replay.nr_epochs().min(50) {
        batches.clear();
        replay.epoch(idx, 0, &mut batches);
        for b in &batches {
            sys2.apply_access(pid, b).unwrap();
        }
    }
    // The hot quarter is resident; the cold tail was never touched.
    assert_eq!(sys2.rss_bytes(pid), 4 << 20);
}

#[test]
fn watermarked_reclaim_only_fires_under_pressure() {
    use daos_schemes::{
        parse_scheme_line, SchemeTarget, SchemesEngine, WatermarkMetric, Watermarks,
    };
    let mut machine = MachineProfile::i3_metal();
    machine.dram_bytes = 64 << 20;
    let mut sys = MemorySystem::new(machine, SwapConfig::paper_zram(), 4);
    let pid = sys.spawn();
    let idle = sys.mmap(pid, 16 << 20, ThpMode::Never).unwrap();
    sys.apply_access(pid, &AccessBatch::all(idle, 1.0)).unwrap();
    for p in idle.pages() {
        sys.check_accessed_clear(pid, p);
    }

    let scheme = parse_scheme_line("min max min min min max pageout").unwrap();
    let config = scheme
        .configure()
        .watermarks(Watermarks {
            metric: WatermarkMetric::FreeMemPermille,
            high: 600,
            mid: 500,
            low: 50,
        })
        .build()
        .unwrap();
    let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
    let agg = daos_monitor::Aggregation {
        at: 0,
        regions: vec![daos_monitor::RegionInfo {
            range: idle,
            nr_accesses: 0,
            age: 100,
        }],
        max_nr_accesses: 20,
        aggregation_interval: ms(100),
    };

    // 75% free: dormant.
    let pass = engine.on_aggregation(&mut sys, &agg);
    assert_eq!(pass.paged_out, 0);

    // Allocate another 24 MiB → 37% free: the scheme wakes and reclaims.
    let pressure = sys.mmap(pid, 24 << 20, ThpMode::Never).unwrap();
    sys.apply_access(pid, &AccessBatch::all(pressure, 1.0)).unwrap();
    let pass = engine.on_aggregation(&mut sys, &agg);
    assert_eq!(pass.paged_out, 16 << 20, "idle area reclaimed under pressure");
}
