//! `report profile`: per-phase latency breakdown from the span-duration
//! histograms, plus a cross-check of the monitor's `OverheadStats`
//! accounting against summed span time.
//!
//! Durations are **virtual** nanoseconds (the simulated CPU cost each
//! phase charged), so the profile is exactly as deterministic as the run
//! — and a run with collection disabled contains zero span events, which
//! this view states explicitly (the zero-overhead pin made visible).

use daos_trace::{keys, Collector, Histogram, Phase, Registry, TraceDoc};

/// One phase's latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// The pipeline phase.
    pub phase: Phase,
    /// Completed spans.
    pub count: u64,
    /// p50 / p95 / p99 duration estimates (log2-bucket midpoints,
    /// clamped to the exact extremes).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact total virtual time spent in the phase.
    pub total_ns: u64,
}

impl PhaseStats {
    fn from_hist(phase: Phase, h: &Histogram) -> PhaseStats {
        PhaseStats {
            phase,
            count: h.count(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            total_ns: h.sum(),
        }
    }
}

/// The `report profile` view.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Phases with at least one completed span, in pipeline order.
    pub phases: Vec<PhaseStats>,
    /// `monitor.work_ns` as the monitor's own accounting recorded it.
    pub monitor_work_ns: u64,
    /// Total Sample-span time — must equal [`Self::monitor_work_ns`] on
    /// an untampered trace (the cross-check).
    pub sample_span_ns: u64,
}

impl Profile {
    /// Extract the profile from a parsed document. Prefers the metrics
    /// trailer (the live registry, complete even if the ring dropped
    /// events); falls back to replaying the event stream.
    pub fn of(doc: &TraceDoc) -> Profile {
        match &doc.metrics {
            Some(reg) => Self::from_registry(reg),
            None => Self::from_registry(Collector::replay(&doc.events).registry()),
        }
    }

    /// Extract the profile from a registry.
    pub fn from_registry(reg: &Registry) -> Profile {
        let phases: Vec<PhaseStats> = Phase::ALL
            .iter()
            .filter_map(|&p| reg.hist(&keys::span(p)).map(|h| PhaseStats::from_hist(p, h)))
            .collect();
        let sample_span_ns = phases
            .iter()
            .find(|s| s.phase == Phase::Sample)
            .map_or(0, |s| s.total_ns);
        Profile {
            phases,
            monitor_work_ns: reg.counter(keys::MONITOR_WORK_NS),
            sample_span_ns,
        }
    }

    /// Whether the monitor's `OverheadStats` accounting agrees with the
    /// summed Sample-span time.
    pub fn overhead_consistent(&self) -> bool {
        self.sample_span_ns == self.monitor_work_ns
    }

    /// Render the per-phase table and the cross-check verdict.
    pub fn render(&self) -> String {
        if self.phases.is_empty() {
            return "no spans recorded in this trace (collection disabled or pre-span recording)\n"
                .to_string();
        }
        let mut out = String::from("phase          count      p50(ns)      p95(ns)      p99(ns)    total(ns)\n");
        for s in &self.phases {
            out.push_str(&format!(
                "{:<12} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
                s.phase.key_name(),
                s.count,
                s.p50,
                s.p95,
                s.p99,
                s.total_ns
            ));
        }
        if self.overhead_consistent() {
            out.push_str(&format!(
                "cross-check: sample spans sum to {} ns == monitor.work_ns (OK)\n",
                self.sample_span_ns
            ));
        } else {
            out.push_str(&format!(
                "cross-check: MISMATCH — sample spans sum to {} ns but monitor.work_ns is {}\n",
                self.sample_span_ns, self.monitor_work_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_from_span_histograms() {
        let mut reg = Registry::new();
        for dur in [100u64, 100, 100, 900] {
            reg.hist_record(&keys::span(Phase::Sample), dur);
        }
        reg.hist_record(&keys::span(Phase::SchemeApply), 5000);
        reg.counter_add(keys::MONITOR_WORK_NS, 1200);
        let p = Profile::from_registry(&reg);
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases[0].phase, Phase::Sample);
        assert_eq!(p.phases[0].count, 4);
        assert_eq!(p.phases[0].total_ns, 1200);
        assert_eq!(p.phases[1].phase, Phase::SchemeApply);
        assert!(p.overhead_consistent());
        let text = p.render();
        assert!(text.contains("sample"), "{text}");
        assert!(text.contains("(OK)"), "{text}");
    }

    #[test]
    fn mismatch_is_called_out() {
        let mut reg = Registry::new();
        reg.hist_record(&keys::span(Phase::Sample), 100);
        reg.counter_add(keys::MONITOR_WORK_NS, 999);
        let p = Profile::from_registry(&reg);
        assert!(!p.overhead_consistent());
        assert!(p.render().contains("MISMATCH"));
    }

    #[test]
    fn span_free_trace_states_it() {
        let doc = TraceDoc { events: Vec::new(), dropped: 0, ring_capacity: 16, metrics: None };
        let p = Profile::of(&doc);
        assert!(p.phases.is_empty());
        assert!(p.render().contains("no spans recorded"));
    }
}
