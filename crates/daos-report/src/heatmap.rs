//! `report heatmap`: drive the Fig. 6 rasteriser from a trace instead of
//! an in-memory `MonitorRecord`.

use daos::{biggest_active_span, Heatmap};
use daos_trace::TraceDoc;

use crate::record::record_from_doc;

/// Rebuild the record from `doc` and rasterise it over its biggest
/// actively-accessed span. `None` when the trace holds no complete
/// aggregation window (or `nr_cols`/`nr_rows` is 0).
pub fn heatmap_from_doc(doc: &TraceDoc, nr_cols: usize, nr_rows: usize) -> Option<Heatmap> {
    let record = record_from_doc(doc);
    let span = biggest_active_span(&record)?;
    Heatmap::from_record(&record, span, nr_cols, nr_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_trace::{Event, TimedEvent};

    fn doc(events: Vec<TimedEvent>) -> TraceDoc {
        TraceDoc { events, dropped: 0, ring_capacity: 1024, metrics: None }
    }

    #[test]
    fn trace_drives_the_rasteriser() {
        let mut events = Vec::new();
        for t in 0..8u64 {
            // Low half hot, high half idle, every window.
            events.push(TimedEvent {
                at: t * 100,
                event: Event::RegionSnapshot { start: 0, end: 1 << 20, nr_accesses: 18, age: 0 },
            });
            events.push(TimedEvent {
                at: t * 100,
                event: Event::RegionSnapshot {
                    start: 1 << 20,
                    end: 2 << 20,
                    nr_accesses: 0,
                    age: 5,
                },
            });
            events.push(TimedEvent {
                at: t * 100,
                event: Event::Aggregation { nr_regions: 2, window_ns: 100, max_nr_accesses: 20 },
            });
        }
        let hm = heatmap_from_doc(&doc(events), 8, 6).unwrap();
        assert_eq!((hm.nr_cols, hm.nr_rows), (8, 6));
        assert!(hm.cells.iter().all(|&c| (0.0..=1.0).contains(&c)));
        assert!(hm.mean_intensity(0.0..0.5, 0.0..1.0) > 0.5);
    }

    #[test]
    fn empty_trace_gives_none() {
        assert!(heatmap_from_doc(&doc(Vec::new()), 8, 6).is_none());
    }
}
