//! Offline analysis of exported traces — the reproduction's analogue of
//! `damo report`: every view here is computed deterministically from a
//! JSONL document written by `daos trace` (see `daos_trace::parse_export`),
//! with no access to the live simulation.
//!
//! The views:
//! - [`record_from_doc`] rebuilds a `MonitorRecord` from the
//!   `RegionSnapshot`/`Aggregation` event pairs, which feeds
//! - [`WssTimeline`] (working-set-size series + percentiles) and
//! - [`heatmap_from_doc`] (the Fig. 6 rasteriser, driven from a trace);
//! - [`SchemeTimeline`] summarises each scheme's tried/applied bytes,
//!   quota throttling and watermark activation windows;
//! - [`Summary`] is the run header: event counts, drop accounting, and a
//!   trailer-vs-replay integrity check;
//! - [`Profile`] extracts per-phase span percentiles and cross-checks
//!   the monitor's charged work against summed span time.
//!
//! Everything renders to returned `String`s — per the workspace print
//! policy only the CLI writes to stdout.

pub mod heatmap;
pub mod profile;
pub mod record;
pub mod schemes;
pub mod summary;
pub mod wss;

pub use heatmap::heatmap_from_doc;
pub use profile::{PhaseStats, Profile};
pub use record::{record_from_doc, record_from_events};
pub use schemes::{scheme_timelines, SchemeTimeline};
pub use summary::Summary;
pub use wss::WssTimeline;
