//! `report schemes`: per-scheme apply timeline — tried/applied volume,
//! quota throttling, and watermark activation windows, all derived from
//! the schemes-layer events of a trace.

use daos_trace::{Event, Ns, TimedEvent, TraceDoc};
use daos_util::json_struct;

/// What one scheme did over the traced run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemeTimeline {
    /// Scheme index (position in the engine's scheme list).
    pub scheme: u32,
    /// Regions whose predicate matched.
    pub nr_tried: u64,
    /// Bytes of matched regions.
    pub sz_tried: u64,
    /// Action applications that affected memory.
    pub nr_applied: u64,
    /// Bytes actually acted on.
    pub sz_applied: u64,
    /// Matches skipped because the quota window was exhausted.
    pub nr_quota_skips: u64,
    /// Bytes those skips left untouched.
    pub sz_quota_skipped: u64,
    /// Time of the first and last application, if any.
    pub active_span: Option<(Ns, Ns)>,
    /// Watermark state flips as `(at, became_active)`, in time order.
    /// Empty when the scheme has no watermarks (always active).
    pub wmark_flips: Vec<(Ns, bool)>,
}

json_struct!(SchemeTimeline {
    scheme, nr_tried, sz_tried, nr_applied, sz_applied,
    nr_quota_skips, sz_quota_skipped, active_span, wmark_flips,
});

impl SchemeTimeline {
    fn touch_apply(&mut self, at: Ns) {
        self.active_span = Some(match self.active_span {
            None => (at, at),
            Some((first, last)) => (first.min(at), last.max(at)),
        });
    }

    /// One human-readable block for this scheme.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scheme {}: tried {} / {} KiB, applied {} / {} KiB",
            self.scheme,
            self.nr_tried,
            self.sz_tried >> 10,
            self.nr_applied,
            self.sz_applied >> 10,
        );
        if self.nr_quota_skips > 0 {
            out.push_str(&format!(
                ", quota-skipped {} / {} KiB",
                self.nr_quota_skips,
                self.sz_quota_skipped >> 10
            ));
        }
        out.push('\n');
        if let Some((first, last)) = self.active_span {
            out.push_str(&format!(
                "  applying {:.2}s..{:.2}s\n",
                first as f64 / 1e9,
                last as f64 / 1e9
            ));
        }
        if self.wmark_flips.is_empty() {
            out.push_str("  watermarks: none (always active)\n");
        } else {
            out.push_str("  watermarks:");
            for (at, active) in &self.wmark_flips {
                out.push_str(&format!(
                    " {}@{:.2}s",
                    if *active { "activate" } else { "deactivate" },
                    *at as f64 / 1e9
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Fold the schemes-layer events of `events` into per-scheme timelines,
/// ordered by scheme index.
pub fn scheme_timelines(events: &[TimedEvent]) -> Vec<SchemeTimeline> {
    let mut out: Vec<SchemeTimeline> = Vec::new();
    let get = |out: &mut Vec<SchemeTimeline>, scheme: u32| -> usize {
        match out.iter().position(|t| t.scheme == scheme) {
            Some(i) => i,
            None => {
                out.push(SchemeTimeline { scheme, ..SchemeTimeline::default() });
                out.len() - 1
            }
        }
    };
    for te in events {
        match te.event {
            Event::SchemeMatch { scheme, bytes } => {
                let i = get(&mut out, scheme);
                let t = &mut out[i];
                t.nr_tried += 1;
                t.sz_tried += bytes;
            }
            Event::SchemeApply { scheme, bytes, .. } => {
                let i = get(&mut out, scheme);
                let t = &mut out[i];
                t.nr_applied += 1;
                t.sz_applied += bytes;
                t.touch_apply(te.at);
            }
            Event::QuotaThrottle { scheme, skipped_bytes } => {
                let i = get(&mut out, scheme);
                let t = &mut out[i];
                t.nr_quota_skips += 1;
                t.sz_quota_skipped += skipped_bytes;
            }
            Event::WatermarkTransition { scheme, active, .. } => {
                let i = get(&mut out, scheme);
                let t = &mut out[i];
                t.wmark_flips.push((te.at, active));
            }
            _ => {}
        }
    }
    out.sort_by_key(|t| t.scheme);
    out
}

/// Render every scheme's block (or a placeholder for a scheme-free run).
pub fn render_all(doc: &TraceDoc) -> String {
    let timelines = scheme_timelines(&doc.events);
    if timelines.is_empty() {
        return "no per-scheme events in this trace (schemes idle or not configured)\n".to_string();
    }
    timelines.iter().map(SchemeTimeline::render).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_trace::ActionTag;

    #[test]
    fn timelines_accumulate_per_scheme() {
        let events = vec![
            TimedEvent { at: 100, event: Event::WatermarkTransition { scheme: 0, active: true, metric_permille: 400 } },
            TimedEvent { at: 100, event: Event::SchemeMatch { scheme: 0, bytes: 4096 } },
            TimedEvent {
                at: 100,
                event: Event::SchemeApply { scheme: 0, action: ActionTag::Pageout, bytes: 4096 },
            },
            TimedEvent { at: 200, event: Event::SchemeMatch { scheme: 0, bytes: 8192 } },
            TimedEvent { at: 200, event: Event::QuotaThrottle { scheme: 0, skipped_bytes: 8192 } },
            TimedEvent { at: 300, event: Event::SchemeMatch { scheme: 1, bytes: 1024 } },
            TimedEvent {
                at: 300,
                event: Event::SchemeApply { scheme: 1, action: ActionTag::Stat, bytes: 1024 },
            },
        ];
        let tl = scheme_timelines(&events);
        assert_eq!(tl.len(), 2);
        assert_eq!((tl[0].nr_tried, tl[0].sz_tried), (2, 12288));
        assert_eq!((tl[0].nr_applied, tl[0].sz_applied), (1, 4096));
        assert_eq!((tl[0].nr_quota_skips, tl[0].sz_quota_skipped), (1, 8192));
        assert_eq!(tl[0].active_span, Some((100, 100)));
        assert_eq!(tl[0].wmark_flips, vec![(100, true)]);
        assert_eq!(tl[1].scheme, 1);
        assert!(tl[1].wmark_flips.is_empty());
        let text = tl[0].render();
        assert!(text.contains("quota-skipped 1 / 8 KiB"), "{text}");
        assert!(text.contains("activate@"), "{text}");
        assert!(tl[1].render().contains("always active"));
    }

    #[test]
    fn scheme_free_trace_renders_placeholder() {
        let doc = TraceDoc { events: Vec::new(), dropped: 0, ring_capacity: 16, metrics: None };
        assert!(render_all(&doc).contains("no per-scheme events"));
    }
}
