//! Rebuilding a `MonitorRecord` from a trace.
//!
//! The monitor streams each aggregation window into the trace as a run
//! of `RegionSnapshot` events followed by one `Aggregation` commit event
//! carrying the expected region count. A window is accepted only when
//! the pending snapshot run matches that count exactly — a ring that
//! overwrote part of a window (or its commit) yields a *discarded*
//! window rather than a silently corrupted one.

use daos_mm::addr::AddrRange;
use daos_monitor::{Aggregation, MonitorRecord, RegionInfo};
use daos_trace::{Event, TimedEvent, TraceDoc};

/// Rebuild the record from an event stream. Partial windows (snapshot
/// runs whose commit count does not match, e.g. because the ring dropped
/// events) are discarded.
pub fn record_from_events(events: &[TimedEvent]) -> MonitorRecord {
    let mut record = MonitorRecord::new();
    let mut pending: Vec<RegionInfo> = Vec::new();
    for te in events {
        match te.event {
            Event::RegionSnapshot { start, end, nr_accesses, age } => {
                pending.push(RegionInfo {
                    range: AddrRange::new(start, end),
                    nr_accesses: nr_accesses as u32,
                    age: age as u32,
                });
            }
            Event::Aggregation { nr_regions, window_ns, max_nr_accesses } => {
                if pending.len() as u64 == nr_regions {
                    record.push(Aggregation {
                        at: te.at,
                        regions: std::mem::take(&mut pending),
                        max_nr_accesses: max_nr_accesses as u32,
                        aggregation_interval: window_ns,
                    });
                } else {
                    pending.clear();
                }
            }
            _ => {}
        }
    }
    record
}

/// [`record_from_events`] over a parsed export document.
pub fn record_from_doc(doc: &TraceDoc) -> MonitorRecord {
    record_from_events(&doc.events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: u64, start: u64, end: u64, nr: u64) -> TimedEvent {
        TimedEvent {
            at,
            event: Event::RegionSnapshot { start, end, nr_accesses: nr, age: 1 },
        }
    }

    fn commit(at: u64, nr_regions: u64) -> TimedEvent {
        TimedEvent {
            at,
            event: Event::Aggregation { nr_regions, window_ns: 100, max_nr_accesses: 20 },
        }
    }

    #[test]
    fn windows_group_between_commits() {
        let events = vec![
            snap(100, 0, 4096, 3),
            snap(100, 4096, 8192, 0),
            commit(100, 2),
            snap(200, 0, 8192, 5),
            commit(200, 1),
        ];
        let rec = record_from_events(&events);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.aggregations[0].at, 100);
        assert_eq!(rec.aggregations[0].regions.len(), 2);
        assert_eq!(rec.aggregations[0].max_nr_accesses, 20);
        assert_eq!(rec.aggregations[0].aggregation_interval, 100);
        assert_eq!(rec.aggregations[1].regions[0].nr_accesses, 5);
    }

    #[test]
    fn partial_window_is_discarded_not_corrupted() {
        // The ring dropped one snapshot of the first window: its commit
        // expects 2 regions but only 1 survived → window discarded, and
        // the next (complete) window is unaffected.
        let events = vec![
            snap(100, 4096, 8192, 0),
            commit(100, 2),
            snap(200, 0, 8192, 5),
            commit(200, 1),
        ];
        let rec = record_from_events(&events);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.aggregations[0].at, 200);
    }

    #[test]
    fn dropped_commit_cannot_merge_two_windows() {
        // Window A's commit was overwritten; its snapshots must not leak
        // into window B (B's count won't match either → both discarded).
        let events = vec![
            snap(100, 0, 4096, 1),
            snap(200, 0, 8192, 5),
            commit(200, 1),
            snap(300, 0, 8192, 7),
            commit(300, 1),
        ];
        let rec = record_from_events(&events);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.aggregations[0].at, 300);
    }

    #[test]
    fn unrelated_events_do_not_disturb_grouping() {
        let events = vec![
            snap(100, 0, 4096, 3),
            TimedEvent {
                at: 100,
                event: Event::SamplingTick { checks: 4, nr_regions: 1, work_ns: 160 },
            },
            snap(100, 4096, 8192, 0),
            commit(100, 2),
        ];
        assert_eq!(record_from_events(&events).len(), 1);
    }

    #[test]
    fn empty_stream_gives_empty_record() {
        assert!(record_from_events(&[]).is_empty());
    }
}
