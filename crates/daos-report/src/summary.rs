//! `report summary`: the run header of a trace — event counts by layer
//! and kind, drop accounting (a truncated recording is *flagged*, never
//! silently treated as complete), and a trailer-vs-replay integrity
//! check of the metrics registry.

use std::collections::BTreeMap;

use daos_trace::{Collector, Ns, TraceDoc};

/// Whether the exporter's metrics trailer agrees with a replay of the
/// event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// Trailer equals the replayed registry — the document is internally
    /// consistent.
    Consistent,
    /// Trailer differs but events were dropped, so divergence is
    /// expected (the trailer saw every event; the ring did not keep
    /// them all).
    Truncated,
    /// Trailer differs on a drop-free document — the trace was edited
    /// or corrupted.
    Inconsistent,
    /// No metrics trailer to check against.
    NoTrailer,
}

/// Everything `report summary` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Events surviving in the document.
    pub nr_events: u64,
    /// Events the ring overwrote (from the header).
    pub dropped: u64,
    /// Ring capacity the recording ran with.
    pub ring_capacity: u64,
    /// Virtual-time span of the surviving events.
    pub time_span: Option<(Ns, Ns)>,
    /// Event count per emitting layer, keyed by layer name.
    pub by_layer: BTreeMap<String, u64>,
    /// Event count per variant name.
    pub by_kind: BTreeMap<String, u64>,
    /// Counter/gauge/histogram key counts in the trailer, if present.
    pub trailer_keys: Option<(u64, u64, u64)>,
    /// The trailer-vs-replay verdict.
    pub integrity: Integrity,
}

impl Summary {
    /// Analyse a parsed export document.
    pub fn of(doc: &TraceDoc) -> Summary {
        let mut by_layer: BTreeMap<String, u64> = BTreeMap::new();
        let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
        for te in &doc.events {
            *by_layer.entry(format!("{:?}", te.event.layer())).or_insert(0) += 1;
            *by_kind.entry(te.event.name().to_string()).or_insert(0) += 1;
        }
        let time_span = match (doc.events.first(), doc.events.last()) {
            (Some(a), Some(b)) => Some((a.at, b.at)),
            _ => None,
        };
        let (trailer_keys, integrity) = match &doc.metrics {
            None => (None, Integrity::NoTrailer),
            Some(reg) => {
                let keys = (
                    reg.counters().count() as u64,
                    reg.gauges().count() as u64,
                    reg.hists().count() as u64,
                );
                let replayed = Collector::replay(&doc.events);
                let verdict = if replayed.registry() == reg {
                    Integrity::Consistent
                } else if doc.dropped > 0 {
                    Integrity::Truncated
                } else {
                    Integrity::Inconsistent
                };
                (Some(keys), verdict)
            }
        };
        Summary {
            nr_events: doc.events.len() as u64,
            dropped: doc.dropped,
            ring_capacity: doc.ring_capacity,
            time_span,
            by_layer,
            by_kind,
            trailer_keys,
            integrity,
        }
    }

    /// True when the recording kept every emitted event.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Render the summary block.
    pub fn render(&self) -> String {
        let mut out = String::from("trace summary\n");
        out.push_str(&format!(
            "  events: {} kept, {} dropped (ring capacity {})\n",
            self.nr_events, self.dropped, self.ring_capacity
        ));
        if !self.is_complete() {
            out.push_str(&format!(
                "  WARNING: recording is incomplete — {} events were overwritten; \
                 derived views cover only the surviving window (re-record with a \
                 larger --ring)\n",
                self.dropped
            ));
        }
        if let Some((t0, t1)) = self.time_span {
            out.push_str(&format!(
                "  time span: {:.2}s..{:.2}s\n",
                t0 as f64 / 1e9,
                t1 as f64 / 1e9
            ));
        }
        out.push_str("  by layer:");
        for (layer, n) in &self.by_layer {
            out.push_str(&format!(" {layer} {n}"));
        }
        out.push('\n');
        out.push_str("  by kind:\n");
        for (kind, n) in &self.by_kind {
            out.push_str(&format!("    {kind:<20} {n}\n"));
        }
        match self.trailer_keys {
            Some((c, g, h)) => out.push_str(&format!(
                "  metrics trailer: {c} counters, {g} gauges, {h} histograms\n"
            )),
            None => out.push_str("  metrics trailer: absent\n"),
        }
        out.push_str(match self.integrity {
            Integrity::Consistent => "  integrity: trailer matches event replay\n",
            Integrity::Truncated => {
                "  integrity: trailer diverges from replay (expected: events were dropped)\n"
            }
            Integrity::Inconsistent => {
                "  integrity: MISMATCH — trailer does not match a replay of a \
                 drop-free event stream\n"
            }
            Integrity::NoTrailer => "  integrity: n/a (no metrics trailer)\n",
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_trace::{Event, TimedEvent};

    fn events() -> Vec<TimedEvent> {
        vec![
            TimedEvent { at: 10, event: Event::PageFault { pid: 1, addr: 0x1000, major: false } },
            TimedEvent {
                at: 20,
                event: Event::SamplingTick { checks: 4, nr_regions: 2, work_ns: 160 },
            },
            TimedEvent {
                at: 30,
                event: Event::SamplingTick { checks: 4, nr_regions: 2, work_ns: 160 },
            },
        ]
    }

    #[test]
    fn counts_layers_kinds_and_span() {
        let doc = TraceDoc { events: events(), dropped: 0, ring_capacity: 64, metrics: None };
        let s = Summary::of(&doc);
        assert_eq!(s.nr_events, 3);
        assert!(s.is_complete());
        assert_eq!(s.time_span, Some((10, 30)));
        assert_eq!(s.by_layer["Mm"], 1);
        assert_eq!(s.by_layer["Monitor"], 2);
        assert_eq!(s.by_kind["SamplingTick"], 2);
        assert_eq!(s.integrity, Integrity::NoTrailer);
        let text = s.render();
        assert!(!text.contains("WARNING"), "{text}");
        assert!(text.contains("SamplingTick         2"), "{text}");
    }

    #[test]
    fn dropped_events_are_flagged() {
        let doc = TraceDoc { events: events(), dropped: 7, ring_capacity: 3, metrics: None };
        let s = Summary::of(&doc);
        assert!(!s.is_complete());
        assert!(s.render().contains("WARNING: recording is incomplete — 7 events"));
    }

    #[test]
    fn integrity_verdicts() {
        // Consistent: trailer == replay of the same events.
        let evs = events();
        let replay = Collector::replay(&evs);
        let doc = TraceDoc {
            events: evs.clone(),
            dropped: 0,
            ring_capacity: 64,
            metrics: Some(replay.registry().clone()),
        };
        assert_eq!(Summary::of(&doc).integrity, Integrity::Consistent);

        // Truncated: registry saw more than the ring kept, drops declared.
        let mut bigger = replay.registry().clone();
        bigger.counter_add("mm.minor_faults", 5);
        let doc = TraceDoc {
            events: evs.clone(),
            dropped: 5,
            ring_capacity: 3,
            metrics: Some(bigger.clone()),
        };
        assert_eq!(Summary::of(&doc).integrity, Integrity::Truncated);

        // Inconsistent: same divergence but the header claims no drops.
        let doc = TraceDoc { events: evs, dropped: 0, ring_capacity: 64, metrics: Some(bigger) };
        let s = Summary::of(&doc);
        assert_eq!(s.integrity, Integrity::Inconsistent);
        assert!(s.render().contains("MISMATCH"));
    }
}
