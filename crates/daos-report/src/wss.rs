//! `report wss`: the working-set-size time series of a trace, with the
//! paper's percentile framing (the WSS view `damo report wss` ships).

use daos::WssReport;
use daos_monitor::MonitorRecord;
use daos_trace::Ns;
use daos_util::json_struct;

/// Working-set size per aggregation window, in time order, plus the
/// derived distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct WssTimeline {
    /// Window close times (virtual ns), one per sample.
    pub at: Vec<Ns>,
    /// Per-window working-set estimates, bytes, parallel to `at`.
    pub wss: Vec<u64>,
}

json_struct!(WssTimeline { at, wss });

impl WssTimeline {
    /// Compute the timeline from a (possibly trace-rebuilt) record.
    pub fn from_record(record: &MonitorRecord) -> WssTimeline {
        WssTimeline {
            at: record.aggregations.iter().map(|a| a.at).collect(),
            wss: record.aggregations.iter().map(|a| a.hot_bytes_estimate()).collect(),
        }
    }

    /// The distribution view over the same samples.
    pub fn distribution(&self) -> WssReport {
        WssReport { samples: self.wss.clone() }
    }

    /// Render the series and the p25/p50/p75/p95 percentile table.
    pub fn render(&self) -> String {
        if self.wss.is_empty() {
            return "no aggregation windows recorded in this trace (monitoring disabled, \
                    or the run ended before a window closed)\n"
                .to_string();
        }
        let mut out = String::new();
        out.push_str(&format!("working-set size over {} windows\n", self.wss.len()));
        out.push_str("      t(s)   wss(KiB)\n");
        for (at, wss) in self.at.iter().zip(&self.wss) {
            out.push_str(&format!("{:>10.2} {:>10}\n", *at as f64 / 1e9, wss >> 10));
        }
        let dist = self.distribution();
        out.push_str("\npercentile   wss\n");
        for p in [25.0, 50.0, 75.0, 95.0] {
            out.push_str(&format!("{:>9.0}% {:>8} KiB\n", p, dist.percentile(p) >> 10));
        }
        out.push_str(&format!("{:>10} {:>8} KiB\n", "mean", dist.mean() >> 10));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::addr::AddrRange;
    use daos_monitor::{Aggregation, RegionInfo};

    fn record() -> MonitorRecord {
        let mut rec = MonitorRecord::new();
        for t in 1..=4u64 {
            rec.push(Aggregation {
                at: t * 1_000_000_000,
                regions: vec![RegionInfo {
                    range: AddrRange::new(0, t << 20),
                    nr_accesses: 20,
                    age: 0,
                }],
                max_nr_accesses: 20,
                aggregation_interval: 100,
            });
        }
        rec
    }

    #[test]
    fn timeline_follows_the_record() {
        let tl = WssTimeline::from_record(&record());
        assert_eq!(tl.at, vec![1_000_000_000, 2_000_000_000, 3_000_000_000, 4_000_000_000]);
        assert_eq!(tl.wss, vec![1 << 20, 2 << 20, 3 << 20, 4 << 20]);
        let out = tl.render();
        assert!(out.starts_with("working-set size over 4 windows\n"));
        assert!(out.contains("      1.00       1024\n"), "{out}");
        assert!(out.contains("       50%"), "{out}");
        assert!(out.contains("mean"), "{out}");
    }

    #[test]
    fn empty_record_states_no_windows() {
        let tl = WssTimeline::from_record(&MonitorRecord::new());
        let out = tl.render();
        assert!(out.contains("no aggregation windows recorded"), "{out}");
        assert!(!out.contains("percentile"), "{out}");
        assert_eq!(tl.distribution().percentile(50.0), 0);
    }
}
