//! Scheme watermarks: activate a scheme only while a system metric sits
//! in a configured band.
//!
//! This is the mechanism the paper's production deployment story implies
//! and mainline DAMON grew (DAMOS watermarks): proactive reclamation
//! should idle while memory is plentiful (it has nothing to gain), run
//! when free memory falls below a *mid* watermark, and get out of the
//! way entirely below a *low* watermark (where direct reclaim is already
//! fighting for survival and kdamond would only add noise).


/// Why a [`Watermarks`] band is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarksError {
    /// The band is not ordered `low <= mid <= high`.
    BadOrder {
        /// Configured low mark.
        low: u32,
        /// Configured mid mark.
        mid: u32,
        /// Configured high mark.
        high: u32,
    },
    /// A mark exceeds the permille scale (1000).
    NotPermille(u32),
}

impl std::fmt::Display for WatermarksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatermarksError::BadOrder { low, mid, high } => write!(
                f,
                "watermarks must satisfy low <= mid <= high: {low} / {mid} / {high}"
            ),
            WatermarksError::NotPermille(v) => {
                write!(f, "watermarks are permille values: high = {v}")
            }
        }
    }
}

impl std::error::Error for WatermarksError {}

/// Metric a watermark band is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarkMetric {
    /// Free physical memory as permille (0–1000) of total DRAM.
    FreeMemPermille,
}

/// A watermark band. All values are permille of the metric's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Which metric the band applies to.
    pub metric: WatermarkMetric,
    /// Above this the scheme is inactive (no pressure → nothing to do).
    pub high: u32,
    /// Activation midpoint: the scheme runs while the metric is between
    /// `low` and `high`.
    pub mid: u32,
    /// Below this the scheme deactivates (an emergency is in progress).
    pub low: u32,
}

/// The scheme's activation state, with hysteresis: activation happens at
/// `mid`, deactivation at `high`/`low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarkState {
    /// Scheme currently applies its action.
    Active,
    /// Scheme is dormant.
    Inactive,
}

impl Watermarks {
    /// DAMON_RECLAIM's defaults: activate when free memory drops below
    /// 50 %, stop above 50 % free or below 20 % free.
    pub fn reclaim_defaults() -> Self {
        Self { metric: WatermarkMetric::FreeMemPermille, high: 500, mid: 500, low: 200 }
    }

    /// Validate ordering `low <= mid <= high <= 1000`.
    pub fn validate(&self) -> Result<(), WatermarksError> {
        if self.low > self.mid || self.mid > self.high {
            return Err(WatermarksError::BadOrder {
                low: self.low,
                mid: self.mid,
                high: self.high,
            });
        }
        if self.high > 1000 {
            return Err(WatermarksError::NotPermille(self.high));
        }
        Ok(())
    }

    /// Next activation state given the current metric value (permille)
    /// and the previous state.
    pub fn next_state(&self, value: u32, prev: WatermarkState) -> WatermarkState {
        match prev {
            WatermarkState::Inactive => {
                // Activate only once the metric falls to the mid mark
                // (and stays above the emergency low).
                if value <= self.mid && value >= self.low {
                    WatermarkState::Active
                } else {
                    WatermarkState::Inactive
                }
            }
            WatermarkState::Active => {
                if value > self.high || value < self.low {
                    WatermarkState::Inactive
                } else {
                    WatermarkState::Active
                }
            }
        }
    }
}

/// Current free-memory permille of a [`daos_mm::MemorySystem`].
pub fn free_mem_permille(sys: &daos_mm::MemorySystem) -> u32 {
    let total = sys.machine().dram_bytes.max(1);
    let free = total.saturating_sub(sys.used_dram_bytes());
    (free * 1000 / total) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use WatermarkState::*;

    fn wm() -> Watermarks {
        Watermarks { metric: WatermarkMetric::FreeMemPermille, high: 600, mid: 400, low: 100 }
    }

    #[test]
    fn validation() {
        assert!(wm().validate().is_ok());
        assert!(Watermarks { low: 500, mid: 400, ..wm() }.validate().is_err());
        assert!(Watermarks { high: 1500, ..wm() }.validate().is_err());
        assert!(Watermarks::reclaim_defaults().validate().is_ok());
    }

    #[test]
    fn activation_at_mid_with_hysteresis() {
        let w = wm();
        // Plenty of free memory: stays inactive.
        assert_eq!(w.next_state(800, Inactive), Inactive);
        assert_eq!(w.next_state(450, Inactive), Inactive, "between mid and high: not yet");
        // Falls to mid: activates.
        assert_eq!(w.next_state(400, Inactive), Active);
        // Hysteresis: active until it climbs above HIGH, not mid.
        assert_eq!(w.next_state(550, Active), Active);
        assert_eq!(w.next_state(601, Active), Inactive);
    }

    #[test]
    fn emergency_low_deactivates() {
        let w = wm();
        assert_eq!(w.next_state(50, Active), Inactive, "below low: get out of the way");
        assert_eq!(w.next_state(50, Inactive), Inactive);
        assert_eq!(w.next_state(100, Inactive), Active, "low boundary inclusive");
    }

    #[test]
    fn free_mem_metric() {
        let mut m = daos_mm::MachineProfile::test_tiny();
        m.dram_bytes = 4 << 20; // 1024 frames
        let mut sys = daos_mm::MemorySystem::new(m, daos_mm::SwapConfig::paper_zram(), 1);
        assert_eq!(free_mem_permille(&sys), 1000);
        let pid = sys.spawn();
        let range = sys.mmap(pid, 2 << 20, daos_mm::ThpMode::Never).unwrap();
        sys.apply_access(pid, &daos_mm::AccessBatch::all(range, 1.0)).unwrap();
        assert_eq!(free_mem_permille(&sys), 500);
    }
}


daos_util::json_enum!(WatermarkMetric { FreeMemPermille });
daos_util::json_struct!(Watermarks { metric, high, mid, low });
