//! Scheme-level configuration: one scheme plus everything attached to
//! it — quota, watermarks, address filters — assembled with a builder
//! and validated at [`build`](SchemeConfigBuilder::build).
//!
//! This replaces the index-based `SchemesEngine::set_quota(idx, ..)` /
//! `set_watermarks(idx, ..)` / `add_filter(idx, ..)` style, where the
//! binding between a scheme and its attachments lived only in the
//! caller's head (and an off-by-one silently re-targeted a quota).
//! A [`SchemeConfig`] keeps them together:
//!
//! ```
//! use daos_schemes::{Action, Quota, Scheme, Watermarks};
//!
//! let cfg = Scheme::any(Action::Pageout)
//!     .configure()
//!     .quota(Quota { sz_limit: 8 << 20, reset_interval: 500_000_000 })
//!     .watermarks(Watermarks::reclaim_defaults())
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.scheme.action, Action::Pageout);
//! ```

use crate::filter::AddrFilter;
use crate::quota::Quota;
use crate::scheme::Scheme;
use crate::watermarks::{Watermarks, WatermarksError};

/// Why a [`SchemeConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeConfigError {
    /// The attached watermark band is invalid.
    Watermarks(WatermarksError),
    /// The attached quota has `sz_limit == 0`, which would silently
    /// disable the scheme (every region would be quota-skipped).
    ZeroQuota,
    /// The attached quota has `reset_interval == 0`: the budget window
    /// never has any width, and the original window-rolling loop spun
    /// forever on it (see `QuotaState::maybe_reset`).
    ZeroQuotaInterval,
}

impl core::fmt::Display for SchemeConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SchemeConfigError::Watermarks(e) => write!(f, "{e}"),
            SchemeConfigError::ZeroQuota => {
                write!(f, "quota sz_limit must be > 0 (a zero quota disables the scheme)")
            }
            SchemeConfigError::ZeroQuotaInterval => {
                write!(f, "quota reset_interval must be > 0 (a zero-width window never refills)")
            }
        }
    }
}

impl std::error::Error for SchemeConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchemeConfigError::Watermarks(e) => Some(e),
            SchemeConfigError::ZeroQuota | SchemeConfigError::ZeroQuotaInterval => None,
        }
    }
}

impl From<WatermarksError> for SchemeConfigError {
    fn from(e: WatermarksError) -> Self {
        SchemeConfigError::Watermarks(e)
    }
}

/// A scheme together with its optional quota, watermarks, and address
/// filters — the unit [`SchemesEngine::new`] consumes.
///
/// [`SchemesEngine::new`]: crate::SchemesEngine::new
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeConfig {
    /// The matching conditions and action.
    pub scheme: Scheme,
    /// Optional byte budget per reset interval.
    pub quota: Option<Quota>,
    /// Optional activation band over the free-memory metric.
    pub watermarks: Option<Watermarks>,
    /// Address filters applied to every acted-on range.
    pub filters: Vec<AddrFilter>,
}

impl From<Scheme> for SchemeConfig {
    /// A bare scheme: no quota, no watermarks, no filters. Lets
    /// `SchemesEngine::new(target, vec![scheme])` keep working.
    fn from(scheme: Scheme) -> Self {
        SchemeConfig { scheme, quota: None, watermarks: None, filters: Vec::new() }
    }
}

impl Scheme {
    /// Start configuring this scheme's attachments;
    /// [`SchemeConfigBuilder::build`] validates the combination.
    pub fn configure(self) -> SchemeConfigBuilder {
        SchemeConfigBuilder { config: SchemeConfig::from(self) }
    }
}

/// Builder for [`SchemeConfig`]; obtained via [`Scheme::configure`].
#[derive(Debug, Clone)]
pub struct SchemeConfigBuilder {
    config: SchemeConfig,
}

impl SchemeConfigBuilder {
    /// Cap how many bytes the scheme may act on per reset interval.
    pub fn quota(mut self, quota: Quota) -> Self {
        self.config.quota = Some(quota);
        self
    }

    /// Gate the scheme on a free-memory watermark band.
    pub fn watermarks(mut self, wmarks: Watermarks) -> Self {
        self.config.watermarks = Some(wmarks);
        self
    }

    /// Append an address filter (filters are applied in insertion order).
    pub fn filter(mut self, filter: AddrFilter) -> Self {
        self.config.filters.push(filter);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SchemeConfig, SchemeConfigError> {
        if let Some(wm) = &self.config.watermarks {
            wm.validate()?;
        }
        if let Some(q) = &self.config.quota {
            if q.sz_limit == 0 {
                return Err(SchemeConfigError::ZeroQuota);
            }
            if q.reset_interval == 0 {
                return Err(SchemeConfigError::ZeroQuotaInterval);
            }
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::watermarks::WatermarkMetric;
    use daos_mm::addr::AddrRange;

    #[test]
    fn builder_collects_attachments() {
        let cfg = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 1 << 20, reset_interval: 1_000 })
            .watermarks(Watermarks::reclaim_defaults())
            .filter(AddrFilter::reject(AddrRange::new(0, 4096)))
            .filter(AddrFilter::allow(AddrRange::new(8192, 16384)))
            .build()
            .unwrap();
        assert_eq!(cfg.quota.unwrap().sz_limit, 1 << 20);
        assert!(cfg.watermarks.is_some());
        assert_eq!(cfg.filters.len(), 2);
    }

    #[test]
    fn bare_scheme_converts_without_attachments() {
        let cfg = SchemeConfig::from(Scheme::any(Action::Stat));
        assert_eq!(cfg.quota, None);
        assert_eq!(cfg.watermarks, None);
        assert!(cfg.filters.is_empty());
    }

    #[test]
    fn build_rejects_zero_quota() {
        let err = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 0, reset_interval: 1_000 })
            .build()
            .unwrap_err();
        assert_eq!(err, SchemeConfigError::ZeroQuota);
        assert!(err.to_string().contains("sz_limit"));
    }

    #[test]
    fn build_rejects_zero_quota_interval() {
        let err = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 1 << 20, reset_interval: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, SchemeConfigError::ZeroQuotaInterval);
        assert!(err.to_string().contains("reset_interval"));
    }

    #[test]
    fn build_rejects_invalid_watermarks() {
        let bad = Watermarks {
            metric: WatermarkMetric::FreeMemPermille,
            high: 100,
            mid: 400, // mid > high: bad order
            low: 50,
        };
        let err = Scheme::any(Action::Pageout).configure().watermarks(bad).build().unwrap_err();
        assert!(matches!(err, SchemeConfigError::Watermarks(WatermarksError::BadOrder { .. })));
        assert!(err.to_string().contains("low <= mid <= high"));
    }
}
