//! # daos-schemes — the Memory Management Schemes Engine
//!
//! DAMOS (§3.2 of the paper): users describe access-aware memory
//! management as *schemes* — three condition pairs (region size, access
//! frequency, age) plus an action — in a one-line text format, and the
//! engine applies the actions to every monitored region that matches.
//! This replaces the kernel programming that access-aware optimisations
//! previously required: the paper reimplements two state-of-the-art
//! systems in 2 lines (`ethp`) and 1 line (`prcl`) of this DSL.
//!
//! ```
//! use daos_schemes::{parse_schemes, Action};
//!
//! // Listing 1 of the paper: page out regions not accessed >= 2 minutes.
//! let schemes = parse_schemes("min max min min 2m max page_out").unwrap();
//! assert_eq!(schemes[0].action, Action::Pageout);
//! ```

pub mod action;
pub mod config;
pub mod engine;
pub mod filter;
pub mod parser;
pub mod quota;
pub mod scheme;
pub mod stats;
pub mod watermarks;

pub use action::Action;
pub use config::{SchemeConfig, SchemeConfigBuilder, SchemeConfigError};
pub use engine::{EnginePass, SchemeTarget, SchemesEngine};
pub use filter::{apply_filters, AddrFilter, FilterMode};
pub use parser::{parse_scheme_line, parse_schemes, ParseError, SchemeParseError};
pub use quota::{Quota, QuotaState};
pub use scheme::{AgeVal, Bound, FreqVal, Scheme};
pub use stats::SchemeStats;
pub use watermarks::{
    free_mem_permille, WatermarkMetric, WatermarkState, Watermarks, WatermarksError,
};
