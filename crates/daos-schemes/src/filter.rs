//! Scheme address filters: restrict where a scheme's action may land.
//!
//! This mirrors mainline DAMOS's address-range filters (another of the
//! engine extensions the paper anticipates): operators deploy a global
//! scheme but fence off ranges that must never be touched (e.g. a
//! latency-critical arena), or confine an aggressive scheme to one area.

use daos_mm::addr::AddrRange;

/// Whether matching the filter allows or rejects the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// The action may only touch bytes inside the filter range.
    Allow,
    /// The action must not touch bytes inside the filter range.
    Reject,
}

/// One address filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrFilter {
    /// The filtered range.
    pub range: AddrRange,
    /// Allow-list or deny-list semantics.
    pub mode: FilterMode,
}

impl AddrFilter {
    /// Confine actions to `range`.
    pub fn allow(range: AddrRange) -> Self {
        Self { range, mode: FilterMode::Allow }
    }

    /// Protect `range` from actions.
    pub fn reject(range: AddrRange) -> Self {
        Self { range, mode: FilterMode::Reject }
    }
}

/// Apply a filter chain to a candidate action range, yielding the
/// sub-ranges the action may actually touch (in address order).
pub fn apply_filters(candidate: AddrRange, filters: &[AddrFilter]) -> Vec<AddrRange> {
    let mut allowed = vec![candidate];
    for f in filters {
        let mut next = Vec::with_capacity(allowed.len() + 1);
        for r in allowed {
            match f.mode {
                FilterMode::Allow => {
                    if let Some(i) = r.intersect(&f.range) {
                        next.push(i);
                    }
                }
                FilterMode::Reject => {
                    // Keep the parts of r outside the rejected range.
                    if r.start < f.range.start {
                        next.push(AddrRange::new(r.start, r.end.min(f.range.start)));
                    }
                    if r.end > f.range.end {
                        next.push(AddrRange::new(r.start.max(f.range.end), r.end));
                    }
                }
            }
        }
        allowed = next;
        if allowed.is_empty() {
            break;
        }
    }
    allowed.retain(|r| !r.is_empty());
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: u64, b: u64) -> AddrRange {
        AddrRange::new(a, b)
    }

    #[test]
    fn no_filters_passes_through() {
        assert_eq!(apply_filters(r(0, 100), &[]), vec![r(0, 100)]);
    }

    #[test]
    fn allow_clips_to_range() {
        let out = apply_filters(r(0, 100), &[AddrFilter::allow(r(40, 200))]);
        assert_eq!(out, vec![r(40, 100)]);
        let out = apply_filters(r(0, 100), &[AddrFilter::allow(r(200, 300))]);
        assert!(out.is_empty());
    }

    #[test]
    fn reject_splits_around_range() {
        let out = apply_filters(r(0, 100), &[AddrFilter::reject(r(40, 60))]);
        assert_eq!(out, vec![r(0, 40), r(60, 100)]);
        // Rejection covering everything removes the candidate.
        let out = apply_filters(r(0, 100), &[AddrFilter::reject(r(0, 100))]);
        assert!(out.is_empty());
        // Rejection at the edges trims.
        let out = apply_filters(r(10, 100), &[AddrFilter::reject(r(0, 20))]);
        assert_eq!(out, vec![r(20, 100)]);
    }

    #[test]
    fn filters_chain() {
        // Allow [0,80), then protect [20,40).
        let out = apply_filters(
            r(0, 100),
            &[AddrFilter::allow(r(0, 80)), AddrFilter::reject(r(20, 40))],
        );
        assert_eq!(out, vec![r(0, 20), r(40, 80)]);
    }

    #[test]
    fn disjoint_allow_after_reject() {
        let out = apply_filters(
            r(0, 100),
            &[AddrFilter::reject(r(40, 60)), AddrFilter::allow(r(50, 100))],
        );
        assert_eq!(out, vec![r(60, 100)]);
    }
}


daos_util::json_enum!(FilterMode { Allow, Reject });
daos_util::json_struct!(AddrFilter { range, mode });
