//! Scheme actions (Table 1 of the paper).


/// The memory operation a scheme triggers on matching regions.
///
/// | Action | Description (Table 1) |
/// |---|---|
/// | `WILLNEED` | Ask the kernel to expect the region to be accessed soon. |
/// | `COLD` | Ask the kernel to expect the region *not* to be accessed soon. |
/// | `HUGEPAGE` | THP-promote the region. |
/// | `NOHUGEPAGE` | THP-demote the region. |
/// | `PAGEOUT` | Immediately page the region out. |
/// | `STAT` | Only count regions/bytes fulfilling the conditions (working-set estimation, scheme tuning). |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Prefetch the region (swap it back in proactively).
    Willneed,
    /// Deactivate the region: first in line for pressure reclaim.
    Cold,
    /// Promote the region to 2 MiB transparent huge pages.
    Hugepage,
    /// Demote (split) the region's huge pages.
    Nohugepage,
    /// Immediately page the region out to swap.
    Pageout,
    /// Statistics only: count matching regions and bytes.
    Stat,
    /// Prioritise the region on the LRU lists (DAMON_LRU_SORT, an
    /// engine extension beyond the paper's Table 1).
    LruPrio,
    /// Deprioritise the region on the LRU lists (DAMON_LRU_SORT).
    LruDeprio,
}

impl Action {
    /// Canonical DSL keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            Action::Willneed => "willneed",
            Action::Cold => "cold",
            Action::Hugepage => "hugepage",
            Action::Nohugepage => "nohugepage",
            Action::Pageout => "pageout",
            Action::Stat => "stat",
            Action::LruPrio => "lru_prio",
            Action::LruDeprio => "lru_deprio",
        }
    }

    /// Parse a DSL keyword, including the aliases the paper's listings
    /// use (`thp`, `nothp`, `page_out`).
    pub fn from_keyword(word: &str) -> Option<Action> {
        Some(match word.to_ascii_lowercase().as_str() {
            "willneed" => Action::Willneed,
            "cold" => Action::Cold,
            "hugepage" | "thp" => Action::Hugepage,
            "nohugepage" | "nothp" => Action::Nohugepage,
            "pageout" | "page_out" => Action::Pageout,
            "stat" => Action::Stat,
            "lru_prio" => Action::LruPrio,
            "lru_deprio" => Action::LruDeprio,
            _ => return None,
        })
    }

    /// Human-readable description, as in Table 1.
    pub fn description(&self) -> &'static str {
        match self {
            Action::Willneed => {
                "Asks the kernel to expect the given region will be accessed soon."
            }
            Action::Cold => {
                "Asks the kernel to expect the given region will not be accessed soon."
            }
            Action::Hugepage => "Asks the kernel to do THP promotions for the given region.",
            Action::Nohugepage => "Asks the kernel to do THP demotions for the given region.",
            Action::Pageout => "Immediately page out the memory region.",
            Action::Stat => {
                "Count the total number and size of memory regions fulfilling the conditions. \
                 Can be used for estimating working set size and scheme tuning."
            }
            Action::LruPrio => {
                "Move the region's pages to the head of the active LRU list \
                 (last reclaim candidates)."
            }
            Action::LruDeprio => {
                "Move the region's pages to the tail of the inactive LRU list \
                 (first reclaim candidates)."
            }
        }
    }

    /// The six actions of the paper's Table 1.
    pub fn paper_actions() -> [Action; 6] {
        [
            Action::Willneed,
            Action::Cold,
            Action::Hugepage,
            Action::Nohugepage,
            Action::Pageout,
            Action::Stat,
        ]
    }

    /// All actions, Table 1 first, then the engine extensions
    /// ("We plan to support more actions in the future", §3.2).
    pub fn all() -> [Action; 8] {
        [
            Action::Willneed,
            Action::Cold,
            Action::Hugepage,
            Action::Nohugepage,
            Action::Pageout,
            Action::Stat,
            Action::LruPrio,
            Action::LruDeprio,
        ]
    }
}

impl core::fmt::Display for Action {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for a in Action::all() {
            assert_eq!(Action::from_keyword(a.keyword()), Some(a));
        }
    }

    #[test]
    fn paper_listing_aliases() {
        assert_eq!(Action::from_keyword("page_out"), Some(Action::Pageout));
        assert_eq!(Action::from_keyword("thp"), Some(Action::Hugepage));
        assert_eq!(Action::from_keyword("nothp"), Some(Action::Nohugepage));
        assert_eq!(Action::from_keyword("PAGEOUT"), Some(Action::Pageout));
        assert_eq!(Action::from_keyword("bogus"), None);
    }

    #[test]
    fn table1_has_six_actions_plus_extensions() {
        assert_eq!(Action::paper_actions().len(), 6);
        assert_eq!(Action::all().len(), 8);
        for a in Action::all() {
            assert!(!a.description().is_empty());
        }
        assert_eq!(Action::from_keyword("lru_prio"), Some(Action::LruPrio));
        assert_eq!(Action::from_keyword("lru_deprio"), Some(Action::LruDeprio));
    }
}


daos_util::json_enum!(Action {
    Willneed, Cold, Hugepage, Nohugepage, Pageout, Stat, LruPrio, LruDeprio,
});
