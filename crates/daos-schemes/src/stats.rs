//! Per-scheme statistics, as exposed by the kernel implementation
//! (`nr_tried`/`sz_tried`/`nr_applied`/`sz_applied`).


/// Counters for one scheme's activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchemeStats {
    /// Regions that fulfilled the scheme's conditions.
    pub nr_tried: u64,
    /// Total bytes of those regions.
    pub sz_tried: u64,
    /// Regions on which the action had an effect.
    pub nr_applied: u64,
    /// Bytes the action affected (paged out, promoted, ...).
    pub sz_applied: u64,
    /// Regions skipped because the quota was exhausted.
    pub nr_quota_skips: u64,
}

impl SchemeStats {
    /// Record a region that matched the conditions.
    pub fn tried(&mut self, bytes: u64) {
        self.nr_tried += 1;
        self.sz_tried += bytes;
    }

    /// Record an action application affecting `bytes`.
    pub fn applied(&mut self, bytes: u64) {
        self.nr_applied += 1;
        self.sz_applied += bytes;
    }

    /// Re-derive scheme `idx`'s counters from a trace [`Registry`] — the
    /// single source of truth when a collector is installed (the engine
    /// mirrors every tried/applied/skip into `scheme.<idx>.*` counters).
    ///
    /// [`Registry`]: daos_trace::Registry
    pub fn from_registry(reg: &daos_trace::Registry, idx: u32) -> Self {
        use daos_trace::keys::scheme;
        SchemeStats {
            nr_tried: reg.counter(&scheme(idx, "nr_tried")),
            sz_tried: reg.counter(&scheme(idx, "sz_tried")),
            nr_applied: reg.counter(&scheme(idx, "nr_applied")),
            sz_applied: reg.counter(&scheme(idx, "sz_applied")),
            nr_quota_skips: reg.counter(&scheme(idx, "nr_quota_skips")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SchemeStats::default();
        s.tried(4096);
        s.tried(8192);
        s.applied(4096);
        assert_eq!(s.nr_tried, 2);
        assert_eq!(s.sz_tried, 12288);
        assert_eq!(s.nr_applied, 1);
        assert_eq!(s.sz_applied, 4096);
    }
}


daos_util::json_struct!(SchemeStats {
    nr_tried, sz_tried, nr_applied, sz_applied, nr_quota_skips,
});
