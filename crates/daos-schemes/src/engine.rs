//! The schemes engine loop: read each aggregation result, find regions
//! fulfilling scheme conditions, apply the actions (§3.2).

use daos_mm::addr::AddrRange;
use daos_mm::clock::Ns;
use daos_mm::process::Pid;
use daos_mm::system::MemorySystem;
use daos_monitor::{Aggregation, RegionInfo};

use crate::action::Action;
use crate::config::SchemeConfig;
use crate::filter::{apply_filters, AddrFilter};
use crate::quota::{prioritize, QuotaState};
use crate::scheme::Scheme;
use crate::stats::SchemeStats;
use crate::watermarks::{free_mem_permille, WatermarkState, Watermarks};

/// The trace taxonomy's name for an [`Action`].
fn action_tag(action: Action) -> daos_trace::ActionTag {
    use daos_trace::ActionTag as T;
    match action {
        Action::Stat => T::Stat,
        Action::Pageout => T::Pageout,
        Action::Hugepage => T::Hugepage,
        Action::Nohugepage => T::Nohugepage,
        Action::Cold => T::Cold,
        Action::Willneed => T::Willneed,
        Action::LruPrio => T::LruPrio,
        Action::LruDeprio => T::LruDeprio,
    }
}

/// What address space the engine applies actions to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeTarget {
    /// A process's virtual address space.
    Virtual(Pid),
    /// The machine's physical address space (rmap-based actions).
    Physical,
}

/// Result of one engine pass over an aggregation window.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EnginePass {
    /// Kernel CPU time the actions consumed.
    pub work_ns: Ns,
    /// Bytes paged out this pass.
    pub paged_out: u64,
    /// Bytes THP-promoted this pass.
    pub promoted: u64,
    /// Bytes freed by THP demotion this pass.
    pub demoted_freed: u64,
    /// Bytes counted by STAT schemes this pass.
    pub stat_bytes: u64,
    /// Regions counted by STAT schemes this pass.
    pub stat_regions: u64,
}

/// The Memory Management Schemes Engine.
#[derive(Debug)]
pub struct SchemesEngine {
    target: SchemeTarget,
    schemes: Vec<Scheme>,
    stats: Vec<SchemeStats>,
    quotas: Vec<Option<QuotaState>>,
    wmarks: Vec<Option<(Watermarks, WatermarkState)>>,
    filters: Vec<Vec<AddrFilter>>,
}

impl SchemesEngine {
    /// Build an engine applying `schemes` (in order) to `target`.
    ///
    /// Accepts anything convertible to [`SchemeConfig`]s: a plain
    /// `Vec<Scheme>` (no attachments), or configs built with
    /// [`Scheme::configure`] carrying quotas, watermarks, and filters.
    /// Quota windows start at virtual time 0.
    pub fn new<I>(target: SchemeTarget, schemes: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<SchemeConfig>,
    {
        let mut engine = Self {
            target,
            schemes: Vec::new(),
            stats: Vec::new(),
            quotas: Vec::new(),
            wmarks: Vec::new(),
            filters: Vec::new(),
        };
        for config in schemes {
            let config: SchemeConfig = config.into();
            engine.schemes.push(config.scheme);
            engine.stats.push(SchemeStats::default());
            engine.quotas.push(config.quota.map(|q| QuotaState::new(q, 0)));
            engine.wmarks.push(config.watermarks.map(|w| (w, WatermarkState::Inactive)));
            engine.filters.push(config.filters);
        }
        engine
    }

    /// Current watermark activation state of scheme `idx` (None = no
    /// watermarks configured, i.e. always active).
    pub fn watermark_state(&self, idx: usize) -> Option<WatermarkState> {
        self.wmarks[idx].map(|(_, st)| st)
    }

    /// The configured schemes.
    pub fn schemes(&self) -> &[Scheme] {
        &self.schemes
    }

    /// Per-scheme statistics, parallel to [`Self::schemes`].
    pub fn stats(&self) -> &[SchemeStats] {
        &self.stats
    }

    /// The engine's target space.
    pub fn target(&self) -> SchemeTarget {
        self.target
    }

    /// Process one aggregation window: match and apply every scheme.
    ///
    /// Returns what was done; `work_ns` should be charged through
    /// [`MemorySystem::charge_schemes`] by the caller.
    pub fn on_aggregation(&mut self, sys: &mut MemorySystem, agg: &Aggregation) -> EnginePass {
        let mut pass = EnginePass::default();
        // The whole pass is one SchemeApply span; its virtual duration is
        // the kernel CPU time the actions consumed.
        daos_trace::span!(agg.at, SchemeApply, {
            self.run_pass(sys, agg, &mut pass);
            pass.work_ns
        });
        pass
    }

    fn run_pass(&mut self, sys: &mut MemorySystem, agg: &Aggregation, pass: &mut EnginePass) {
        let free_permille = free_mem_permille(sys);
        for i in 0..self.schemes.len() {
            // Watermarks: advance the activation state machine and skip
            // dormant schemes.
            if let Some((wm, state)) = &mut self.wmarks[i] {
                let prev = *state;
                *state = wm.next_state(free_permille, *state);
                if *state != prev {
                    daos_trace::trace!(agg.at, WatermarkTransition {
                        scheme: i as u32,
                        active: *state == WatermarkState::Active,
                        metric_permille: free_permille as u64,
                    });
                }
                if *state == WatermarkState::Inactive {
                    continue;
                }
            }
            let scheme = self.schemes[i];
            let mut matching: Vec<RegionInfo> = agg
                .regions
                .iter()
                .filter(|r| scheme.matches(r, agg))
                .copied()
                .collect();
            if matching.is_empty() {
                continue;
            }
            // With a quota, spend the budget on the best regions first.
            if self.quotas[i].is_some() {
                prioritize(scheme.action, &mut matching, agg);
            }
            if let Some(q) = &mut self.quotas[i] {
                q.maybe_reset(agg.at);
            }
            for r in &matching {
                self.stats[i].tried(r.range.len());
                daos_trace::trace!(agg.at, SchemeMatch {
                    scheme: i as u32,
                    bytes: r.range.len(),
                });
                // Grant up to the remaining budget without consuming it
                // yet: the quota is charged for what the action actually
                // affects, after filters clip the range and the mm layer
                // reports actionable bytes. Charging the full grant up
                // front (the old behaviour) burned budget on
                // filter-rejected and already-evicted bytes, so a scheme
                // could stall with most of its nominal budget unspent.
                let granted = match &mut self.quotas[i] {
                    Some(q) => {
                        let remaining = q.remaining();
                        if remaining == 0 {
                            self.stats[i].nr_quota_skips += 1;
                            daos_trace::trace!(agg.at, QuotaThrottle {
                                scheme: i as u32,
                                skipped_bytes: r.range.len(),
                            });
                            continue;
                        }
                        remaining.min(r.range.len())
                    }
                    None => r.range.len(),
                };
                // Clip the acted-on range to the granted budget, then
                // run it through the scheme's address filters.
                let range = AddrRange::new(r.range.start, r.range.start + granted);
                let mut applied_total = 0;
                for allowed in apply_filters(range, &self.filters[i]) {
                    let applied = Self::apply(self.target, scheme.action, sys, allowed, pass);
                    if applied > 0 {
                        applied_total += applied;
                        self.stats[i].applied(applied);
                        daos_trace::trace!(agg.at, SchemeApply {
                            scheme: i as u32,
                            action: action_tag(scheme.action),
                            bytes: applied,
                        });
                    }
                }
                if let Some(q) = &mut self.quotas[i] {
                    q.consume(applied_total.min(granted));
                }
            }
        }
    }

    /// Apply one action to one range; returns affected bytes.
    fn apply(
        target: SchemeTarget,
        action: Action,
        sys: &mut MemorySystem,
        range: AddrRange,
        pass: &mut EnginePass,
    ) -> u64 {
        match (target, action) {
            (_, Action::Stat) => {
                pass.stat_bytes += range.len();
                pass.stat_regions += 1;
                range.len()
            }
            (SchemeTarget::Virtual(pid), Action::Pageout) => {
                let (bytes, ns) = sys.pageout(pid, range).unwrap_or((0, 0));
                pass.work_ns += ns;
                pass.paged_out += bytes;
                bytes
            }
            (SchemeTarget::Physical, Action::Pageout) => {
                let (bytes, ns) = sys.pageout_paddr(range);
                pass.work_ns += ns;
                pass.paged_out += bytes;
                bytes
            }
            (SchemeTarget::Virtual(pid), Action::Hugepage) => {
                let (chunks, ns) = sys.promote_huge(pid, range).unwrap_or((0, 0));
                pass.work_ns += ns;
                let bytes = chunks * daos_mm::addr::HUGE_PAGE_SIZE;
                pass.promoted += bytes;
                bytes
            }
            (SchemeTarget::Virtual(pid), Action::Nohugepage) => {
                let (freed, ns) = sys.demote_huge(pid, range).unwrap_or((0, 0));
                pass.work_ns += ns;
                pass.demoted_freed += freed;
                freed
            }
            (SchemeTarget::Virtual(pid), Action::Cold)
            | (SchemeTarget::Virtual(pid), Action::LruDeprio) => {
                sys.mark_cold(pid, range).unwrap_or(0) * daos_mm::addr::PAGE_SIZE
            }
            (SchemeTarget::Virtual(pid), Action::LruPrio) => {
                sys.mark_hot(pid, range).unwrap_or(0) * daos_mm::addr::PAGE_SIZE
            }
            (SchemeTarget::Virtual(pid), Action::Willneed) => {
                let (bytes, ns) = sys.willneed(pid, range).unwrap_or((0, 0));
                pass.work_ns += ns;
                bytes
            }
            // THP / madvise actions need a virtual mapping; on physical
            // targets they are unsupported (as in the kernel).
            (SchemeTarget::Physical, _) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::Quota;
    use daos_mm::access::AccessBatch;
    use daos_mm::addr::HUGE_PAGE_SIZE;
    use daos_mm::clock::ms;
    use daos_mm::machine::MachineProfile;
    use daos_mm::swap::SwapConfig;
    use daos_mm::vma::ThpMode;
    use daos_monitor::RegionInfo;

    use crate::parser::parse_scheme_line;
    use crate::scheme::Scheme;

    fn sys() -> MemorySystem {
        MemorySystem::new(MachineProfile::test_tiny(), SwapConfig::paper_zram(), 99)
    }

    fn agg_of(regions: Vec<RegionInfo>) -> Aggregation {
        Aggregation { at: 0, regions, max_nr_accesses: 20, aggregation_interval: ms(100) }
    }

    fn info(range: AddrRange, nr: u32, age: u32) -> RegionInfo {
        RegionInfo { range, nr_accesses: nr, age }
    }

    /// Tests fabricate "idle" regions right after touching them; drop the
    /// reference bits so reclaim's second chance does not defer eviction.
    fn clear_refs(sys: &mut MemorySystem, pid: u32, range: AddrRange) {
        for p in range.pages() {
            sys.check_accessed_clear(pid, p);
        }
    }

    #[test]
    fn pageout_scheme_reclaims_idle_region() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();

        // prcl from Listing 3: "4K max min min 5s max pageout" — age ≥ 5s.
        let scheme = parse_scheme_line("4K max min min 5s max pageout").unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![scheme]);

        // Young region: nothing happens.
        let agg = agg_of(vec![info(range, 0, 10)]); // 10 intervals = 1s < 5s
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 0);
        assert_eq!(engine.stats()[0].nr_tried, 0);

        // Old idle region: paged out.
        clear_refs(&mut sys, pid, range);
        let agg = agg_of(vec![info(range, 0, 60)]); // 6s ≥ 5s
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 1 << 20);
        assert_eq!(sys.rss_bytes(pid), 0);
        assert_eq!(engine.stats()[0].nr_applied, 1);
        assert!(pass.work_ns > 0);
    }

    #[test]
    fn pageout_skips_accessed_regions() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let scheme = parse_scheme_line("min max min min 1s max pageout").unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![scheme]);
        // Region is old but has nr_accesses=3 → max_freq 'min' (0) fails.
        let agg = agg_of(vec![info(range, 3, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 0);
        assert_eq!(sys.rss_bytes(pid), 1 << 20);
    }

    #[test]
    fn ethp_promotes_hot_and_demotes_cold() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys
            .mmap_at(pid, 8 * HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE, ThpMode::Always)
            .unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();

        let schemes = vec![
            parse_scheme_line("min max 5 max min max hugepage").unwrap(),
            parse_scheme_line("2M max min min 7s max nohugepage").unwrap(),
        ];
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), schemes);

        // Hot region → promotion.
        let agg = agg_of(vec![info(range, 10, 2)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.promoted, 2 * HUGE_PAGE_SIZE);
        assert_eq!(sys.huge_bytes(pid), 2 * HUGE_PAGE_SIZE);

        // Later the region goes idle for ≥7s → demotion (no bloat to free
        // here since all pages were touched, but the huge mapping goes).
        let agg = agg_of(vec![info(range, 0, 80)]);
        engine.on_aggregation(&mut sys, &agg);
        assert_eq!(sys.huge_bytes(pid), 0);
    }

    #[test]
    fn stat_action_counts_without_side_effects() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let mut engine =
            SchemesEngine::new(SchemeTarget::Virtual(pid), vec![Scheme::any(Action::Stat)]);
        let agg = agg_of(vec![info(range, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.stat_bytes, 1 << 20);
        assert_eq!(pass.stat_regions, 1);
        assert_eq!(sys.rss_bytes(pid), 1 << 20, "STAT must not modify memory");
    }

    #[test]
    fn physical_target_pageout_works_thp_noop() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let phys = sys.phys_space();
        let mut engine = SchemesEngine::new(
            SchemeTarget::Physical,
            vec![Scheme::any(Action::Pageout), Scheme::any(Action::Hugepage)],
        );
        let agg = agg_of(vec![info(phys, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 256 << 10, "all mapped frames paged out via rmap");
        assert_eq!(pass.promoted, 0, "hugepage unsupported on physical target");
        assert_eq!(sys.rss_bytes(pid), 0);
    }

    #[test]
    fn quota_limits_bytes_per_window() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 256 << 10, reset_interval: ms(1000) })
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        let agg = agg_of(vec![info(range, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 256 << 10, "quota caps the pageout");
        assert_eq!(sys.rss_bytes(pid), (1 << 20) - (256 << 10));
    }

    #[test]
    fn quota_prioritizes_coldest_regions() {
        let mut sys = sys();
        let pid = sys.spawn();
        let a = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        let b = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(a, 1.0)).unwrap();
        sys.apply_access(pid, &AccessBatch::all(b, 1.0)).unwrap();
        clear_refs(&mut sys, pid, a);
        clear_refs(&mut sys, pid, b);
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 256 << 10, reset_interval: ms(1000) })
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        // b is much older/colder than a.
        let agg = agg_of(vec![info(a, 2, 1), info(b, 0, 90)]);
        engine.on_aggregation(&mut sys, &agg);
        assert_eq!(sys.nr_swapped_in(pid, b), 64, "cold region b evicted first");
        assert_eq!(sys.nr_swapped_in(pid, a), 0);
        assert_eq!(engine.stats()[0].nr_quota_skips, 1);
    }

    #[test]
    fn reject_filtered_region_leaves_quota_intact() {
        // Regression: the engine used to consume quota for the full
        // granted bytes *before* filters ran, so a region that filters
        // then rejected entirely still burned the whole window's budget
        // and starved every later (actionable) region.
        let mut sys = sys();
        let pid = sys.spawn();
        let protected = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        let victim = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(protected, 1.0)).unwrap();
        sys.apply_access(pid, &AccessBatch::all(victim, 1.0)).unwrap();
        clear_refs(&mut sys, pid, protected);
        clear_refs(&mut sys, pid, victim);
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 256 << 10, reset_interval: ms(1000) })
            .filter(crate::filter::AddrFilter::reject(protected))
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        // The protected region is far colder → prioritised (and charged)
        // first under the old accounting.
        let agg = agg_of(vec![info(protected, 0, 90), info(victim, 0, 10)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(
            pass.paged_out,
            256 << 10,
            "budget must survive the filtered region and fund the victim"
        );
        assert_eq!(sys.rss_bytes(pid), 256 << 10);
        assert_eq!(sys.nr_swapped_in(pid, protected), 0, "filter held");
        assert_eq!(sys.nr_swapped_in(pid, victim), 64);
    }

    #[test]
    fn empty_reject_filter_is_a_noop() {
        // Edge case: an empty filter range must neither clip the action
        // nor perturb quota charging.
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 1 << 20, reset_interval: ms(1000) })
            .filter(crate::filter::AddrFilter::reject(AddrRange::empty()))
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        let agg = agg_of(vec![info(range, 0, 90)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 256 << 10);
        assert_eq!(engine.stats()[0].nr_quota_skips, 0);
    }

    #[test]
    fn quota_charges_applied_not_granted_bytes() {
        // A region that is already swapped out yields zero actionable
        // bytes; acting on it must not consume budget.
        let mut sys = sys();
        let pid = sys.spawn();
        let gone = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        let live = sys.mmap(pid, 256 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(gone, 1.0)).unwrap();
        sys.apply_access(pid, &AccessBatch::all(live, 1.0)).unwrap();
        clear_refs(&mut sys, pid, gone);
        clear_refs(&mut sys, pid, live);
        sys.pageout(pid, gone).unwrap(); // now nothing is resident there
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 256 << 10, reset_interval: ms(1000) })
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        // `gone` is colder, so it is attempted (and, before the fix,
        // fully charged) first.
        let agg = agg_of(vec![info(gone, 0, 90), info(live, 0, 10)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 256 << 10, "budget funds bytes actually reclaimed");
        assert_eq!(sys.rss_bytes(pid), 0);
    }

    #[test]
    fn quota_window_starting_past_zero_still_refills() {
        // Quota state is constructed at t=0 but the first aggregation
        // may arrive much later; the window must roll on the grid and
        // refill rather than staying stuck in the first window.
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 512 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 256 << 10, reset_interval: ms(1000) })
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        let mk = |at| Aggregation {
            at,
            regions: vec![info(range, 0, 100)],
            max_nr_accesses: 20,
            aggregation_interval: ms(100),
        };
        // First pass lands mid-stream at t=2.5s: one window's budget.
        let pass = engine.on_aggregation(&mut sys, &mk(ms(2500)));
        assert_eq!(pass.paged_out, 256 << 10);
        // Same window → throttled.
        let pass = engine.on_aggregation(&mut sys, &mk(ms(2600)));
        assert_eq!(pass.paged_out, 0);
        assert!(engine.stats()[0].nr_quota_skips >= 1);
        // Next window boundary (grid anchored at t=0) → budget refills.
        // Fault the evicted head back in so there is something to reclaim.
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let pass = engine.on_aggregation(&mut sys, &mk(ms(3000)));
        assert_eq!(pass.paged_out, 256 << 10);
    }

    #[test]
    fn multiple_schemes_apply_in_order() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 512 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let schemes = vec![Scheme::any(Action::Stat), Scheme::any(Action::Pageout)];
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), schemes);
        let agg = agg_of(vec![info(range, 0, 10)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        // STAT saw the region resident; PAGEOUT then reclaimed it.
        assert_eq!(pass.stat_bytes, 512 << 10);
        assert_eq!(pass.paged_out, 512 << 10);
        assert_eq!(engine.stats()[0].nr_applied, 1);
        assert_eq!(engine.stats()[1].nr_applied, 1);
    }

    #[test]
    fn cold_action_deactivates() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 128 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let mut engine =
            SchemesEngine::new(SchemeTarget::Virtual(pid), vec![Scheme::any(Action::Cold)]);
        let agg = agg_of(vec![info(range, 0, 10)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(engine.stats()[0].sz_applied, 128 << 10);
        assert_eq!(pass.paged_out, 0, "COLD only deactivates");
        assert_eq!(sys.rss_bytes(pid), 128 << 10);
    }

    #[test]
    fn willneed_action_prefetches() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 128 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        sys.pageout(pid, range).unwrap();
        assert_eq!(sys.rss_bytes(pid), 0);
        let mut engine = SchemesEngine::new(
            SchemeTarget::Virtual(pid),
            vec![Scheme::any(Action::Willneed)],
        );
        let agg = agg_of(vec![info(range, 0, 0)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert!(pass.work_ns > 0);
        assert_eq!(sys.rss_bytes(pid), 128 << 10, "prefetched back in");
    }

    #[test]
    fn watermarks_gate_scheme_activation() {
        // Tiny DRAM so free memory moves visibly: 8 MiB total.
        let mut m = MachineProfile::test_tiny();
        m.dram_bytes = 8 << 20;
        let mut sys = MemorySystem::new(m, SwapConfig::paper_zram(), 1);
        let pid = sys.spawn();
        let range = sys.mmap(pid, 2 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);

        // Activate only below 50% free; currently 75% free → dormant.
        let config = Scheme::any(Action::Pageout)
            .configure()
            .watermarks(crate::watermarks::Watermarks {
                metric: crate::watermarks::WatermarkMetric::FreeMemPermille,
                high: 600,
                mid: 500,
                low: 100,
            })
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        let agg = agg_of(vec![info(range, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 0, "75% free: watermarks keep the scheme dormant");
        assert_eq!(
            engine.watermark_state(0),
            Some(crate::watermarks::WatermarkState::Inactive)
        );

        // Build pressure: map+touch 3 more MiB → 37% free → activates.
        let more = sys.mmap(pid, 3 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(more, 1.0)).unwrap();
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert!(pass.paged_out > 0, "under pressure the scheme activates");
        assert_eq!(
            engine.watermark_state(0),
            Some(crate::watermarks::WatermarkState::Active)
        );
    }

    #[test]
    fn filters_protect_ranges_from_actions() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);

        // Protect the middle half of the mapping.
        let protected = AddrRange::new(range.start + (256 << 10), range.start + (768 << 10));
        let config = Scheme::any(Action::Pageout)
            .configure()
            .filter(crate::filter::AddrFilter::reject(protected))
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        let agg = agg_of(vec![info(range, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 512 << 10, "only the unprotected half went out");
        assert_eq!(
            sys.nr_resident_in(pid, protected),
            protected.nr_pages(),
            "the protected range stayed resident"
        );
    }

    #[test]
    fn allow_filter_confines_action() {
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let arena = AddrRange::new(range.start, range.start + (128 << 10));
        let config = Scheme::any(Action::Pageout)
            .configure()
            .filter(crate::filter::AddrFilter::allow(arena))
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        let agg = agg_of(vec![info(range, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        assert_eq!(pass.paged_out, 128 << 10);
    }

    #[test]
    fn engine_pass_is_a_scheme_apply_span() {
        daos_trace::install(daos_trace::Collector::builder().build().unwrap()).unwrap();
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let mut engine =
            SchemesEngine::new(SchemeTarget::Virtual(pid), vec![Scheme::any(Action::Pageout)]);
        let agg = agg_of(vec![info(range, 0, 100)]);
        let pass = engine.on_aggregation(&mut sys, &agg);
        let c = daos_trace::take().unwrap();
        let h = c.registry().hist(&daos_trace::keys::span(daos_trace::Phase::SchemeApply));
        let h = h.expect("one span per pass");
        assert_eq!((h.count(), h.sum()), (1, pass.work_ns), "span carries the pass work");
    }

    #[test]
    fn trace_registry_mirrors_scheme_stats() {
        daos_trace::install(daos_trace::Collector::builder().build().unwrap()).unwrap();
        let mut sys = sys();
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        clear_refs(&mut sys, pid, range);
        let config = Scheme::any(Action::Pageout)
            .configure()
            .quota(Quota { sz_limit: 256 << 10, reset_interval: ms(1000) })
            .build()
            .unwrap();
        let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![config]);
        // Two regions: the quota grants the first and skips the second.
        let half = AddrRange::new(range.start, range.start + (512 << 10));
        let rest = AddrRange::new(range.start + (512 << 10), range.end);
        let agg = agg_of(vec![info(half, 0, 100), info(rest, 0, 100)]);
        engine.on_aggregation(&mut sys, &agg);

        let collector = daos_trace::take().unwrap();
        let from_reg = SchemeStats::from_registry(collector.registry(), 0);
        assert_eq!(from_reg, engine.stats()[0], "registry is the same source of truth");
        assert!(from_reg.nr_tried >= 2 && from_reg.nr_quota_skips >= 1);
        let kinds: Vec<&str> =
            collector.events().iter().map(|te| te.event.name()).collect();
        assert!(kinds.contains(&"SchemeMatch"));
        assert!(kinds.contains(&"SchemeApply"));
        assert!(kinds.contains(&"QuotaThrottle"));
    }

    #[test]
    fn listing1_written_in_2_plus_1_lines() {
        // The paper's claim: access-aware THP in 2 lines, proactive
        // reclamation in 1 line of scheme DSL.
        let ethp = "\
2MB max 80% max 1m max thp
min max min 5% 1m max nothp";
        let prcl = "min max min min 2m max page_out";
        assert_eq!(crate::parser::parse_schemes(ethp).unwrap().len(), 2);
        assert_eq!(crate::parser::parse_schemes(prcl).unwrap().len(), 1);
    }
}
