//! Memory management schemes: three condition pairs + an action (§3.2).
//!
//! "A scheme is constructed with 3 conditions (min/max size of the target
//! region, min/max access frequency of the target region, and min/max age
//! of the target region) and a memory operation action."

use daos_mm::clock::{format_ns, Ns};
use daos_monitor::{Aggregation, RegionInfo};

use crate::action::Action;

/// A condition bound: an explicit value or the `min`/`max` wildcard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound<T> {
    /// No lower constraint (`min` in the DSL).
    Unbounded,
    /// An explicit bound value.
    Val(T),
}

impl<T> Bound<T> {
    /// The wrapped value if explicit.
    pub fn value(&self) -> Option<&T> {
        match self {
            Bound::Unbounded => None,
            Bound::Val(v) => Some(v),
        }
    }
}

/// Access-frequency values can be given as a percentage of the maximum
/// possible access count (`80%`) or as a raw sample count (`5`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FreqVal {
    /// Percent of `max_nr_accesses` (0–100).
    Percent(f64),
    /// Raw `nr_accesses` samples.
    Samples(u32),
}

impl FreqVal {
    /// Resolve to a sample-count threshold for a window with the given
    /// maximum access count.
    pub fn to_samples(&self, max_nr_accesses: u32) -> f64 {
        match self {
            FreqVal::Percent(p) => p / 100.0 * max_nr_accesses as f64,
            FreqVal::Samples(s) => *s as f64,
        }
    }
}

/// Region ages can be given in aggregation intervals (`7`) or wall time
/// (`5s`, `2m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgeVal {
    /// Raw age counter (aggregation intervals).
    Intervals(u32),
    /// Virtual time.
    Time(Ns),
}

impl AgeVal {
    /// Resolve to an interval count given the aggregation interval.
    pub fn to_intervals(&self, aggregation_interval: Ns) -> f64 {
        match self {
            AgeVal::Intervals(i) => *i as f64,
            AgeVal::Time(ns) => *ns as f64 / aggregation_interval.max(1) as f64,
        }
    }
}

/// One memory management scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheme {
    /// Minimum region size in bytes (`Unbounded` = no minimum).
    pub min_sz: Bound<u64>,
    /// Maximum region size in bytes.
    pub max_sz: Bound<u64>,
    /// Minimum access frequency.
    pub min_freq: Bound<FreqVal>,
    /// Maximum access frequency.
    pub max_freq: Bound<FreqVal>,
    /// Minimum age.
    pub min_age: Bound<AgeVal>,
    /// Maximum age.
    pub max_age: Bound<AgeVal>,
    /// Action to apply to matching regions.
    pub action: Action,
}

impl Scheme {
    /// A scheme matching every region.
    pub fn any(action: Action) -> Self {
        Self {
            min_sz: Bound::Unbounded,
            max_sz: Bound::Unbounded,
            min_freq: Bound::Unbounded,
            max_freq: Bound::Unbounded,
            min_age: Bound::Unbounded,
            max_age: Bound::Unbounded,
            action,
        }
    }

    /// Proactive reclamation (the paper's `prcl` core): page out regions
    /// not accessed for at least `min_age_ns`.
    pub fn pageout_older_than(min_age_ns: Ns) -> Self {
        Self {
            min_freq: Bound::Unbounded,
            max_freq: Bound::Val(FreqVal::Samples(0)),
            min_age: Bound::Val(AgeVal::Time(min_age_ns)),
            ..Self::any(Action::Pageout)
        }
    }

    /// Builder: set the size bounds (bytes).
    pub fn sz(mut self, min: Option<u64>, max: Option<u64>) -> Self {
        self.min_sz = min.map_or(Bound::Unbounded, Bound::Val);
        self.max_sz = max.map_or(Bound::Unbounded, Bound::Val);
        self
    }

    /// Builder: set frequency bounds.
    pub fn freq(mut self, min: Option<FreqVal>, max: Option<FreqVal>) -> Self {
        self.min_freq = min.map_or(Bound::Unbounded, Bound::Val);
        self.max_freq = max.map_or(Bound::Unbounded, Bound::Val);
        self
    }

    /// Builder: set age bounds.
    pub fn age(mut self, min: Option<AgeVal>, max: Option<AgeVal>) -> Self {
        self.min_age = min.map_or(Bound::Unbounded, Bound::Val);
        self.max_age = max.map_or(Bound::Unbounded, Bound::Val);
        self
    }

    /// Whether a region from the given aggregation window fulfils all
    /// three conditions (inclusive bounds, as in the kernel).
    pub fn matches(&self, r: &RegionInfo, agg: &Aggregation) -> bool {
        let sz = r.range.len();
        if let Bound::Val(min) = self.min_sz {
            if sz < min {
                return false;
            }
        }
        if let Bound::Val(max) = self.max_sz {
            if sz > max {
                return false;
            }
        }
        let nr = r.nr_accesses as f64;
        if let Bound::Val(min) = self.min_freq {
            if nr < min.to_samples(agg.max_nr_accesses) {
                return false;
            }
        }
        if let Bound::Val(max) = self.max_freq {
            if nr > max.to_samples(agg.max_nr_accesses) {
                return false;
            }
        }
        let age = r.age as f64;
        if let Bound::Val(min) = self.min_age {
            if age < min.to_intervals(agg.aggregation_interval) {
                return false;
            }
        }
        if let Bound::Val(max) = self.max_age {
            if age > max.to_intervals(agg.aggregation_interval) {
                return false;
            }
        }
        true
    }
}

fn fmt_sz(b: &Bound<u64>, wildcard: &str) -> String {
    match b {
        Bound::Unbounded => wildcard.to_string(),
        Bound::Val(v) => {
            const G: u64 = 1 << 30;
            const M: u64 = 1 << 20;
            const K: u64 = 1 << 10;
            if *v >= G && v % G == 0 {
                format!("{}G", v / G)
            } else if *v >= M && v % M == 0 {
                format!("{}M", v / M)
            } else if *v >= K && v % K == 0 {
                format!("{}K", v / K)
            } else {
                format!("{v}B")
            }
        }
    }
}

fn fmt_freq(b: &Bound<FreqVal>, wildcard: &str) -> String {
    match b {
        Bound::Unbounded => wildcard.to_string(),
        Bound::Val(FreqVal::Percent(p)) => format!("{p}%"),
        Bound::Val(FreqVal::Samples(s)) => format!("{s}"),
    }
}

fn fmt_age(b: &Bound<AgeVal>, wildcard: &str) -> String {
    match b {
        Bound::Unbounded => wildcard.to_string(),
        Bound::Val(AgeVal::Intervals(i)) => format!("{i}"),
        Bound::Val(AgeVal::Time(ns)) => format_ns(*ns),
    }
}

impl core::fmt::Display for Scheme {
    /// Render in the DSL line format (parseable back by the parser).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}",
            fmt_sz(&self.min_sz, "min"),
            fmt_sz(&self.max_sz, "max"),
            fmt_freq(&self.min_freq, "min"),
            fmt_freq(&self.max_freq, "max"),
            fmt_age(&self.min_age, "min"),
            fmt_age(&self.max_age, "max"),
            self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::addr::AddrRange;
    use daos_mm::clock::{ms, sec};

    fn agg_with(regions: Vec<RegionInfo>) -> Aggregation {
        Aggregation {
            at: 0,
            regions,
            max_nr_accesses: 20,
            aggregation_interval: ms(100),
        }
    }

    fn region(sz: u64, nr: u32, age: u32) -> RegionInfo {
        RegionInfo { range: AddrRange::new(0, sz), nr_accesses: nr, age }
    }

    #[test]
    fn any_matches_everything() {
        let s = Scheme::any(Action::Stat);
        let agg = agg_with(vec![]);
        assert!(s.matches(&region(4096, 0, 0), &agg));
        assert!(s.matches(&region(1 << 30, 20, 1000), &agg));
    }

    #[test]
    fn size_bounds_inclusive() {
        let s = Scheme::any(Action::Stat).sz(Some(8192), Some(16384));
        let agg = agg_with(vec![]);
        assert!(!s.matches(&region(4096, 0, 0), &agg));
        assert!(s.matches(&region(8192, 0, 0), &agg));
        assert!(s.matches(&region(16384, 0, 0), &agg));
        assert!(!s.matches(&region(16385, 0, 0), &agg));
    }

    #[test]
    fn freq_percent_resolves_against_window_max() {
        // 80% of 20 samples = 16.
        let s = Scheme::any(Action::Stat).freq(Some(FreqVal::Percent(80.0)), None);
        let agg = agg_with(vec![]);
        assert!(!s.matches(&region(4096, 15, 0), &agg));
        assert!(s.matches(&region(4096, 16, 0), &agg));
    }

    #[test]
    fn freq_samples_raw() {
        let s = Scheme::any(Action::Stat).freq(Some(FreqVal::Samples(5)), None);
        let agg = agg_with(vec![]);
        assert!(!s.matches(&region(4096, 4, 0), &agg));
        assert!(s.matches(&region(4096, 5, 0), &agg));
    }

    #[test]
    fn age_time_resolves_against_aggregation_interval() {
        // 2s at 100ms windows = 20 intervals.
        let s = Scheme::any(Action::Stat).age(Some(AgeVal::Time(sec(2))), None);
        let agg = agg_with(vec![]);
        assert!(!s.matches(&region(4096, 0, 19), &agg));
        assert!(s.matches(&region(4096, 0, 20), &agg));
    }

    #[test]
    fn prcl_scheme_semantics() {
        // "page out memory regions not accessed ≥ 2 minutes" (Listing 1).
        let s = Scheme::pageout_older_than(2 * daos_mm::clock::MINUTE);
        let agg = agg_with(vec![]);
        // 2 min at 100 ms windows = 1200 intervals.
        assert!(s.matches(&region(4096, 0, 1200), &agg));
        assert!(!s.matches(&region(4096, 0, 1199), &agg));
        assert!(!s.matches(&region(4096, 1, 1200), &agg), "accessed regions excluded");
        assert_eq!(s.action, Action::Pageout);
    }

    #[test]
    fn display_format() {
        let s = Scheme::any(Action::Pageout)
            .sz(Some(2 << 20), None)
            .freq(Some(FreqVal::Percent(80.0)), None)
            .age(Some(AgeVal::Time(sec(60))), None);
        assert_eq!(s.to_string(), "2M max 80% max 1m max pageout");
    }
}


use daos_util::json::{self, FromJson, Json, JsonError, ToJson};

impl<T: ToJson> ToJson for Bound<T> {
    fn to_json(&self) -> Json {
        match self {
            Bound::Unbounded => Json::Str("Unbounded".into()),
            Bound::Val(v) => json::tagged("Val", v.to_json()),
        }
    }
}

impl<T: FromJson> FromJson for Bound<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return match s.as_str() {
                "Unbounded" => Ok(Bound::Unbounded),
                other => Err(JsonError::msg(format!("unknown Bound '{other}'"))),
            };
        }
        let (tag, payload) = json::untag(v)?;
        match tag {
            "Val" => Ok(Bound::Val(T::from_json(payload)?)),
            other => Err(JsonError::msg(format!("unknown Bound '{other}'"))),
        }
    }
}

impl ToJson for FreqVal {
    fn to_json(&self) -> Json {
        match self {
            FreqVal::Percent(p) => json::tagged("Percent", p.to_json()),
            FreqVal::Samples(s) => json::tagged("Samples", s.to_json()),
        }
    }
}

impl FromJson for FreqVal {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = json::untag(v)?;
        match tag {
            "Percent" => Ok(FreqVal::Percent(f64::from_json(payload)?)),
            "Samples" => Ok(FreqVal::Samples(u32::from_json(payload)?)),
            other => Err(JsonError::msg(format!("unknown FreqVal '{other}'"))),
        }
    }
}

impl ToJson for AgeVal {
    fn to_json(&self) -> Json {
        match self {
            AgeVal::Intervals(n) => json::tagged("Intervals", n.to_json()),
            AgeVal::Time(ns) => json::tagged("Time", ns.to_json()),
        }
    }
}

impl FromJson for AgeVal {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = json::untag(v)?;
        match tag {
            "Intervals" => Ok(AgeVal::Intervals(u32::from_json(payload)?)),
            "Time" => Ok(AgeVal::Time(FromJson::from_json(payload)?)),
            other => Err(JsonError::msg(format!("unknown AgeVal '{other}'"))),
        }
    }
}

daos_util::json_struct!(Scheme {
    min_sz, max_sz, min_freq, max_freq, min_age, max_age, action,
});
