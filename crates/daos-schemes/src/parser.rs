//! The scheme DSL parser (the paper's Listings 1 and 3 format).
//!
//! One scheme per line:
//!
//! ```text
//! # size      frequency   age        action
//! min max     min  min    2m  max    page_out
//! 2MB max     80%  max    1m  max    thp
//! min max     min  5%     1m  max    nothp
//! ```
//!
//! The `min` and `max` keywords denote the *smallest/largest possible
//! value* of the field. In Listing 1's first scheme the frequency pair is
//! `min min` — lower bound "minimum possible" (no constraint) and upper
//! bound *also* "minimum possible" (zero), i.e. only never-accessed
//! regions match. Field syntax:
//!
//! * sizes: `min`/`max`, or a number with optional unit
//!   (`B`, `K`/`KB`/`KiB`, `M`/`MB`/`MiB`, `G`/`GB`/`GiB`, `T`);
//! * frequencies: `min`/`max`, `NN%`, or a raw sample count;
//! * ages: `min`/`max`, a bare number (aggregation intervals), or a time
//!   with unit (`us`, `ms`, `s`, `m`, `h`);
//! * actions: Table 1 keywords plus the paper's aliases
//!   (`thp`, `nothp`, `page_out`).

use daos_mm::clock::Ns;

use crate::action::Action;
use crate::scheme::{AgeVal, Bound, FreqVal, Scheme};

/// Why a single scheme line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeParseError {
    /// The line does not have exactly 7 whitespace-separated fields.
    FieldCount {
        /// How many fields were found.
        got: usize,
        /// The offending line.
        line: String,
    },
    /// The action keyword is not in Table 1 (or the paper's aliases).
    UnknownAction(String),
    /// A size/age token carries an unrecognised unit suffix.
    UnknownUnit {
        /// Which field kind ("size" or "age").
        kind: &'static str,
        /// The unit suffix found.
        unit: String,
        /// The full offending token.
        token: String,
    },
    /// A numeric token failed to parse.
    BadNumber {
        /// What was expected ("size number", "percentage", ...).
        kind: &'static str,
        /// The offending token.
        token: String,
    },
    /// A size/age value is negative.
    Negative {
        /// Which field kind ("size" or "age").
        kind: &'static str,
        /// The offending token.
        token: String,
    },
    /// A frequency percentage lies outside 0–100.
    PercentOutOfRange(String),
    /// A token has no leading digits where a number was required.
    NoNumber(String),
}

impl core::fmt::Display for SchemeParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SchemeParseError::FieldCount { got, line } => {
                write!(f, "expected 7 fields (got {got}): '{line}'")
            }
            SchemeParseError::UnknownAction(a) => write!(f, "unknown action '{a}'"),
            SchemeParseError::UnknownUnit { kind, unit, token } => {
                write!(f, "unknown {kind} unit '{unit}' in '{token}'")
            }
            SchemeParseError::BadNumber { kind, token } => {
                write!(f, "bad {kind} '{token}'")
            }
            SchemeParseError::Negative { kind, token } => {
                write!(f, "negative {kind} '{token}'")
            }
            SchemeParseError::PercentOutOfRange(t) => {
                write!(f, "percentage out of range '{t}'")
            }
            SchemeParseError::NoNumber(t) => write!(f, "expected a number in '{t}'"),
        }
    }
}

impl std::error::Error for SchemeParseError {}

/// A parse failure with its line number (1-based) and typed cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub error: SchemeParseError,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Which slot of a bound pair a token sits in.
#[derive(Clone, Copy, PartialEq)]
enum Slot {
    Lower,
    Upper,
}

/// Parse a whole scheme file: one scheme per non-comment line.
pub fn parse_schemes(text: &str) -> Result<Vec<Scheme>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_scheme_line(line).map_err(|error| ParseError { line: i + 1, error })?);
    }
    Ok(out)
}

/// Parse a single scheme line.
pub fn parse_scheme_line(line: &str) -> Result<Scheme, SchemeParseError> {
    let tok: Vec<&str> = line.split_whitespace().collect();
    if tok.len() != 7 {
        return Err(SchemeParseError::FieldCount { got: tok.len(), line: line.to_string() });
    }
    let min_sz = parse_sz(tok[0], Slot::Lower)?;
    let max_sz = parse_sz(tok[1], Slot::Upper)?;
    let min_freq = parse_freq(tok[2], Slot::Lower)?;
    let max_freq = parse_freq(tok[3], Slot::Upper)?;
    let min_age = parse_age(tok[4], Slot::Lower)?;
    let max_age = parse_age(tok[5], Slot::Upper)?;
    let action = Action::from_keyword(tok[6])
        .ok_or_else(|| SchemeParseError::UnknownAction(tok[6].to_string()))?;
    Ok(Scheme { min_sz, max_sz, min_freq, max_freq, min_age, max_age, action })
}

/// Resolve the `min`/`max` keywords: a keyword matching its own slot is a
/// no-constraint wildcard; the opposite keyword pins the bound to the
/// field's extreme value.
fn keyword_bound<T>(tok: &str, slot: Slot, type_min: T, type_max: T) -> Option<Bound<T>> {
    if tok.eq_ignore_ascii_case("min") {
        Some(match slot {
            Slot::Lower => Bound::Unbounded,
            Slot::Upper => Bound::Val(type_min),
        })
    } else if tok.eq_ignore_ascii_case("max") {
        Some(match slot {
            Slot::Upper => Bound::Unbounded,
            Slot::Lower => Bound::Val(type_max),
        })
    } else {
        None
    }
}

fn parse_sz(tok: &str, slot: Slot) -> Result<Bound<u64>, SchemeParseError> {
    if let Some(b) = keyword_bound(tok, slot, 0u64, u64::MAX) {
        return Ok(b);
    }
    let (num, unit) = split_num_unit(tok)?;
    let mult: u64 = match unit.to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kb" | "kib" => 1 << 10,
        "m" | "mb" | "mib" => 1 << 20,
        "g" | "gb" | "gib" => 1 << 30,
        "t" | "tb" | "tib" => 1 << 40,
        other => {
            return Err(SchemeParseError::UnknownUnit {
                kind: "size",
                unit: other.to_string(),
                token: tok.to_string(),
            })
        }
    };
    let v: f64 = num.parse().map_err(|_| SchemeParseError::BadNumber {
        kind: "size number",
        token: num.to_string(),
    })?;
    if v < 0.0 {
        return Err(SchemeParseError::Negative { kind: "size", token: tok.to_string() });
    }
    Ok(Bound::Val((v * mult as f64) as u64))
}

fn parse_freq(tok: &str, slot: Slot) -> Result<Bound<FreqVal>, SchemeParseError> {
    if let Some(b) = keyword_bound(tok, slot, FreqVal::Samples(0), FreqVal::Percent(100.0)) {
        return Ok(b);
    }
    if let Some(p) = tok.strip_suffix('%') {
        let v: f64 = p.parse().map_err(|_| SchemeParseError::BadNumber {
            kind: "percentage",
            token: tok.to_string(),
        })?;
        if !(0.0..=100.0).contains(&v) {
            return Err(SchemeParseError::PercentOutOfRange(tok.to_string()));
        }
        return Ok(Bound::Val(FreqVal::Percent(v)));
    }
    let v: u32 = tok.parse().map_err(|_| SchemeParseError::BadNumber {
        kind: "sample count",
        token: tok.to_string(),
    })?;
    Ok(Bound::Val(FreqVal::Samples(v)))
}

fn parse_age(tok: &str, slot: Slot) -> Result<Bound<AgeVal>, SchemeParseError> {
    if let Some(b) =
        keyword_bound(tok, slot, AgeVal::Intervals(0), AgeVal::Intervals(u32::MAX))
    {
        return Ok(b);
    }
    let (num, unit) = split_num_unit(tok)?;
    let v: f64 = num.parse().map_err(|_| SchemeParseError::BadNumber {
        kind: "age number",
        token: num.to_string(),
    })?;
    if v < 0.0 {
        return Err(SchemeParseError::Negative { kind: "age", token: tok.to_string() });
    }
    let ns: Option<Ns> = match unit.to_ascii_lowercase().as_str() {
        "" => None, // bare number = aggregation intervals
        "ns" => Some(v as Ns),
        "us" => Some((v * 1e3) as Ns),
        "ms" => Some((v * 1e6) as Ns),
        "s" => Some((v * 1e9) as Ns),
        "m" => Some((v * 60e9) as Ns),
        "h" => Some((v * 3600e9) as Ns),
        other => {
            return Err(SchemeParseError::UnknownUnit {
                kind: "age",
                unit: other.to_string(),
                token: tok.to_string(),
            })
        }
    };
    Ok(Bound::Val(match ns {
        Some(t) => AgeVal::Time(t),
        None => AgeVal::Intervals(v as u32),
    }))
}

fn split_num_unit(tok: &str) -> Result<(&str, &str), SchemeParseError> {
    let split = tok
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '.'))
        .map(|(i, _)| i)
        .unwrap_or(tok.len());
    if split == 0 {
        return Err(SchemeParseError::NoNumber(tok.to_string()));
    }
    Ok((&tok[..split], &tok[split..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::clock::{sec, MINUTE};

    /// Listing 1 of the paper must parse to the documented semantics.
    #[test]
    fn paper_listing1_parses() {
        let text = "\
# size frequency age action
# page out memory regions not accessed >= 2 minutes
min max min min 2m max page_out

# Use THP for >=2MiB regions having >=80% frequency ratio for >=1 minute
2MB max 80% max 1m max thp

# Do not use THP for regions having <=5% frequency ratio for >=1 minute
min max min 5% 1m max nothp
";
        let schemes = parse_schemes(text).unwrap();
        assert_eq!(schemes.len(), 3);

        let prcl = &schemes[0];
        assert_eq!(prcl.action, Action::Pageout);
        assert_eq!(prcl.min_age, Bound::Val(AgeVal::Time(2 * MINUTE)));
        // "min" in the max-frequency slot = at most the minimum possible
        // frequency, i.e. only *never accessed* regions.
        assert_eq!(prcl.max_freq, Bound::Val(FreqVal::Samples(0)));
        assert_eq!(prcl.min_freq, Bound::Unbounded);

        let ethp = &schemes[1];
        assert_eq!(ethp.action, Action::Hugepage);
        assert_eq!(ethp.min_sz, Bound::Val(2 << 20));
        assert_eq!(ethp.min_freq, Bound::Val(FreqVal::Percent(80.0)));
        assert_eq!(ethp.min_age, Bound::Val(AgeVal::Time(MINUTE)));

        let nothp = &schemes[2];
        assert_eq!(nothp.action, Action::Nohugepage);
        assert_eq!(nothp.max_freq, Bound::Val(FreqVal::Percent(5.0)));
    }

    /// Listing 3 of the paper (the evaluation's ethp + prcl schemes).
    #[test]
    fn paper_listing3_parses() {
        let text = "\
# size frequency age action
min max 5 max min max hugepage
2M max min min 7s max nohugepage

4K max min min 5s max pageout
";
        let schemes = parse_schemes(text).unwrap();
        assert_eq!(schemes.len(), 3);
        assert_eq!(schemes[0].action, Action::Hugepage);
        assert_eq!(schemes[0].min_freq, Bound::Val(FreqVal::Samples(5)));
        assert_eq!(schemes[1].action, Action::Nohugepage);
        assert_eq!(schemes[1].min_sz, Bound::Val(2 << 20));
        assert_eq!(schemes[1].max_freq, Bound::Val(FreqVal::Samples(0)));
        assert_eq!(schemes[1].min_age, Bound::Val(AgeVal::Time(sec(7))));
        assert_eq!(schemes[2].action, Action::Pageout);
        assert_eq!(schemes[2].min_sz, Bound::Val(4 << 10));
        assert_eq!(schemes[2].max_freq, Bound::Val(FreqVal::Samples(0)));
        assert_eq!(schemes[2].min_age, Bound::Val(AgeVal::Time(sec(5))));
    }

    #[test]
    fn keyword_semantics_are_positional() {
        // Matching keyword in its own slot = wildcard.
        let s = parse_scheme_line("min max min max min max stat").unwrap();
        assert_eq!(s, Scheme::any(Action::Stat));
        // Opposite keyword pins the extreme value.
        let s = parse_scheme_line("max max min max min max stat").unwrap();
        assert_eq!(s.min_sz, Bound::Val(u64::MAX));
        let s = parse_scheme_line("min max max max min max stat").unwrap();
        assert_eq!(s.min_freq, Bound::Val(FreqVal::Percent(100.0)));
        let s = parse_scheme_line("min max min max min min stat").unwrap();
        assert_eq!(s.max_age, Bound::Val(AgeVal::Intervals(0)));
    }

    #[test]
    fn size_units() {
        let s = parse_scheme_line("4K 2M min max min max stat").unwrap();
        assert_eq!(s.min_sz, Bound::Val(4096));
        assert_eq!(s.max_sz, Bound::Val(2 << 20));
        let s = parse_scheme_line("1GiB 1T min max min max stat").unwrap();
        assert_eq!(s.min_sz, Bound::Val(1 << 30));
        assert_eq!(s.max_sz, Bound::Val(1 << 40));
        let s = parse_scheme_line("512 1024B min max min max stat").unwrap();
        assert_eq!(s.min_sz, Bound::Val(512));
        assert_eq!(s.max_sz, Bound::Val(1024));
    }

    #[test]
    fn fractional_sizes() {
        let s = parse_scheme_line("0.5M max min max min max stat").unwrap();
        assert_eq!(s.min_sz, Bound::Val(512 << 10));
    }

    #[test]
    fn age_units() {
        let s = parse_scheme_line("min max min max 100ms 2h stat").unwrap();
        assert_eq!(s.min_age, Bound::Val(AgeVal::Time(100_000_000)));
        assert_eq!(s.max_age, Bound::Val(AgeVal::Time(7200 * 1_000_000_000)));
        let s = parse_scheme_line("min max min max 7 max stat").unwrap();
        assert_eq!(s.min_age, Bound::Val(AgeVal::Intervals(7)));
    }

    #[test]
    fn error_reporting() {
        let err = parse_schemes("min max min max min max stat\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_scheme_line("min max min max min max explode").is_err());
        assert!(parse_scheme_line("min max min max min max").is_err());
        assert!(parse_scheme_line("min max 120% max min max stat").is_err());
        assert!(parse_scheme_line("min max min max 5parsecs max stat").is_err());
        assert!(parse_scheme_line("4X max min max min max stat").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let schemes = parse_schemes("\n# only a comment\n   \n").unwrap();
        assert!(schemes.is_empty());
        let schemes =
            parse_schemes("min max min max min max stat # trailing comment").unwrap();
        assert_eq!(schemes.len(), 1);
    }

    #[test]
    fn display_parse_roundtrip() {
        let originals = [
            "min max min min 2m max pageout",
            "2M max 80% max 1m max hugepage",
            "min max min 5% 1m max nohugepage",
            "4K 1G 3 18 7 900 cold",
            "min max min max min max stat",
            "8K max min max 30s max willneed",
        ];
        for line in originals {
            let s = parse_scheme_line(line).unwrap();
            let rendered = s.to_string();
            let reparsed = parse_scheme_line(&rendered).unwrap();
            assert_eq!(s, reparsed, "roundtrip failed for '{line}' → '{rendered}'");
        }
    }
}
