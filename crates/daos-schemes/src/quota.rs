//! Action quotas — the aggressiveness limiter.
//!
//! This is the extension the paper gestures at ("We plan to support more
//! actions in the future"); in mainline DAMON it became the
//! quotas/prioritisation mechanism. A quota caps how many bytes a scheme
//! may act on per reset interval, and when the cap binds, regions are
//! prioritised (colder-first for reclaim-like actions, hotter-first for
//! promotion-like ones) so the budget goes to the best candidates.

use daos_mm::clock::Ns;
use daos_monitor::{Aggregation, RegionInfo};

use crate::action::Action;

/// A byte budget per reset interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quota {
    /// Maximum bytes the scheme may affect per interval.
    pub sz_limit: u64,
    /// Budget reset interval (virtual time).
    pub reset_interval: Ns,
}

/// Runtime state of a quota.
#[derive(Debug, Clone, Copy)]
pub struct QuotaState {
    quota: Quota,
    used: u64,
    next_reset: Ns,
}

impl QuotaState {
    /// Fresh state starting at time `now`.
    pub fn new(quota: Quota, now: Ns) -> Self {
        Self { quota, used: 0, next_reset: now + quota.reset_interval }
    }

    /// Roll the window if due. O(1) however far `now` has jumped: the
    /// next boundary is computed by division, keeping it on the grid
    /// anchored at construction time. A `reset_interval` of zero
    /// (rejected by `SchemeConfigBuilder::build`, but reachable through a
    /// hand-built `Quota`) degrades to "reset every call" instead of the
    /// infinite loop the old `while`-increment implementation span into.
    pub fn maybe_reset(&mut self, now: Ns) {
        if now < self.next_reset {
            return;
        }
        self.used = 0;
        let interval = self.quota.reset_interval;
        if interval == 0 {
            self.next_reset = now;
            return;
        }
        let periods = (now - self.next_reset) / interval + 1;
        self.next_reset += periods * interval;
    }

    /// Bytes still available this window.
    pub fn remaining(&self) -> u64 {
        self.quota.sz_limit.saturating_sub(self.used)
    }

    /// Consume budget; returns how many of `bytes` fit.
    pub fn consume(&mut self, bytes: u64) -> u64 {
        let granted = bytes.min(self.remaining());
        self.used += granted;
        granted
    }
}

/// Priority of a region for a given action, higher = act first.
///
/// Reclaim-flavoured actions (PAGEOUT, COLD) prefer old, rarely accessed
/// regions; promotion-flavoured ones (HUGEPAGE, WILLNEED) prefer hot
/// regions. This mirrors DAMOS's per-action priority functions.
pub fn region_priority(action: Action, r: &RegionInfo, agg: &Aggregation) -> f64 {
    let freq = agg.freq_ratio(r); // 0..=1
    let age = r.age as f64;
    match action {
        Action::Pageout | Action::Cold | Action::Nohugepage | Action::LruDeprio => {
            (1.0 - freq) * (1.0 + age)
        }
        Action::Hugepage | Action::Willneed | Action::LruPrio => freq * (1.0 + age),
        Action::Stat => 0.0,
    }
}

/// Sort matching regions by descending priority for the action.
pub fn prioritize(action: Action, regions: &mut [RegionInfo], agg: &Aggregation) {
    regions.sort_by(|a, b| {
        region_priority(action, b, agg)
            .partial_cmp(&region_priority(action, a, agg))
            .unwrap_or(core::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::addr::AddrRange;

    #[test]
    fn quota_budget_and_reset() {
        let q = Quota { sz_limit: 100, reset_interval: 10 };
        let mut st = QuotaState::new(q, 0);
        assert_eq!(st.consume(60), 60);
        assert_eq!(st.consume(60), 40, "clamped to remaining");
        assert_eq!(st.remaining(), 0);
        st.maybe_reset(9);
        assert_eq!(st.remaining(), 0, "not yet due");
        st.maybe_reset(10);
        assert_eq!(st.remaining(), 100, "window rolled");
        st.maybe_reset(45);
        assert_eq!(st.remaining(), 100);
    }

    #[test]
    fn zero_reset_interval_terminates() {
        // Regression: `reset_interval == 0` used to make `maybe_reset`
        // increment `next_reset` by zero forever (an infinite loop the
        // first time any scheme with such a quota fired).
        let q = Quota { sz_limit: 100, reset_interval: 0 };
        let mut st = QuotaState::new(q, 5);
        st.maybe_reset(5); // old code hung here
        assert_eq!(st.remaining(), 100);
        assert_eq!(st.consume(40), 40);
        st.maybe_reset(6); // degenerate quota resets every call
        assert_eq!(st.remaining(), 100);
    }

    #[test]
    fn reset_stays_on_grid_after_large_jump() {
        // A quota window that starts mid-stream (first aggregation at
        // t > 0) must keep its boundaries anchored to construction time,
        // however far virtual time jumps between resets.
        let q = Quota { sz_limit: 100, reset_interval: 10 };
        let mut st = QuotaState::new(q, 3); // boundaries at 13, 23, 33, ...
        st.consume(100);
        st.maybe_reset(12);
        assert_eq!(st.remaining(), 0, "not due before the first boundary");
        st.maybe_reset(1_000_007); // ~10^5 windows at once, O(1)
        assert_eq!(st.remaining(), 100);
        st.consume(100);
        st.maybe_reset(1_000_012);
        assert_eq!(st.remaining(), 0, "still inside the window ending at 1_000_013");
        st.maybe_reset(1_000_013);
        assert_eq!(st.remaining(), 100, "grid preserved across the jump");
    }

    #[test]
    fn pageout_prefers_cold_old_regions() {
        let agg = Aggregation {
            at: 0,
            regions: vec![],
            max_nr_accesses: 20,
            aggregation_interval: 1,
        };
        let hot_young = RegionInfo {
            range: AddrRange::new(0, 4096),
            nr_accesses: 18,
            age: 1,
        };
        let cold_old = RegionInfo {
            range: AddrRange::new(4096, 8192),
            nr_accesses: 0,
            age: 50,
        };
        let mut v = vec![hot_young, cold_old];
        prioritize(Action::Pageout, &mut v, &agg);
        assert_eq!(v[0].range.start, 4096, "cold+old first for pageout");
        prioritize(Action::Hugepage, &mut v, &agg);
        assert_eq!(v[0].range.start, 0, "hot first for promotion");
    }
}


daos_util::json_struct!(Quota { sz_limit, reset_interval });
