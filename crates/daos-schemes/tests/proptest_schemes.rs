//! Property tests for the scheme DSL and matching semantics.

use daos_mm::addr::AddrRange;
use daos_mm::clock::ms;
use daos_monitor::{Aggregation, RegionInfo};
use daos_schemes::{
    apply_filters, parse_scheme_line, Action, AddrFilter, AgeVal, Bound, FreqVal, Scheme,
};
use daos_util::prop::{any_bool, select, vec_of, Just, Strategy, StrategyExt, TestCaseError};
use daos_util::{one_of, prop_assert, prop_assert_eq, proptest};

fn arb_action() -> impl Strategy<Value = Action> {
    select(Action::all().to_vec())
}

fn arb_sz_bound() -> impl Strategy<Value = Bound<u64>> {
    one_of![
        Just(Bound::Unbounded),
        // Keep magnitudes printable-roundtrippable (B/K/M/G units).
        (0u64..u64::MAX / 2).prop_map(Bound::Val),
    ]
}

fn arb_freq_bound() -> impl Strategy<Value = Bound<FreqVal>> {
    one_of![
        Just(Bound::Unbounded),
        (0u32..1000).prop_map(|s| Bound::Val(FreqVal::Samples(s))),
        (0u32..=100).prop_map(|p| Bound::Val(FreqVal::Percent(p as f64))),
    ]
}

fn arb_age_bound() -> impl Strategy<Value = Bound<AgeVal>> {
    one_of![
        Just(Bound::Unbounded),
        (0u32..100_000).prop_map(|i| Bound::Val(AgeVal::Intervals(i))),
        // Whole seconds/minutes so Display units stay exact.
        (0u64..10_000).prop_map(|s| Bound::Val(AgeVal::Time(s * 1_000_000_000))),
    ]
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    (
        arb_sz_bound(),
        arb_sz_bound(),
        arb_freq_bound(),
        arb_freq_bound(),
        arb_age_bound(),
        arb_age_bound(),
        arb_action(),
    )
        .prop_map(|(min_sz, max_sz, min_freq, max_freq, min_age, max_age, action)| Scheme {
            min_sz,
            max_sz,
            min_freq,
            max_freq,
            min_age,
            max_age,
            action,
        })
}

fn region(sz: u64, nr: u32, age: u32) -> RegionInfo {
    RegionInfo { range: AddrRange::new(0, sz), nr_accesses: nr, age }
}

fn agg() -> Aggregation {
    Aggregation { at: 0, regions: vec![], max_nr_accesses: 20, aggregation_interval: ms(100) }
}

proptest! {
    cases = 256;

    /// display → parse is the identity for every representable scheme
    /// whose size bounds fall on unit boundaries.
    fn display_parse_roundtrip(mut s in arb_scheme()) {
        // Sizes print in B/K/M/G units; snap to an exactly-printable value.
        let snap = |b: Bound<u64>| match b {
            Bound::Val(v) => Bound::Val(v & !0x3ff),
            b => b,
        };
        s.min_sz = snap(s.min_sz);
        s.max_sz = snap(s.max_sz);
        let line = s.to_string();
        let parsed = parse_scheme_line(&line)
            .map_err(|e| TestCaseError::fail(format!("'{line}': {e}")))?;
        prop_assert_eq!(parsed, s, "line was '{}'", line);
    }

    /// Matching is monotone: growing a region's age can never turn a
    /// max-age-unbounded match into a non-match, and vice versa for size.
    fn matching_monotone_in_age(nr in 0u32..=20, age in 0u32..1000, min_age in 0u32..1000) {
        let s = Scheme::any(Action::Stat).age(Some(AgeVal::Intervals(min_age)), None);
        let a = agg();
        let m1 = s.matches(&region(4096, nr, age), &a);
        let m2 = s.matches(&region(4096, nr, age + 1), &a);
        prop_assert!(!m1 || m2, "match must persist as age grows");
    }

    /// An inverted interval (min > max) matches nothing.
    fn inverted_bounds_match_nothing(lo in 1u32..100, width in 1u32..100, probe in 0u32..300) {
        let s = Scheme::any(Action::Stat)
            .freq(Some(FreqVal::Samples(lo + width)), Some(FreqVal::Samples(lo - 1)));
        prop_assert!(!s.matches(&region(4096, probe.min(20), 0), &agg()));
    }

    /// Filter chains never emit bytes outside the candidate, never
    /// overlap, and allow-filters only shrink coverage.
    fn filter_outputs_are_sound(
        cand_pages in 1u64..256,
        specs in vec_of((0u64..256, 1u64..128, any_bool()), 0..5),
    ) {
        let candidate = AddrRange::new(0x10000, 0x10000 + cand_pages * 4096);
        let filters: Vec<AddrFilter> = specs
            .iter()
            .map(|&(start, pages, allow)| {
                let r = AddrRange::new(start * 4096, (start + pages) * 4096);
                if allow { AddrFilter::allow(r) } else { AddrFilter::reject(r) }
            })
            .collect();
        let out = apply_filters(candidate, &filters);
        let mut covered = 0u64;
        for (i, r) in out.iter().enumerate() {
            prop_assert!(!r.is_empty());
            prop_assert!(candidate.contains_range(r), "{r} outside {candidate}");
            covered += r.len();
            if let Some(next) = out.get(i + 1) {
                prop_assert!(r.end <= next.start, "outputs must be ordered/disjoint");
            }
        }
        prop_assert!(covered <= candidate.len());
        // With no filters, coverage is exactly the candidate.
        if filters.is_empty() {
            prop_assert_eq!(covered, candidate.len());
        }
    }
}
