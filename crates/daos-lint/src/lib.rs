//! `daos-lint` — the workspace's own static-analysis pass.
//!
//! The repo's correctness story rests on invariants `rustc` cannot see:
//! deterministic replay (simulation crates read only virtual clocks),
//! zero-overhead-when-disabled tracing, the zero-registry-dependency
//! policy, no printing from library code, panic discipline, and a
//! tracepoint taxonomy with no dead variants. They used to be enforced
//! by `grep`/`awk` guards in `scripts/verify.sh`, which strings, doc
//! examples, comments and multiline forms all slipped past. This crate
//! machine-checks them: a hand-rolled comment/string/raw-string-aware
//! [lexer], a per-file token-stream [pass framework](lints::Pass), and
//! a `daos-lint` binary (human and `--json` output, sysexits codes via
//! `DaosError`). On top of the token stream sits a semantic layer —
//! a brace-matched [item tree](model), a conservative name-resolution
//! [call graph](callgraph), and [guard-region analysis](locks) — that
//! powers the concurrency lints: `lock-order` (deadlock cycles with
//! witness paths), `blocking-under-lock`, and `guard-discipline`
//! (poison-funnel enforcement). See [`lints::all_passes`] for the full
//! catalogue.
//!
//! A finding is suppressed — never silenced — with an annotation that
//! carries its reason:
//!
//! ```text
//! // lint: allow(panic, capacity is clamped to >= 1 two lines up)
//! // ordering: Release pairs with the Acquire load in is_finished()
//! ```
//!
//! See `DESIGN.md` §11 for the lint catalogue and annotation grammar.

pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod model;
pub mod source;

pub use lints::{all_passes, run_all, run_filtered, Pass, ALLOW_KEYS};
pub use source::{SourceFile, Workspace};

use daos_util::json::{Json, ToJson};
use std::path::Path;

/// One lint finding: a workspace-invariant violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint that fired (e.g. `panic-discipline`, or `annotation`
    /// for a malformed suppression comment).
    pub lint: &'static str,
    /// Root-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// A finding from a lint pass.
    pub fn new(
        lint: &'static str,
        file: &str,
        line: u32,
        message: String,
    ) -> Finding {
        Finding { lint, file: file.to_string(), line, message }
    }

    /// A malformed-annotation finding (these are never suppressible).
    pub fn annotation(file: &str, line: u32, message: String) -> Finding {
        Finding::new("annotation", file, line, message)
    }

    /// The `file:line: [lint] message` human rendering.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("lint".into(), self.lint.to_json()),
            ("file".into(), self.file.to_json()),
            ("line".into(), u64::from(self.line).to_json()),
            ("message".into(), self.message.to_json()),
        ])
    }
}

/// Load `root` and run every lint: the one-call entry point the binary
/// and the self-check test share.
pub fn lint_workspace(root: &Path) -> Result<(Workspace, Vec<Finding>), daos::DaosError> {
    lint_workspace_filtered(root, None)
}

/// [`lint_workspace`], optionally restricted to a single pass by name
/// (`daos-lint --pass`). An unknown pass name is a usage error.
pub fn lint_workspace_filtered(
    root: &Path,
    pass: Option<&str>,
) -> Result<(Workspace, Vec<Finding>), daos::DaosError> {
    let ws = Workspace::load(root)?;
    let findings = run_filtered(&ws, pass).map_err(|unknown| {
        daos::DaosError::usage(format!(
            "unknown pass `{unknown}` (see daos-lint --list-passes)"
        ))
    })?;
    Ok((ws, findings))
}

/// The `--json` report: machine-readable mirror of the human output.
pub fn report_json(ws: &Workspace, findings: &[Finding]) -> Json {
    Json::Object(vec![
        ("clean".into(), findings.is_empty().to_json()),
        ("files_scanned".into(), (ws.files.len() as u64).to_json()),
        ("manifests_scanned".into(), (ws.manifests.len() as u64).to_json()),
        (
            "lints".into(),
            Json::Array(all_passes().iter().map(|p| p.name().to_json()).collect()),
        ),
        (
            "findings".into(),
            Json::Array(findings.iter().map(ToJson::to_json).collect()),
        ),
    ])
}
