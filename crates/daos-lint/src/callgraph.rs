//! A conservative workspace-wide call graph by name resolution.
//!
//! Rust-accurate call resolution needs full type inference; a linter
//! gets most of the value from much less. A **call site** is an
//! identifier directly followed by `(` that is not a definition
//! (`fn name(`) and not a macro (`name!(` never matches — the `!`
//! separates the ident from the paren). Resolution is by bare name:
//! a site named `tick` resolves to *every* live (non-test) function
//! named `tick` anywhere in the workspace, all merged — the
//! suffix-ambiguity rule from ISSUE 10. Unknown callees (std,
//! closures, tuple constructors) resolve to nothing and are assumed
//! non-blocking and lock-free.
//!
//! Both halves of that bargain are deliberate: merging keeps the
//! analysis sound-ish against dynamic dispatch and cross-crate calls
//! without type information, and unknown-is-clean keeps the noise
//! floor near zero. The lock passes layer their own exclusions on top
//! (guard-chained calls, funnel calls) — see `locks.rs`.

use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Code index (into the file's [`FileModel::code`]) of the callee
    /// identifier.
    pub ci: usize,
    /// The callee's bare name.
    pub name: String,
    /// Line of the callee identifier.
    pub line: u32,
    /// Whether the site is a method call (preceded by `.`).
    pub method: bool,
}

/// Collect the call sites inside the code-index range `range`
/// (exclusive of the braces themselves), skipping any sub-ranges in
/// `skip` (nested named fn bodies, which execute on their own calls,
/// not inline).
pub fn call_sites(
    file: &SourceFile,
    m: &FileModel,
    range: (usize, usize),
    skip: &[(usize, usize)],
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut ci = range.0 + 1;
    while ci < range.1 {
        if let Some(&(_, end)) = skip.iter().find(|(start, _)| *start == ci) {
            ci = end + 1;
            continue;
        }
        if m.kind(file, ci) == TokenKind::Ident
            && m.is(file, ci + 1, "(")
            && !(ci > 0 && m.is(file, ci - 1, "fn"))
        {
            out.push(CallSite {
                ci,
                name: m.text(file, ci).to_string(),
                line: m.line(file, ci),
                method: ci > 0 && m.is(file, ci - 1, "."),
            });
        }
        ci += 1;
    }
    out
}

/// The name-resolution index: bare function name → every live function
/// that bears it, as indices into the caller-supplied function list.
#[derive(Debug, Default)]
pub struct CallGraph {
    index: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the index from `(fn_index, name)` pairs (the caller
    /// supplies only live, non-test functions).
    pub fn build(names: impl IntoIterator<Item = (usize, String)>) -> CallGraph {
        let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, name) in names {
            index.entry(name).or_default().push(idx);
        }
        CallGraph { index }
    }

    /// Every live function a bare name may refer to (empty = unknown
    /// callee, assumed non-blocking and lock-free).
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.index.get(name).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> (SourceFile, FileModel) {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), Some("x".into()), src.into());
        let m = FileModel::build(&f);
        (f, m)
    }

    #[test]
    fn finds_free_and_method_calls_but_not_macros() {
        let (f, m) = model(
            "fn caller(x: S) {\n  helper(1);\n  x.tick();\n  println!(\"skip\");\n  Vec::new();\n}\n",
        );
        let sites = call_sites(&f, &m, m.fns[0].body, &[]);
        let names: Vec<(&str, bool)> =
            sites.iter().map(|s| (s.name.as_str(), s.method)).collect();
        assert_eq!(
            names,
            vec![("helper", false), ("tick", true), ("new", false)]
        );
    }

    #[test]
    fn nested_fn_bodies_are_skipped_when_requested() {
        let (f, m) = model(
            "fn outer() {\n  fn inner() { deep(); }\n  inner();\n}\n",
        );
        let skip = vec![m.fns[1].body];
        let sites = call_sites(&f, &m, m.fns[0].body, &skip);
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["inner"], "deep() belongs to inner, not outer");
    }

    #[test]
    fn resolution_merges_same_name_definitions() {
        let g = CallGraph::build(vec![
            (0, "tick".to_string()),
            (1, "tick".to_string()),
            (2, "other".to_string()),
        ]);
        assert_eq!(g.resolve("tick"), &[0, 1]);
        assert_eq!(g.resolve("other"), &[2]);
        assert!(g.resolve("unknown").is_empty());
    }
}
