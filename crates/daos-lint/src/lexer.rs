//! A hand-rolled Rust lexer, exactly as deep as static analysis needs.
//!
//! The point of lexing (rather than `grep`) is that the token stream
//! knows what is *code*: string literals, raw strings, char literals,
//! doc comments and (nested) block comments can all contain text like
//! `println!(` or `unwrap()` without confusing a pass. The lexer is
//! deliberately lossless about position — every token carries its byte
//! range and 1-based start line — and deliberately lossy about meaning:
//! keywords are just idents, multi-char operators are runs of
//! single-char [`TokenKind::Punct`] tokens, and numeric literals are a
//! single opaque token. That is all the lint passes consume.
//!
//! Robustness policy: the lexer never fails. Malformed input (an
//! unterminated string or comment) consumes to end-of-file; the
//! compiler is the authority on well-formedness, the linter only needs
//! to never mis-classify code as text on *valid* input.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (also raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'!'`.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A `//` comment (includes `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment, nesting included.
    BlockComment,
    /// One ASCII punctuation character (`::` is two of these).
    Punct,
}

/// One lexed token: kind plus source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based line number of the token's first byte.
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), i: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'s> {
    b: &'s [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let start = self.i;
            let line = self.line;
            let c = self.b[self.i];
            let kind = match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                    continue;
                }
                c if c.is_ascii_whitespace() => {
                    self.i += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    TokenKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    TokenKind::BlockComment
                }
                b'"' => {
                    self.i += 1;
                    self.escaped_string();
                    TokenKind::Str
                }
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => {
                    self.number();
                    TokenKind::Number
                }
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    self.i += 1;
                    TokenKind::Punct
                }
            };
            self.out.push(Token { kind, line, start, end: self.i });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn bump_counting_lines(&mut self) {
        if self.b[self.i] == b'\n' {
            self.line += 1;
        }
        self.i += 1;
    }

    fn line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        self.i += 2; // consume `/*`
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.bump_counting_lines();
            }
        }
    }

    /// Body of a `"…"` string, opening quote already consumed.
    fn escaped_string(&mut self) {
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return;
                }
                b'\\' => {
                    self.i += 1; // the escape intro; the escaped byte falls through
                    if self.i < self.b.len() {
                        self.bump_counting_lines();
                    }
                }
                _ => self.bump_counting_lines(),
            }
        }
    }

    /// Body of a raw string with `hashes` trailing `#`s, opening quote
    /// already consumed. No escapes: ends at `"` followed by the hashes.
    fn raw_string(&mut self, hashes: usize) {
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let closed =
                    (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    self.i += 1 + hashes;
                    return;
                }
            }
            self.bump_counting_lines();
        }
    }

    /// At a `'`: a char literal or a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // `'\…'` is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.i += 2; // `'` and `\`
            if self.i < self.b.len() {
                self.bump_counting_lines(); // the escaped byte (n, x, u, ', …)
            }
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.bump_counting_lines(); // hex digits, `{…}` of \u
            }
            self.i = (self.i + 1).min(self.b.len()); // closing `'`
            return TokenKind::Char;
        }
        // `'ident` is a lifetime unless a `'` follows the ident (`'a'`).
        if self.peek(1).is_some_and(is_ident_start) {
            let mut j = self.i + 1;
            while j < self.b.len() && is_ident_continue(self.b[j]) {
                j += 1;
            }
            if self.b.get(j) == Some(&b'\'') {
                self.i = j + 1;
                return TokenKind::Char;
            }
            self.i = j;
            return TokenKind::Lifetime;
        }
        // `'('`, `' '`, `'é'`: one (possibly multi-byte) char, then `'`.
        self.i += 1;
        if self.i < self.b.len() {
            self.bump_counting_lines();
            while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                self.i += 1; // continuation bytes of a multi-byte char
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.i += 1;
        }
        TokenKind::Char
    }

    fn number(&mut self) {
        if self.b[self.i] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.i += 2;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            return;
        }
        let digits = |l: &mut Self| {
            while l.i < l.b.len() && (l.b[l.i].is_ascii_digit() || l.b[l.i] == b'_') {
                l.i += 1;
            }
        };
        digits(self);
        // A fraction only if `.` is followed by a digit — `1.max(2)` and
        // `0..n` must leave the dot(s) as punctuation.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            digits(self);
        }
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            self.i += 2;
            digits(self);
        }
        // Type suffix (`u64`, `f32`, …).
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
    }

    /// An identifier — unless it is the prefix of a string/char literal
    /// (`r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br"…"`, `c"…"`) or a raw
    /// identifier (`r#type`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let ident = &self.b[start..self.i];
        let raw_capable = matches!(ident, b"r" | b"br" | b"cr");
        let quote_capable = matches!(ident, b"r" | b"b" | b"br" | b"c" | b"cr");
        match self.peek(0) {
            Some(b'"') if quote_capable => {
                self.i += 1;
                if raw_capable {
                    // `r"…"` / `br"…"` / `cr"…"`: no escape processing.
                    self.raw_string(0);
                } else {
                    // `b"…"` / `c"…"` still process escapes.
                    self.escaped_string();
                }
                TokenKind::Str
            }
            Some(b'#') if raw_capable => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.i += hashes + 1;
                    self.raw_string(hashes);
                    TokenKind::Str
                } else if ident == b"r" && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier `r#type`.
                    self.i += 1;
                    while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                        self.i += 1;
                    }
                    TokenKind::Ident
                } else {
                    TokenKind::Ident
                }
            }
            Some(b'\'') if ident == b"b" => {
                self.char_or_lifetime();
                TokenKind::Char
            }
            _ => TokenKind::Ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // None of the `println!` texts below may surface as idents.
        let src = r####"
            let a = "println!(\"x\") and \" escaped";
            let b = r#"println!("raw") "# ;
            let c = br##"unwrap() "# inner"## ;
            let d = b"panic!";
            let e = c"expect(";
        "####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d", "let", "e"]);
        let strs: Vec<_> =
            lex(src).into_iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 5);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* x /* unwrap() */ panic! */ b";
        let ks = kinds(src);
        assert_eq!(ks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(ks[1].0, TokenKind::BlockComment);
        assert_eq!(ks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'static str) { let c = 'x'; let q = '\\''; let n = '\\n'; let b = b'!'; }";
        let ls: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(ls, vec!["'a", "'static"]);
        let cs = lex(src).iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(cs, 4);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let src = "let r#type = 1;";
        assert!(idents(src).contains(&"r#type".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n\"two\nlines\"\n/* c\nc */\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").expect("b lexed");
        assert_eq!(b.line, 6);
    }

    #[test]
    fn numbers_do_not_eat_method_dots_or_ranges() {
        let src = "1.max(2); 0..n; 1.5e-3f64; 0xFFu8";
        let ids = idents(src);
        assert!(ids.contains(&"max".to_string()));
        assert!(ids.contains(&"n".to_string()));
        let nums = lex(src).iter().filter(|t| t.kind == TokenKind::Number).count();
        assert_eq!(nums, 5, "1, 2, 0, 1.5e-3f64, 0xFFu8");
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// println!(\"doc\")\n//! unwrap()\nfn f() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn unterminated_forms_consume_to_eof_without_panicking() {
        for src in ["\"open", "r#\"open", "/* open", "'"] {
            let _ = lex(src);
        }
    }
}
