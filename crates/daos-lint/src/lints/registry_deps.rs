//! **no-registry-deps** — the hermetic zero-dependency policy.
//!
//! Every dependency in every manifest must be an in-tree path
//! dependency (`path = …` or `X.workspace = true`); version, git and
//! registry dependencies would make the build non-hermetic. Replaces
//! the old `awk` guard in `scripts/verify.sh`, and additionally covers
//! dotted `[dependencies.X]` sections the awk state machine missed.

use super::Pass;
use crate::source::Workspace;
use crate::Finding;

pub struct RegistryDeps;

impl Pass for RegistryDeps {
    fn name(&self) -> &'static str {
        "no-registry-deps"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for m in &ws.manifests {
            for (line, text, why) in &m.offenders {
                out.push(Finding::new(
                    self.name(),
                    &m.rel,
                    *line,
                    format!("{why}: `{text}`"),
                ));
            }
        }
    }
}
