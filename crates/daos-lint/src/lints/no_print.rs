//! **no-print** — library code must not talk to stdout/stderr.
//!
//! Library crates report through `daos-trace` events/metrics or return
//! values; only `daos-cli` and the `src/bin/` report binaries own the
//! terminal. Replaces the old `grep` guard in `scripts/verify.sh`,
//! which could not tell a `println!` call from one quoted in a string,
//! a doc example, or a block comment.

use super::{is_binary_code, Code, Pass};
use crate::lexer::TokenKind;
use crate::source::Workspace;
use crate::Finding;

const PRINT_MACROS: [&str; 4] = ["print", "println", "eprint", "eprintln"];

pub struct NoPrint;

impl Pass for NoPrint {
    fn name(&self) -> &'static str {
        "no-print"
    }

    fn allow_key(&self) -> &'static str {
        "print"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in ws.files.iter().filter(|f| !is_binary_code(f)) {
            let c = Code::new(file);
            for i in 0..c.len() {
                if c.kind(i) == TokenKind::Ident
                    && PRINT_MACROS.contains(&c.text(i))
                    && c.is(i + 1, "!")
                {
                    out.push(Finding::new(
                        self.name(),
                        &file.rel,
                        c.line(i),
                        format!(
                            "`{}!` in library code: report through daos-trace \
                             or return values",
                            c.text(i)
                        ),
                    ));
                }
            }
        }
    }
}
