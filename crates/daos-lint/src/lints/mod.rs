//! The pass framework: a lint is a [`Pass`] over the loaded
//! [`Workspace`]; most walk one file's comment-free token stream via
//! [`Code`]. Adding a lint is: write a module with a `Pass` impl, list
//! it in [`all_passes`], and (if it supports `// lint: allow(…)`
//! suppression) give it an allow key in [`ALLOW_KEYS`].

use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use crate::Finding;

mod atomic_ordering;
mod blocking_under_lock;
mod dead_tracepoint;
mod determinism;
mod guard_discipline;
mod lock_order;
mod metric_name;
mod no_print;
mod panic_discipline;
mod registry_deps;

/// One static-analysis pass.
pub trait Pass {
    /// The lint's name, as reported in findings (`panic-discipline`).
    fn name(&self) -> &'static str;
    /// The short key `// lint: allow(<key>, <reason>)` uses to suppress
    /// this lint, or `""` if it cannot be suppressed from source.
    fn allow_key(&self) -> &'static str {
        ""
    }
    /// Run the pass over the workspace, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// The allow keys annotations may name (one per suppressible lint).
pub const ALLOW_KEYS: [&str; 9] = [
    "print",
    "panic",
    "time",
    "ordering",
    "tracepoint",
    "metric",
    "lock-order",
    "blocking",
    "guard",
];

/// Every shipped lint, in reporting order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(no_print::NoPrint),
        Box::new(registry_deps::RegistryDeps),
        Box::new(panic_discipline::PanicDiscipline),
        Box::new(determinism::Determinism),
        Box::new(atomic_ordering::AtomicOrdering),
        Box::new(dead_tracepoint::DeadTracepoint),
        Box::new(metric_name::MetricName),
        Box::new(lock_order::LockOrder),
        Box::new(blocking_under_lock::BlockingUnderLock),
        Box::new(guard_discipline::GuardDiscipline),
    ]
}

/// Run every pass, apply `// lint: allow(…)` suppression, and return
/// the surviving findings sorted by `(file, line, lint)` (message as
/// the final tiebreak, so the order is fully deterministic). Malformed
/// annotations are themselves findings (never suppressible).
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    // lint: allow(panic, run_filtered only errs for Some(unknown-pass) filters)
    run_filtered(ws, None).expect("unfiltered run cannot name an unknown pass")
}

/// [`run_all`], optionally restricted to one pass by name (the
/// `daos-lint --pass` fast path). Annotation findings are only
/// included in unfiltered runs. `Err` carries the unknown pass name.
pub fn run_filtered(ws: &Workspace, only: Option<&str>) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    if only.is_none() {
        for f in &ws.files {
            findings.extend(f.annotation_findings.iter().cloned());
        }
    }
    let mut matched = false;
    for pass in all_passes() {
        if only.is_some_and(|name| name != pass.name()) {
            continue;
        }
        matched = true;
        let mut raw = Vec::new();
        pass.check(ws, &mut raw);
        let key = pass.allow_key();
        raw.retain(|fd| {
            key.is_empty()
                || !ws
                    .files
                    .iter()
                    .any(|sf| sf.rel == fd.file && sf.allowed(key, fd.line))
        });
        findings.extend(raw);
    }
    if let Some(name) = only {
        if !matched {
            return Err(name.to_string());
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.message).cmp(&(&b.file, b.line, b.lint, &b.message))
    });
    Ok(findings)
}

/// A file's comment-free token stream, indexed densely — the view
/// every per-file pass pattern-matches over.
pub(crate) struct Code<'f> {
    file: &'f SourceFile,
    idx: Vec<usize>,
}

impl<'f> Code<'f> {
    pub fn new(file: &'f SourceFile) -> Code<'f> {
        Code { file, idx: file.code() }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn kind(&self, i: usize) -> TokenKind {
        self.file.tokens[self.idx[i]].kind
    }

    pub fn text(&self, i: usize) -> &str {
        self.file.text(&self.file.tokens[self.idx[i]])
    }

    pub fn line(&self, i: usize) -> u32 {
        self.file.tokens[self.idx[i]].line
    }

    pub fn in_test(&self, i: usize) -> bool {
        self.file.in_test[self.idx[i]]
    }

    /// Token `i` exists and its text is exactly `s`.
    pub fn is(&self, i: usize, s: &str) -> bool {
        i < self.len() && self.text(i) == s
    }

    /// Token `i` is an identifier with text `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.len() && self.kind(i) == TokenKind::Ident && self.text(i) == s
    }
}

/// Shared exemption: the CLI crate and `src/bin/` report binaries are
/// user-facing programs, not library code.
pub(crate) fn is_binary_code(f: &SourceFile) -> bool {
    f.crate_name.as_deref() == Some("daos-cli") || f.rel.contains("/src/bin/")
}
