//! **panic-discipline** — library non-test code must not panic ad hoc.
//!
//! `unwrap()` / `expect()` / `panic!` (and `unreachable!` / `todo!` /
//! `unimplemented!`) are forbidden outside `#[cfg(test)]` code in
//! library crates: fallible paths return typed errors (`DaosError` and
//! the per-layer error enums). A site whose panic is a *checked
//! invariant* — provably unreachable, or the designed failure mode —
//! carries a `// lint: allow(panic, <reason>)` annotation instead.

use super::{is_binary_code, Code, Pass};
use crate::lexer::TokenKind;
use crate::source::Workspace;
use crate::Finding;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

pub struct PanicDiscipline;

impl Pass for PanicDiscipline {
    fn name(&self) -> &'static str {
        "panic-discipline"
    }

    fn allow_key(&self) -> &'static str {
        "panic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in ws.files.iter().filter(|f| !is_binary_code(f)) {
            let c = Code::new(file);
            for i in 0..c.len() {
                if c.kind(i) != TokenKind::Ident || c.in_test(i) {
                    continue;
                }
                let t = c.text(i);
                let hit = if PANIC_MACROS.contains(&t) && c.is(i + 1, "!") {
                    Some(format!("`{t}!`"))
                } else if PANIC_METHODS.contains(&t)
                    && ((i > 0 && c.is(i - 1, ".") && c.is(i + 1, "("))
                        || (i > 1 && c.is(i - 1, ":") && c.is(i - 2, ":")))
                {
                    Some(format!("`.{t}()`"))
                } else {
                    None
                };
                if let Some(what) = hit {
                    out.push(Finding::new(
                        self.name(),
                        &file.rel,
                        c.line(i),
                        format!(
                            "{what} in library non-test code: return a typed \
                             error, or annotate `// lint: allow(panic, <reason>)`"
                        ),
                    ));
                }
            }
        }
    }
}
