//! **lock-order** — no two locks are ever acquired in opposite orders.
//!
//! The pass builds a global **lock-acquisition-order graph**: an edge
//! `a → b` means some function acquires lock `b` while a guard of lock
//! `a` is live. Edges come from two sources:
//!
//! 1. **Nested acquisitions**: a second acquisition site inside a live
//!    guard region of the same function.
//! 2. **One-level call propagation**: a call site inside a live guard
//!    region, resolved through the [call graph](crate::callgraph) to
//!    every live function of that name; each of *those* functions'
//!    direct acquisitions adds an edge. One level only — deeper
//!    transitive holding is out of scope by design (the call graph is
//!    name-merged, and each extra level multiplies its imprecision).
//!
//! Calls chained directly on a guard expression
//! (`lock(&s.hist).record(x)`) are *excluded* from propagation: they
//! operate on the guarded data, and under name-merged resolution they
//! routinely resolve back to the acquiring wrapper itself, producing
//! spurious self-cycles. Funnel calls and `.lock()`-method sites are
//! likewise excluded — they *are* the acquisitions, already modelled.
//!
//! Any cycle in the graph — including a self-edge, i.e. re-acquiring a
//! lock already held — is a potential deadlock. The finding prints the
//! full witness path: every edge on the cycle with the function, file
//! and line that created it. Suppression (`// lint:
//! allow(lock-order, <reason>)`) is applied per *edge*, at the edge's
//! witness line, so annotating one justified nesting removes exactly
//! that edge from the graph.

use super::Pass;
use crate::locks::{Analysis, LOCK_METHODS};
use crate::source::Workspace;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

/// Why an edge exists: where, and in which function.
struct Witness {
    file: String,
    line: u32,
    detail: String,
}

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn allow_key(&self) -> &'static str {
        "lock-order"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let a = Analysis::build(ws);

        // from-lock → to-lock → first witness.
        let mut edges: BTreeMap<String, BTreeMap<String, Witness>> = BTreeMap::new();
        let mut add = |from: &str, to: &str, w: Witness| {
            edges
                .entry(from.to_string())
                .or_default()
                .entry(to.to_string())
                .or_insert(w);
        };

        for fa in &a.fns {
            let file = &ws.files[fa.file];
            let holder = a.def(fa).qualified();
            for (i, acq) in fa.acquisitions.iter().enumerate() {
                // 1. Nested direct acquisitions.
                for (j, b) in fa.acquisitions.iter().enumerate() {
                    if i == j || !acq.covers(b.site) {
                        continue;
                    }
                    if file.allowed(self.allow_key(), b.line) {
                        continue;
                    }
                    add(
                        &acq.lock,
                        &b.lock,
                        Witness {
                            file: file.rel.clone(),
                            line: b.line,
                            detail: format!(
                                "`{holder}` acquires `{}` while holding `{}`",
                                b.lock, acq.lock
                            ),
                        },
                    );
                }
                // 2. One-level propagation through calls under the guard.
                for c in &fa.calls {
                    if !acq.covers(c.ci)
                        || acq.chained.contains(&c.ci)
                        || (c.method && LOCK_METHODS.contains(&c.name.as_str()))
                        || (!c.method && a.funnels.contains(&c.name))
                    {
                        continue;
                    }
                    if file.allowed(self.allow_key(), c.line) {
                        continue;
                    }
                    for &ti in a.graph.resolve(&c.name) {
                        let callee = &a.fns[ti];
                        let callee_name = a.def(callee).qualified();
                        for b in &callee.acquisitions {
                            add(
                                &acq.lock,
                                &b.lock,
                                Witness {
                                    file: file.rel.clone(),
                                    line: c.line,
                                    detail: format!(
                                        "`{holder}` holds `{}` across a call to \
                                         `{callee_name}`, which acquires `{}`",
                                        acq.lock, b.lock
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }

        for cycle in cycles(&edges) {
            let path: Vec<&Witness> = cycle
                .windows(2)
                .map(|w| &edges[&w[0]][&w[1]])
                .collect();
            let names = cycle.join("` -> `");
            let legs: Vec<String> = path
                .iter()
                .map(|w| format!("{} at {}:{}", w.detail, w.file, w.line))
                .collect();
            out.push(Finding::new(
                self.name(),
                &path[0].file,
                path[0].line,
                format!(
                    "potential deadlock: lock-order cycle `{names}` ({})",
                    legs.join("; ")
                ),
            ));
        }
    }
}

/// One witness cycle per strongly connected component that has one:
/// each returned path is `[l0, l1, …, l0]`. Deterministic: components
/// and start nodes in lexicographic order.
fn cycles(edges: &BTreeMap<String, BTreeMap<String, Witness>>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, tos) in edges {
        nodes.insert(from);
        for to in tos.keys() {
            nodes.insert(to);
        }
    }
    let succ = |n: &str| -> Vec<&str> {
        edges.get(n).map_or_else(Vec::new, |m| m.keys().map(String::as_str).collect())
    };

    // Kosaraju: order by first DFS finish time, then assign components
    // on the transposed graph.
    let mut finish: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if seen.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit post-visit marker.
        let mut stack: Vec<(&str, bool)> = vec![(start, false)];
        while let Some((n, post)) = stack.pop() {
            if post {
                finish.push(n);
                continue;
            }
            if !seen.insert(n) {
                continue;
            }
            stack.push((n, true));
            for s in succ(n) {
                if !seen.contains(s) {
                    stack.push((s, false));
                }
            }
        }
    }
    let mut pred: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, tos) in edges {
        for to in tos.keys() {
            pred.entry(to).or_default().push(from);
        }
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut n_comps = 0;
    for &n in finish.iter().rev() {
        if comp.contains_key(n) {
            continue;
        }
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if comp.insert(m, n_comps).is_none() {
                for p in pred.get(m).map_or(&[][..], Vec::as_slice) {
                    if !comp.contains_key(*p) {
                        stack.push(p);
                    }
                }
            }
        }
        n_comps += 1;
    }

    let mut out = Vec::new();
    let mut comp_nodes: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for (&n, &c) in &comp {
        comp_nodes.entry(c).or_default().push(n);
    }
    let mut components: Vec<Vec<&str>> = comp_nodes.into_values().collect();
    components.sort();
    for members in components {
        let set: BTreeSet<&str> = members.iter().copied().collect();
        let start = members[0];
        if members.len() == 1 {
            // Cyclic only via a self-edge.
            if edges.get(start).is_some_and(|m| m.contains_key(start)) {
                out.push(vec![start.to_string(), start.to_string()]);
            }
            continue;
        }
        // BFS from `start` within the component, then close the loop
        // through any member with an edge back to `start`.
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut reached: BTreeSet<&str> = BTreeSet::from([start]);
        while let Some(n) = queue.pop_front() {
            for s in succ(n) {
                if set.contains(s) && reached.insert(s) {
                    prev.insert(s, n);
                    queue.push_back(s);
                }
            }
        }
        let back = members.iter().copied().find(|m| {
            *m != start
                && reached.contains(m)
                && edges.get(*m).is_some_and(|e| e.contains_key(start))
        });
        if let Some(back) = back {
            let mut path = vec![back];
            let mut cur = back;
            while cur != start {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            path.push(start);
            out.push(path.into_iter().map(str::to_string).collect());
        }
    }
    out
}
