//! **dead-tracepoint** — every declared event variant is emitted.
//!
//! Cross-references the `events! { … }` taxonomy (daos-trace's
//! one-variant-per-tracepoint enum) against every `trace!(at, Variant
//! { … })` emission site in the workspace. A variant nobody emits is a
//! dead tracepoint: the offline report tooling and dashboards would
//! carry schema, decode arms and documentation for data that can never
//! exist. `span!` sites count as emitting `SpanEnter` and `SpanExit`,
//! and direct `emit(at, Event::Variant { … })` calls — what `trace!`
//! expands to, used when a site loops under one `enabled()` check —
//! count for the variant they construct. Pattern matches (`match` arms
//! over `Event::…`) do not count: consuming an event is not emitting
//! it.

use super::{Code, Pass};
use crate::lexer::TokenKind;
use crate::source::Workspace;
use crate::Finding;

pub struct DeadTracepoint;

impl Pass for DeadTracepoint {
    fn name(&self) -> &'static str {
        "dead-tracepoint"
    }

    fn allow_key(&self) -> &'static str {
        "tracepoint"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // (variant, defining file, line) from every `events!` block.
        let mut declared: Vec<(String, String, u32)> = Vec::new();
        // Variant names some `trace!` emits (or `span!` implies).
        let mut emitted: Vec<String> = Vec::new();

        for file in &ws.files {
            let c = Code::new(file);
            for i in 0..c.len() {
                if c.kind(i) != TokenKind::Ident {
                    continue;
                }
                match c.text(i) {
                    "events" if c.is(i + 1, "!") && c.is(i + 2, "{") => {
                        collect_variants(&c, i + 2, &file.rel, &mut declared);
                    }
                    "trace" if c.is(i + 1, "!") && c.is(i + 2, "(") => {
                        if let Some(v) = emitted_variant(&c, i + 2) {
                            emitted.push(v);
                        }
                    }
                    "span" if c.is(i + 1, "!") && c.is(i + 2, "(") => {
                        emitted.push("SpanEnter".into());
                        emitted.push("SpanExit".into());
                    }
                    "emit" if c.is(i + 1, "(") => {
                        emitted.extend(constructed_variants(&c, i + 1));
                    }
                    _ => {}
                }
            }
        }

        for (variant, file, line) in declared {
            if !emitted.iter().any(|e| *e == variant) {
                out.push(Finding::new(
                    self.name(),
                    &file,
                    line,
                    format!(
                        "event variant `{variant}` is declared but no \
                         `trace!`/`span!` site ever emits it"
                    ),
                ));
            }
        }
    }
}

/// Variants inside an `events! { … }` block: idents at nesting depth 1
/// (relative to the block's `{`) that are directly followed by `{`.
fn collect_variants(
    c: &Code<'_>,
    open: usize,
    rel: &str,
    out: &mut Vec<(String, String, u32)>,
) {
    let mut depth = 0isize;
    let mut i = open;
    while i < c.len() {
        match c.text(i) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
            _ => {
                if depth == 1
                    && c.kind(i) == TokenKind::Ident
                    && c.is(i + 1, "{")
                {
                    out.push((c.text(i).to_string(), rel.to_string(), c.line(i)));
                }
            }
        }
        i += 1;
    }
}

/// Variants a raw `emit(at, Event::Variant { … })` call constructs:
/// every `Event::X` path inside the call's parentheses.
fn constructed_variants(c: &Code<'_>, open: usize) -> Vec<String> {
    let mut depth = 0isize;
    let mut i = open;
    let mut out = Vec::new();
    while i < c.len() {
        match c.text(i) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return out;
                }
            }
            "Event"
                if c.kind(i) == TokenKind::Ident
                    && c.is(i + 1, ":")
                    && c.is(i + 2, ":")
                    && i + 3 < c.len()
                    && c.kind(i + 3) == TokenKind::Ident =>
            {
                out.push(c.text(i + 3).to_string());
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The variant a `trace!(at, Variant { … })` site emits: the first
/// identifier after the first depth-1 comma of the macro's parens.
fn emitted_variant(c: &Code<'_>, open: usize) -> Option<String> {
    let mut depth = 0isize;
    let mut i = open;
    let mut seen_comma = false;
    while i < c.len() {
        match c.text(i) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            "," if depth == 1 && !seen_comma => seen_comma = true,
            _ => {
                if seen_comma && c.kind(i) == TokenKind::Ident {
                    return Some(c.text(i).to_string());
                }
            }
        }
        i += 1;
    }
    None
}
