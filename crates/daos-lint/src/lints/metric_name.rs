//! **metric-name-discipline** — registry keys are machine-parseable.
//!
//! Every string literal handed to `counter_add` / `gauge_set` /
//! `hist_record` / `hist_insert` becomes a Prometheus family name via
//! `prom::mangle` (non-alphanumerics collapse to `_`) and a metric
//! history series key behind `/query`. A key outside `[a-z0-9._]`
//! either aliases with another key after mangling (`a-b` and `a.b`
//! both export as `daos_a_b`) or silently sprouts a new family from a
//! typo'd case. Keys built with `format!` (per-scheme, per-tenant)
//! are exempt — the labelled-prefix fold owns their shape.

use super::{Code, Pass};
use crate::lexer::TokenKind;
use crate::source::Workspace;
use crate::Finding;

/// The registry entry points that accept a metric key.
const SINKS: [&str; 4] = ["counter_add", "gauge_set", "hist_record", "hist_insert"];

pub struct MetricName;

impl Pass for MetricName {
    fn name(&self) -> &'static str {
        "metric-name-discipline"
    }

    fn allow_key(&self) -> &'static str {
        "metric"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let c = Code::new(file);
            for i in 0..c.len() {
                if c.kind(i) != TokenKind::Ident
                    || !SINKS.contains(&c.text(i))
                    || !c.is(i + 1, "(")
                    || i + 2 >= c.len()
                    || c.kind(i + 2) != TokenKind::Str
                {
                    continue;
                }
                let Some(key) = literal_content(c.text(i + 2)) else { continue };
                if key.is_empty()
                    || !key.chars().all(|ch| ch.is_ascii_lowercase()
                        || ch.is_ascii_digit()
                        || ch == '.'
                        || ch == '_')
                {
                    out.push(Finding::new(
                        self.name(),
                        &file.rel,
                        c.line(i),
                        format!(
                            "metric key \"{key}\" passed to `{}` must match \
                             [a-z0-9._]+ (it becomes a /metrics family and a \
                             /query series name)",
                            c.text(i)
                        ),
                    ));
                }
            }
        }
    }
}

/// The content of a string-literal token: everything between the first
/// and last `"` (covers plain and raw literals; metric keys never
/// contain escapes).
fn literal_content(lit: &str) -> Option<&str> {
    let (_, rest) = lit.split_once('"')?;
    let (key, _) = rest.rsplit_once('"')?;
    Some(key)
}
