//! **blocking-under-lock** — no guard is held across a blocking call.
//!
//! A thread that blocks while holding a lock stalls every other thread
//! that wants it; under the shared worker pool that turns one slow
//! connection into a convoy. This pass walks every live guard region
//! (see [`crate::locks`]) and flags calls to known-blocking operations
//! inside it: `thread::sleep`, thread/channel waits (`join`, `park`,
//! `recv*`), socket and file I/O (`accept`, `connect`, `peek`,
//! `flush`, `read_*`, `write_all`, `write_fmt`), and the pool's own
//! batch entry points (`run_batch`, `submit`), which block until every
//! task in the batch retires.
//!
//! `Condvar` waits get the one principled exception: `wait`-family
//! calls whose first argument *is the region's own guard* are the
//! condition-variable idiom (the wait releases exactly that lock) and
//! stay clean. A wait on a different guard — releasing lock `b` while
//! still pinning lock `a` — is flagged like any other blocking call.
//! Calls chained on the guard expression itself are deliberately in
//! scope: `recover(out.lock()).write_all(buf)` is socket I/O under the
//! lock no matter how tersely it is spelled.

use super::Pass;
use crate::source::Workspace;
use crate::Finding;
use crate::locks::Analysis;

/// Known-blocking callee names.
const BLOCKING: [&str; 19] = [
    "accept",
    "connect",
    "flush",
    "join",
    "park",
    "peek",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_until",
    "recv",
    "recv_deadline",
    "recv_timeout",
    "run_batch",
    "sleep",
    "submit",
    "write_all",
    "write_fmt",
];

pub struct BlockingUnderLock;

impl Pass for BlockingUnderLock {
    fn name(&self) -> &'static str {
        "blocking-under-lock"
    }

    fn allow_key(&self) -> &'static str {
        "blocking"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let a = Analysis::build(ws);
        for fa in &a.fns {
            let file = &ws.files[fa.file];
            let m = &a.models[fa.file];
            let holder = a.def(fa).qualified();
            for acq in &fa.acquisitions {
                for c in &fa.calls {
                    if !acq.covers(c.ci) {
                        continue;
                    }
                    let wait_family =
                        matches!(c.name.as_str(), "wait" | "wait_timeout" | "wait_while");
                    if wait_family {
                        // `cv.wait(g)` releases exactly the guard it is
                        // handed: clean for that guard's own region.
                        let first_arg_is_own_guard = acq
                            .binding
                            .as_deref()
                            .is_some_and(|b| m.is(file, c.ci + 2, b));
                        if first_arg_is_own_guard {
                            continue;
                        }
                        out.push(Finding::new(
                            self.name(),
                            &file.rel,
                            c.line,
                            format!(
                                "`{holder}` calls `{}` while the guard of `{}` \
                                 (acquired line {}) is live; a wait releases only \
                                 its own lock",
                                c.name, acq.lock, acq.line
                            ),
                        ));
                    } else if BLOCKING.contains(&c.name.as_str()) {
                        out.push(Finding::new(
                            self.name(),
                            &file.rel,
                            c.line,
                            format!(
                                "`{holder}` calls blocking `{}` while the guard of \
                                 `{}` (acquired line {}) is live",
                                c.name, acq.lock, acq.line
                            ),
                        ));
                    }
                }
            }
        }
    }
}
