//! **determinism** — the simulation crates run on virtual time only.
//!
//! `daos-mm`, `daos-monitor`, `daos-schemes` and `daos-tuner` are the
//! deterministic-replay core: every clock they read must come from
//! `daos-mm::clock` (virtual nanoseconds), never the wall clock. A
//! single `Instant::now()` would make traces non-replayable — PR 3's
//! "trace-rebuilt record equals in-memory record" pin only holds
//! because these crates cannot observe real time.

use super::{Code, Pass};
use crate::lexer::TokenKind;
use crate::source::Workspace;
use crate::Finding;

/// Crates whose clocks must be virtual.
const DETERMINISTIC_CRATES: [&str; 4] =
    ["daos-mm", "daos-monitor", "daos-schemes", "daos-tuner"];

/// Wall-clock time sources (argless: they read ambient machine state).
const TIME_SOURCES: [&str; 2] = ["Instant", "SystemTime"];

pub struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn allow_key(&self) -> &'static str {
        "time"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in ws.files.iter().filter(|f| {
            f.crate_name
                .as_deref()
                .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
        }) {
            let c = Code::new(file);
            for i in 0..c.len() {
                if c.kind(i) == TokenKind::Ident && TIME_SOURCES.contains(&c.text(i)) {
                    out.push(Finding::new(
                        self.name(),
                        &file.rel,
                        c.line(i),
                        format!(
                            "wall-clock source `{}` in deterministic crate \
                             `{}`: clocks here come from daos-mm::clock",
                            c.text(i),
                            file.crate_name.as_deref().unwrap_or(""),
                        ),
                    ));
                }
            }
        }
    }
}
