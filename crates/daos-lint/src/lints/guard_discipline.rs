//! **guard-discipline** — every guard acquisition recovers from poison.
//!
//! The workspace's policy is that a poisoned lock is a *survivable*
//! event: the panic that poisoned it is already being reported, and the
//! protected data is either valid or about to be discarded. Every
//! acquisition must therefore flow through a poison funnel —
//! `recover(…)`, the `lock(…)` helper, or an inline
//! `.unwrap_or_else(PoisonError::into_inner)` — instead of stacking a
//! second panic on top with `.lock().unwrap()`.
//!
//! The [guard analysis](crate::locks) classifies each acquisition:
//! funnel-wrapped and `into_inner`-recovered sites are clean; a bare
//! `.unwrap()` / `.expect(…)` on the acquisition result is the classic
//! violation; and an acquisition with no recovery at all (a raw
//! `Result` guard flowing elsewhere) is flagged too, because the
//! funnels exist precisely so that callers never handle
//! `PoisonError` ad hoc.

use super::Pass;
use crate::locks::Analysis;
use crate::source::Workspace;
use crate::Finding;

pub struct GuardDiscipline;

impl Pass for GuardDiscipline {
    fn name(&self) -> &'static str {
        "guard-discipline"
    }

    fn allow_key(&self) -> &'static str {
        "guard"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let a = Analysis::build(ws);
        for fa in &a.fns {
            let file = &ws.files[fa.file];
            let holder = a.def(fa).qualified();
            for acq in &fa.acquisitions {
                if acq.recovered {
                    continue;
                }
                let message = if acq.panic_suffix {
                    format!(
                        "`{holder}`: bare `{}.{}().unwrap()`-style acquisition \
                         panics on poison; route it through `recover(…)` or \
                         `.unwrap_or_else(PoisonError::into_inner)`",
                        acq.lock, acq.method
                    )
                } else {
                    format!(
                        "`{holder}`: acquisition `{}.{}()` does not flow through \
                         a poison funnel (`recover(…)` / `lock(…)` / \
                         `.unwrap_or_else(PoisonError::into_inner)`)",
                        acq.lock, acq.method
                    )
                };
                out.push(Finding::new(self.name(), &file.rel, acq.line, message));
            }
        }
    }
}
