//! **atomic-ordering** — every memory-ordering choice is justified.
//!
//! Each `Ordering::SeqCst` / `AcqRel` / `Acquire` / `Release` /
//! `Relaxed` use must carry an `// ordering: <why>` comment on the same
//! line or the line(s) immediately above, naming what the ordering
//! pairs with (or why no pairing is needed). `SeqCst` written out of
//! caution and `Relaxed` written out of optimism look identical in
//! code; the comment is where the reasoning lives, and this lint makes
//! it load-bearing.

use super::{Code, Pass};
use crate::source::Workspace;
use crate::Finding;

const ORDERINGS: [&str; 5] = ["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

pub struct AtomicOrdering;

impl Pass for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn allow_key(&self) -> &'static str {
        "ordering"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let c = Code::new(file);
            for i in 0..c.len() {
                if !(c.is_ident(i, "Ordering")
                    && c.is(i + 1, ":")
                    && c.is(i + 2, ":")
                    && i + 3 < c.len()
                    && ORDERINGS.contains(&c.text(i + 3)))
                {
                    continue;
                }
                let justified = file.ordering_justified.contains(&c.line(i))
                    || file.ordering_justified.contains(&c.line(i + 3));
                if !justified {
                    out.push(Finding::new(
                        self.name(),
                        &file.rel,
                        c.line(i + 3),
                        format!(
                            "`Ordering::{}` without an `// ordering:` \
                             justification comment",
                            c.text(i + 3)
                        ),
                    ));
                }
            }
        }
    }
}
