//! `daos-lint` — machine-check the workspace invariants.
//!
//! ```text
//! USAGE: daos-lint [--root DIR] [--json]
//! ```
//!
//! Exits 0 on a clean workspace; on findings it prints them (human
//! lines, or a JSON report with `--json`) and exits with
//! `EX_DATAERR` (65) via `DaosError::Lint`.

use daos::DaosError;
use daos_lint::{lint_workspace, report_json};
use std::path::PathBuf;

const USAGE: &str = "\
daos-lint — static analysis of the workspace invariants

USAGE:
    daos-lint [--root DIR] [--json]

OPTIONS:
    --root DIR   workspace root to scan (default: .)
    --json       machine-readable report on stdout

Lints: no-print, no-registry-deps, panic-discipline, determinism,
atomic-ordering, dead-tracepoint, metric-name-discipline. See
DESIGN.md §11 for the catalogue and the `// lint: allow(<key>,
<reason>)` annotation grammar.
";

fn run() -> Result<(), DaosError> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(args.next().ok_or_else(|| {
                    DaosError::usage("--root needs a directory argument")
                })?);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => {
                return Err(DaosError::usage(format!(
                    "unknown argument '{other}'\n\n{USAGE}"
                )));
            }
        }
    }
    if !root.join("Cargo.toml").is_file() {
        return Err(DaosError::usage(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        )));
    }

    let (ws, findings) = lint_workspace(&root)?;
    if json {
        println!("{}", report_json(&ws, &findings).to_string_compact());
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            println!(
                "daos-lint: clean ({} files, {} manifests)",
                ws.files.len(),
                ws.manifests.len()
            );
        }
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(DaosError::Lint { findings: findings.len() })
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("daos-lint: {e}");
        std::process::exit(e.exit_code());
    }
}
