//! `daos-lint` — machine-check the workspace invariants.
//!
//! ```text
//! USAGE: daos-lint [--root DIR] [--json] [--pass NAME] [--list-passes]
//! ```
//!
//! Exits 0 on a clean workspace; on findings it prints them (human
//! lines, or a JSON report with `--json`) and exits with
//! `EX_DATAERR` (65) via `DaosError::Lint`; usage errors exit 2.

use daos::DaosError;
use daos_lint::{all_passes, lint_workspace_filtered, report_json};
use std::path::PathBuf;

const USAGE: &str = "\
daos-lint — static analysis of the workspace invariants

USAGE:
    daos-lint [--root DIR] [--json] [--pass NAME] [--list-passes]

OPTIONS:
    --root DIR     workspace root to scan (default: .)
    --json         machine-readable report on stdout
    --pass NAME    run a single pass by name (fast local iteration)
    --list-passes  print every pass name, one per line, and exit

EXIT CODES:
    0   clean (no findings)
    65  findings reported (EX_DATAERR)
    2   usage error (unknown flag, bad --root, unknown --pass)

Passes: no-print, no-registry-deps, panic-discipline, determinism,
atomic-ordering, dead-tracepoint, metric-name-discipline, lock-order,
blocking-under-lock, guard-discipline. See DESIGN.md §11 and §16 for
the catalogue and the `// lint: allow(<key>, <reason>)` annotation
grammar.
";

fn run() -> Result<(), DaosError> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut pass: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(args.next().ok_or_else(|| {
                    DaosError::usage("--root needs a directory argument")
                })?);
            }
            "--pass" => {
                pass = Some(args.next().ok_or_else(|| {
                    DaosError::usage("--pass needs a pass name (see --list-passes)")
                })?);
            }
            "--list-passes" => {
                for p in all_passes() {
                    println!("{}", p.name());
                }
                return Ok(());
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => {
                return Err(DaosError::usage(format!(
                    "unknown argument '{other}'\n\n{USAGE}"
                )));
            }
        }
    }
    if !root.join("Cargo.toml").is_file() {
        return Err(DaosError::usage(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        )));
    }

    let (ws, findings) = lint_workspace_filtered(&root, pass.as_deref())?;
    if json {
        println!("{}", report_json(&ws, &findings).to_string_compact());
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            println!(
                "daos-lint: clean ({} files, {} manifests)",
                ws.files.len(),
                ws.manifests.len()
            );
        }
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(DaosError::Lint { findings: findings.len() })
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("daos-lint: {e}");
        std::process::exit(e.exit_code());
    }
}
