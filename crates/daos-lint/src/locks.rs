//! Guard-region analysis: where are lock guards *live*?
//!
//! An **acquisition** is either a direct `.lock()` / `.read()` /
//! `.write()` call (empty argument list — which is what distinguishes
//! `Mutex::lock` from `io::Read::read(&mut buf)`), or a call through a
//! **poison funnel** — a workspace function named `recover` or `lock`
//! whose body mentions `PoisonError` (the `unwrap_or_else(PoisonError::
//! into_inner)` idiom the codebase standardises on).
//!
//! Each acquisition gets a **region**: the code-index span where the
//! guard is assumed live. A guard bound by `let g = …;` lives until the
//! first of `drop(g)`, a rebinding of `g` (`g = cv.wait(g)` — the loop
//! idiom), or the enclosing block's `}`. A temporary guard
//! (`recover(m.lock()).push_back(x);`) lives to the end of its
//! statement. Both rules *under*-approximate real Rust temporaries
//! (rebinding actually returns the same guard; `if let` scrutinee
//! temporaries outlive the body) — deliberately: the passes built on
//! regions (`lock-order`, `blocking-under-lock`) must not cry wolf, so
//! a region ends as soon as the source stops saying it is needed.
//!
//! The analysis also classifies each acquisition's poison handling for
//! the `guard-discipline` pass: funnel-wrapped and
//! `.unwrap_or_else(… into_inner)` sites are *recovered*; a chained
//! `.unwrap()` / `.expect(…)` is a bare panic on poison; anything else
//! is an unfunnelled acquisition.

use crate::callgraph::{call_sites, CallGraph, CallSite};
use crate::lexer::TokenKind;
use crate::model::{FileModel, FnDef};
use crate::source::{SourceFile, Workspace};
use std::collections::BTreeSet;

/// The direct acquisition method names.
pub const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One guard acquisition and its live region.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// The lock's name: the receiver's last field identifier
    /// (`self.shared.snap.read()` → `snap`), or the funnel argument's
    /// last identifier (`lock(&inner.queue)` → `queue`).
    pub lock: String,
    /// `lock`, `read`, `write`, or `funnel`.
    pub method: String,
    /// Line of the acquisition.
    pub line: u32,
    /// Code index of the acquisition identifier (method name or funnel
    /// name).
    pub site: usize,
    /// Code-index span where the guard is live: `(site, end)`, `end`
    /// being the terminator token (`;`, `}`, `drop`, or the rebinding
    /// identifier). Sites strictly inside are "under" this guard.
    pub region: (usize, usize),
    /// The guard's binding name, for `let g = <acquisition>;` forms.
    pub binding: Option<String>,
    /// Poison is recovered: funnel-wrapped or
    /// `.unwrap_or_else(… into_inner)`.
    pub recovered: bool,
    /// A `.unwrap()` / `.expect(…)` is chained directly on the
    /// acquisition result.
    pub panic_suffix: bool,
    /// Code indices of call identifiers chained on the guard expression
    /// itself (`recover(q.lock()).push_back(x)` → `push_back`). These
    /// operate on the guarded data and are excluded from lock-order
    /// call propagation.
    pub chained: Vec<usize>,
}

impl Acquisition {
    /// Is code index `ci` strictly inside this guard's live region?
    pub fn covers(&self, ci: usize) -> bool {
        ci > self.region.0 && ci < self.region.1
    }
}

/// Per-function analysis results.
#[derive(Debug)]
pub struct FnAnalysis {
    /// Index into [`Workspace::files`] / [`Analysis::models`].
    pub file: usize,
    /// Index into that file model's `fns`.
    pub def: usize,
    /// Guard acquisitions in this function's body.
    pub acquisitions: Vec<Acquisition>,
    /// Call sites in this function's body (nested fn bodies excluded).
    pub calls: Vec<CallSite>,
}

/// The whole-workspace concurrency analysis the three lock passes
/// share: item trees, the poison-funnel set, per-function acquisition
/// regions and call sites, and the name-resolution call graph.
#[derive(Debug)]
pub struct Analysis {
    /// One [`FileModel`] per [`Workspace::files`] entry.
    pub models: Vec<FileModel>,
    /// Names of the workspace's poison-funnel functions.
    pub funnels: BTreeSet<String>,
    /// Every live (non-test) function, across all files.
    pub fns: Vec<FnAnalysis>,
    /// Bare-name resolution over `fns` indices.
    pub graph: CallGraph,
}

impl Analysis {
    /// Build the analysis for a loaded workspace.
    pub fn build(ws: &Workspace) -> Analysis {
        let models: Vec<FileModel> = ws.files.iter().map(FileModel::build).collect();

        let mut funnels = BTreeSet::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for def in &models[fi].fns {
                if !def.is_test
                    && (def.name == "recover" || def.name == "lock")
                    && body_mentions(file, &models[fi], def, "PoisonError")
                {
                    funnels.insert(def.name.clone());
                }
            }
        }

        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let m = &models[fi];
            for (di, def) in m.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                let skip: Vec<(usize, usize)> = m
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(j, g)| {
                        *j != di && g.body.0 > def.body.0 && g.body.1 < def.body.1
                    })
                    .map(|(_, g)| g.body)
                    .collect();
                fns.push(FnAnalysis {
                    file: fi,
                    def: di,
                    acquisitions: find_acquisitions(file, m, def.body, &skip, &funnels),
                    calls: call_sites(file, m, def.body, &skip),
                });
            }
        }

        let graph = CallGraph::build(
            fns.iter()
                .enumerate()
                .map(|(i, fa)| (i, models[fa.file].fns[fa.def].name.clone())),
        );
        Analysis { models, funnels, fns, graph }
    }

    /// The [`FnDef`] behind a `fns` entry.
    pub fn def(&self, fa: &FnAnalysis) -> &FnDef {
        &self.models[fa.file].fns[fa.def]
    }
}

/// Does a function's body contain an identifier with text `word`?
fn body_mentions(file: &SourceFile, m: &FileModel, def: &FnDef, word: &str) -> bool {
    (def.body.0..=def.body.1).any(|ci| {
        m.kind(file, ci) == TokenKind::Ident && m.text(file, ci) == word
    })
}

/// A thin cursor over one file model, to keep the pattern matching
/// below readable.
struct V<'a> {
    f: &'a SourceFile,
    m: &'a FileModel,
}

impl V<'_> {
    fn len(&self) -> usize {
        self.m.code.len()
    }
    fn kind(&self, ci: usize) -> TokenKind {
        self.m.kind(self.f, ci)
    }
    fn text(&self, ci: usize) -> &str {
        self.m.text(self.f, ci)
    }
    fn line(&self, ci: usize) -> u32 {
        self.m.line(self.f, ci)
    }
    fn is(&self, ci: usize, s: &str) -> bool {
        self.m.is(self.f, ci, s)
    }
    fn ident(&self, ci: usize) -> Option<&str> {
        (ci < self.len() && self.kind(ci) == TokenKind::Ident).then(|| self.text(ci))
    }

    /// Forward delimiter match from `at` (holding `open`).
    fn close(&self, at: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0isize;
        for ci in at..self.len() {
            if self.kind(ci) != TokenKind::Punct {
                continue;
            }
            let t = self.text(ci);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    /// Backward delimiter match from `at` (holding `close`).
    fn open(&self, at: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0isize;
        for ci in (0..=at).rev() {
            if self.kind(ci) != TokenKind::Punct {
                continue;
            }
            let t = self.text(ci);
            if t == close {
                depth += 1;
            } else if t == open {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }
}

/// Find every acquisition in `range`, skipping nested-fn body ranges.
pub fn find_acquisitions(
    file: &SourceFile,
    m: &FileModel,
    range: (usize, usize),
    skip: &[(usize, usize)],
    funnels: &BTreeSet<String>,
) -> Vec<Acquisition> {
    let v = V { f: file, m };
    let mut out = Vec::new();
    let mut ci = range.0 + 1;
    while ci < range.1 {
        if let Some(&(_, end)) = skip.iter().find(|(s, _)| *s == ci) {
            ci = end + 1;
            continue;
        }
        // Direct method form: `.lock()` / `.read()` / `.write()`.
        if v.is(ci, ".")
            && v.ident(ci + 1).is_some_and(|t| LOCK_METHODS.contains(&t))
            && v.is(ci + 2, "(")
            && v.is(ci + 3, ")")
        {
            if let Some(a) = method_acquisition(&v, ci, range, skip, funnels) {
                out.push(a);
            }
            ci += 4;
            continue;
        }
        // Funnel-call form: `lock(&path)` — the funnel acquires inside.
        if v.ident(ci).is_some_and(|t| funnels.contains(t))
            && v.is(ci + 1, "(")
            && !(ci > 0 && (v.is(ci - 1, ".") || v.is(ci - 1, "fn")))
        {
            if let Some(a) = funnel_acquisition(&v, ci, range, skip) {
                out.push(a);
            }
        }
        ci += 1;
    }
    out
}

/// Parse a `.lock()`-form acquisition whose `.` sits at `dot`.
fn method_acquisition(
    v: &V,
    dot: usize,
    range: (usize, usize),
    skip: &[(usize, usize)],
    funnels: &BTreeSet<String>,
) -> Option<Acquisition> {
    let method_tok = dot + 1;
    let call_close = dot + 3;

    // Walk the receiver path backwards: identifiers, `.`/`:` path
    // separators, and `[…]` / `(…)` groups. The first identifier met
    // (outside groups) is the lock's field name.
    let mut name: Option<String> = None;
    let mut start = dot;
    let mut j = dot.checked_sub(1)?;
    loop {
        match v.text(j) {
            "]" => {
                let o = v.open(j, "[", "]")?;
                start = o;
                j = o.checked_sub(1)?;
            }
            ")" => {
                let o = v.open(j, "(", ")")?;
                start = o;
                j = o.checked_sub(1)?;
            }
            "." | ":" => {
                start = j;
                match j.checked_sub(1) {
                    Some(p) => j = p,
                    None => break,
                }
            }
            _ if matches!(v.kind(j), TokenKind::Ident | TokenKind::Number) => {
                if name.is_none() && v.kind(j) == TokenKind::Ident {
                    name = Some(v.text(j).to_string());
                }
                start = j;
                match j.checked_sub(1) {
                    Some(p) => j = p,
                    None => break,
                }
            }
            _ => break,
        }
    }
    let name = name.unwrap_or_else(|| "<expr>".to_string());

    // Funnel prefix: `recover(count.lock())` — skip leading `&`/`*`,
    // expect `(` preceded by a funnel identifier (not a method call).
    let mut pre = start;
    while pre > 0 && matches!(v.text(pre - 1), "&" | "*" | "mut") {
        pre -= 1;
    }
    let funnel = pre >= 2
        && v.is(pre - 1, "(")
        && v.ident(pre - 2).is_some_and(|t| funnels.contains(t))
        && !(pre >= 3 && v.is(pre - 3, "."));

    let (expr_start, expr_end, recovered, panic_suffix) = if funnel {
        let fc = v.close(pre - 1, "(", ")")?;
        (pre - 2, fc, true, false)
    } else {
        // Suffix classification on the raw `Result<Guard, _>`.
        let k = call_close + 1;
        if v.is(k, ".") {
            match v.ident(k + 1) {
                Some("unwrap_or_else") if v.is(k + 2, "(") => {
                    let ce = v.close(k + 2, "(", ")")?;
                    let rec = (k + 3..ce)
                        .any(|p| v.ident(p) == Some("into_inner"));
                    (start, ce, rec, false)
                }
                Some("unwrap") if v.is(k + 2, "(") && v.is(k + 3, ")") => {
                    (start, k + 3, false, true)
                }
                Some("expect") if v.is(k + 2, "(") => {
                    (start, v.close(k + 2, "(", ")")?, false, true)
                }
                _ => (start, call_close, false, false),
            }
        } else {
            (start, call_close, false, false)
        }
    };

    finish(
        v,
        Acq {
            lock: name,
            method: v.text(method_tok).to_string(),
            line: v.line(method_tok),
            site: method_tok,
            expr_start,
            expr_end,
            recovered,
            panic_suffix,
        },
        range,
        skip,
    )
}

/// Parse a `lock(&inner.queue)`-style funnel-call acquisition whose
/// funnel identifier sits at `at`.
fn funnel_acquisition(
    v: &V,
    at: usize,
    range: (usize, usize),
    skip: &[(usize, usize)],
) -> Option<Acquisition> {
    let cp = v.close(at + 1, "(", ")")?;
    // If the arguments contain a direct `.lock()`-form acquisition the
    // inner site owns this acquisition (with this funnel as prefix).
    let has_inner = (at + 2..cp).any(|j| {
        v.is(j, ".")
            && v.ident(j + 1).is_some_and(|t| LOCK_METHODS.contains(&t))
            && v.is(j + 2, "(")
            && v.is(j + 3, ")")
    });
    if has_inner {
        return None;
    }
    // Only simple-path arguments acquire: `&self.queue`, `sh`,
    // `&shards[i]`. Anything with nested calls (`recover(cv.wait(g))`)
    // is not an acquisition.
    let simple = (at + 2..cp).all(|j| {
        matches!(v.kind(j), TokenKind::Ident | TokenKind::Number)
            || matches!(v.text(j), "&" | "*" | "." | ":" | "[" | "]" | "mut")
    });
    if !simple || cp == at + 2 {
        return None;
    }
    // The lock name: last identifier at bracket depth 0 in the args.
    let mut depth = 0isize;
    let mut name = None;
    for j in at + 2..cp {
        match v.text(j) {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ if depth == 0 && v.kind(j) == TokenKind::Ident => {
                name = Some(v.text(j).to_string());
            }
            _ => {}
        }
    }
    finish(
        v,
        Acq {
            lock: name?,
            method: "funnel".to_string(),
            line: v.line(at),
            site: at,
            expr_start: at,
            expr_end: cp,
            recovered: true,
            panic_suffix: false,
        },
        range,
        skip,
    )
}

/// Parameters common to the two acquisition forms, handed to [`finish`]
/// for chain/binding/region resolution.
struct Acq {
    lock: String,
    method: String,
    line: u32,
    site: usize,
    expr_start: usize,
    expr_end: usize,
    recovered: bool,
    panic_suffix: bool,
}

/// Resolve the trailing chain, the binding, and the live region.
fn finish(
    v: &V,
    a: Acq,
    range: (usize, usize),
    skip: &[(usize, usize)],
) -> Option<Acquisition> {
    // Trailing chain on the guard expression: `.push_back(x)`, `.0`.
    let mut chained = Vec::new();
    let mut e = a.expr_end;
    while v.is(e + 1, ".") {
        if let Some(_) = v.ident(e + 2) {
            if v.is(e + 3, "(") {
                chained.push(e + 2);
                e = v.close(e + 3, "(", ")")?;
            } else {
                e = e + 2;
            }
        } else if e + 2 < v.len() && v.kind(e + 2) == TokenKind::Number {
            e = e + 2;
        } else {
            break;
        }
    }
    let chain_end = e;

    // Bound iff the acquisition expression (with no trailing chain) is
    // the whole initializer: `… = <expr>;` with an identifier on the
    // left. A leading `&`/`*` on the receiver means the statement
    // borrows through a temporary instead.
    let es = a.expr_start;
    let deref_prefix =
        es > 0 && matches!(v.text(es - 1), "&" | "*") && a.method != "funnel";
    let binding = if !deref_prefix
        && chained.is_empty()
        && v.is(chain_end + 1, ";")
        && es >= 2
        && v.is(es - 1, "=")
        && !(es >= 3 && v.is(es - 2, "="))
        && v.kind(es - 2) == TokenKind::Ident
        && !(es >= 3 && v.is(es - 3, "."))
    {
        Some(v.text(es - 2).to_string())
    } else {
        None
    };

    let end = match &binding {
        Some(name) => bound_region_end(v, chain_end + 1, name, range, skip),
        None => temp_region_end(v, chain_end + 1, range),
    };
    Some(Acquisition {
        lock: a.lock,
        method: a.method,
        line: a.line,
        site: a.site,
        region: (a.site, end),
        binding,
        recovered: a.recovered,
        panic_suffix: a.panic_suffix,
        chained,
    })
}

/// Where a bound guard's region ends: `drop(name)`, a rebinding of
/// `name`, or the enclosing block's `}` — whichever comes first.
fn bound_region_end(
    v: &V,
    from: usize,
    name: &str,
    range: (usize, usize),
    skip: &[(usize, usize)],
) -> usize {
    let mut depth = 0isize;
    let mut p = from;
    while p < range.1 {
        if let Some(&(_, end)) = skip.iter().find(|(s, _)| *s == p) {
            p = end + 1;
            continue;
        }
        match v.text(p) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return p;
                }
            }
            "drop"
                if v.kind(p) == TokenKind::Ident
                    && v.is(p + 1, "(")
                    && v.ident(p + 2) == Some(name)
                    && v.is(p + 3, ")") =>
            {
                return p;
            }
            t if v.kind(p) == TokenKind::Ident
                && t == name
                && v.is(p + 1, "=")
                && !v.is(p + 2, "=")
                && !v.is(p + 2, ">")
                && !(p > 0 && v.is(p - 1, ".")) =>
            {
                return p;
            }
            _ => {}
        }
        p += 1;
    }
    range.1
}

/// Where a temporary guard's region ends: the end of its statement
/// (`;` or `,` at depth 0), a block opening at depth 0, or any closer
/// that leaves the expression.
fn temp_region_end(v: &V, from: usize, range: (usize, usize)) -> usize {
    let mut depth = 0isize;
    let mut p = from;
    while p < range.1 {
        match v.text(p) {
            "{" if depth == 0 => return p,
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return p;
                }
            }
            ";" | "," if depth == 0 => return p,
            _ => {}
        }
        p += 1;
    }
    range.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(src: &str) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse(
                "crates/x/src/lib.rs".into(),
                Some("x".into()),
                src.into(),
            )],
            manifests: Vec::new(),
        }
    }

    const FUNNEL: &str = "\
        fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {\n\
            r.unwrap_or_else(std::sync::PoisonError::into_inner)\n\
        }\n";

    fn acquisitions_of<'a>(a: &'a Analysis, name: &str) -> &'a FnAnalysis {
        a.fns
            .iter()
            .find(|fa| a.def(fa).name == name)
            .expect("fn present")
    }

    #[test]
    fn funnel_functions_are_detected() {
        let w = ws(&format!("{FUNNEL}fn other() {{}}\n"));
        let a = Analysis::build(&w);
        assert!(a.funnels.contains("recover"));
        assert_eq!(a.funnels.len(), 1);
    }

    #[test]
    fn method_acquisition_names_the_field_and_classifies_recovery() {
        let w = ws(&format!(
            "{FUNNEL}\
             struct S {{ a: std::sync::Mutex<u64> }}\n\
             impl S {{\n\
               fn good(&self) {{ let g = recover(self.a.lock()); let _ = *g; }}\n\
               fn bare(&self) {{ let g = self.a.lock().unwrap(); let _ = *g; }}\n\
               fn inline(&self) {{ let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let _ = *g; }}\n\
             }}\n"
        ));
        let a = Analysis::build(&w);
        let good = &acquisitions_of(&a, "good").acquisitions[0];
        assert_eq!((good.lock.as_str(), good.recovered, good.panic_suffix), ("a", true, false));
        assert_eq!(good.binding.as_deref(), Some("g"));
        let bare = &acquisitions_of(&a, "bare").acquisitions[0];
        assert_eq!((bare.recovered, bare.panic_suffix), (false, true));
        let inline = &acquisitions_of(&a, "inline").acquisitions[0];
        assert_eq!((inline.recovered, inline.panic_suffix), (true, false));
    }

    #[test]
    fn funnel_call_form_acquires_by_argument_path() {
        let w = ws(
            "use std::sync::{Mutex, MutexGuard, PoisonError};\n\
             fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                 m.lock().unwrap_or_else(PoisonError::into_inner)\n\
             }\n\
             struct Inner { queue: Mutex<u64> }\n\
             impl Inner {\n\
               fn take(&self) { let q = lock(&self.queue); let _ = *q; }\n\
             }\n",
        );
        let a = Analysis::build(&w);
        let take = acquisitions_of(&a, "take");
        // One acquisition in `take` (queue); the funnel's own `m.lock()`
        // belongs to the funnel fn.
        assert_eq!(take.acquisitions.len(), 1);
        let q = &take.acquisitions[0];
        assert_eq!((q.lock.as_str(), q.method.as_str(), q.recovered), ("queue", "funnel", true));
        assert_eq!(q.binding.as_deref(), Some("q"));
        let funnel = acquisitions_of(&a, "lock");
        assert_eq!(funnel.acquisitions.len(), 1);
        assert_eq!(funnel.acquisitions[0].lock, "m");
    }

    #[test]
    fn temporary_guard_region_ends_at_statement() {
        let w = ws(&format!(
            "{FUNNEL}\
             struct Q {{ q: std::sync::Mutex<Vec<u64>> }}\n\
             impl Q {{\n\
               fn push(&self, x: u64) {{\n\
                 recover(self.q.lock()).push(x);\n\
                 after();\n\
               }}\n\
             }}\n\
             fn after() {{}}\n"
        ));
        let a = Analysis::build(&w);
        let p = acquisitions_of(&a, "push");
        let acq = &p.acquisitions[0];
        assert!(acq.binding.is_none());
        assert_eq!(acq.chained.len(), 1, "push(x) is chained on the guard");
        // The `after()` call is NOT inside the region.
        let after = p.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(!acq.covers(after.ci), "region must end at the statement");
    }

    #[test]
    fn bound_guard_region_ends_at_drop_and_rebinding() {
        let w = ws(&format!(
            "{FUNNEL}\
             struct S {{ m: std::sync::Mutex<u64>, cv: std::sync::Condvar }}\n\
             impl S {{\n\
               fn dropped(&self) {{\n\
                 let g = recover(self.m.lock());\n\
                 touch(&g);\n\
                 drop(g);\n\
                 after();\n\
               }}\n\
               fn waits(&self) {{\n\
                 let mut g = recover(self.m.lock());\n\
                 while *g == 0 {{ g = recover(self.cv.wait(g)); }}\n\
                 after();\n\
               }}\n\
             }}\n\
             fn touch(_: &u64) {{}}\n\
             fn after() {{}}\n"
        ));
        let a = Analysis::build(&w);
        let d = acquisitions_of(&a, "dropped");
        let acq = &d.acquisitions[0];
        let touch = d.calls.iter().find(|c| c.name == "touch").unwrap();
        let after = d.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(acq.covers(touch.ci));
        assert!(!acq.covers(after.ci), "drop(g) ends the region");

        let ww = acquisitions_of(&a, "waits");
        let acq = &ww.acquisitions[0];
        let wait = ww.calls.iter().find(|c| c.name == "wait").unwrap();
        assert!(
            !acq.covers(wait.ci),
            "the rebinding `g = …` ends the region before the wait call"
        );
    }

    #[test]
    fn rwlock_read_write_and_indexing_receivers() {
        let w = ws(&format!(
            "{FUNNEL}\
             struct S {{ snap: std::sync::RwLock<u64>, outs: Vec<std::sync::Mutex<u64>> }}\n\
             impl S {{\n\
               fn r(&self, i: usize) {{\n\
                 let s = recover(self.snap.read());\n\
                 let _ = *s;\n\
                 *recover(self.outs[i].lock()) = 1;\n\
               }}\n\
             }}\n"
        ));
        let a = Analysis::build(&w);
        let r = acquisitions_of(&a, "r");
        assert_eq!(r.acquisitions.len(), 2);
        assert_eq!(r.acquisitions[0].lock, "snap");
        assert_eq!(r.acquisitions[0].method, "read");
        assert_eq!(r.acquisitions[1].lock, "outs");
        assert!(r.acquisitions[1].binding.is_none(), "leading `*` is a temporary");
    }

    #[test]
    fn test_code_is_not_analyzed() {
        let w = ws(&format!(
            "{FUNNEL}\
             #[cfg(test)]\nmod tests {{\n\
               fn helper(m: &std::sync::Mutex<u64>) {{ let _ = m.lock().unwrap(); }}\n\
             }}\n"
        ));
        let a = Analysis::build(&w);
        assert!(a.fns.iter().all(|fa| a.def(fa).name != "helper"));
    }
}
