//! The analysed workspace model: lexed source files with their
//! test-code mask and suppression annotations, parsed manifests, and
//! the directory walker that loads them.
//!
//! Scan scope (mirrors what the old shell guards covered, minus their
//! blind spots): `Cargo.toml` and `crates/*/Cargo.toml`, plus every
//! `*.rs` under `src/` and `crates/*/src/`. Integration tests, benches
//! and examples are not library code and are not scanned.

use crate::lexer::{self, Token, TokenKind};
use crate::Finding;
use daos::DaosError;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// The allow-annotation grammar: `// lint: allow(<key>, <reason>)`.
/// `key` is a lint's short allow key (see [`crate::lints::ALLOW_KEYS`]);
/// the reason is mandatory — an allow without a *why* is itself a
/// finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The allow key the annotation names (`panic`, `print`, …).
    pub key: String,
    /// The justification text.
    pub reason: String,
    /// The line the annotation suppresses findings on.
    pub target: u32,
}

/// One lexed `.rs` file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The `crates/<name>/…` component, if the file is in a crate.
    pub crate_name: Option<String>,
    /// The file's text.
    pub src: String,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Per-token flag: inside `#[test]` / `#[cfg(test)]`-gated code.
    pub in_test: Vec<bool>,
    /// Parsed `// lint: allow(…)` annotations.
    pub allows: Vec<Allow>,
    /// Lines justified by an `// ordering:` comment (for the
    /// atomic-ordering lint).
    pub ordering_justified: BTreeSet<u32>,
    /// Malformed-annotation findings discovered while parsing comments.
    pub annotation_findings: Vec<Finding>,
}

impl SourceFile {
    /// Lex and pre-analyse one file.
    pub fn parse(rel: String, crate_name: Option<String>, src: String) -> SourceFile {
        let tokens = lexer::lex(&src);
        let in_test = test_mask(&tokens, &src);
        let mut f = SourceFile {
            rel,
            crate_name,
            src,
            tokens,
            in_test,
            allows: Vec::new(),
            ordering_justified: BTreeSet::new(),
            annotation_findings: Vec::new(),
        };
        f.parse_comments();
        f
    }

    /// The text of a token.
    pub fn text(&self, t: &Token) -> &str {
        t.text(&self.src)
    }

    /// Indices of non-comment tokens, in order — what most passes walk.
    pub fn code(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| {
                !matches!(
                    self.tokens[i].kind,
                    TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect()
    }

    /// Is a finding of `key` at `line` suppressed by an annotation?
    pub fn allowed(&self, key: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.key == key && a.target == line)
    }

    /// The first code-token line strictly after `line` (for standalone
    /// comments, which annotate the code that follows them).
    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens
            .iter()
            .filter(|t| {
                !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                    && t.line > line
            })
            .map(|t| t.line)
            .min()
    }

    /// Does `line` hold a code token that starts before byte `before`?
    fn code_on_line_before(&self, line: u32, before: usize) -> bool {
        self.tokens.iter().any(|t| {
            t.line == line
                && t.start < before
                && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
    }

    fn parse_comments(&mut self) {
        let comments: Vec<Token> = self
            .tokens
            .iter()
            .copied()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        for c in comments {
            let body = comment_body(self.text(&c));
            // A trailing comment annotates its own line; a standalone
            // comment annotates the next code line (stacked comments
            // pass through to the same target).
            let target = if self.code_on_line_before(c.line, c.start) {
                Some(c.line)
            } else {
                self.next_code_line(c.line)
            };
            if body.starts_with("ordering:") {
                let reason = body["ordering:".len()..].trim();
                if reason.is_empty() {
                    self.annotation_findings.push(Finding::annotation(
                        &self.rel,
                        c.line,
                        "`// ordering:` comment has no justification text".into(),
                    ));
                } else if let Some(t) = target {
                    self.ordering_justified.insert(t);
                }
            } else if let Some(rest) = body.strip_prefix("lint:") {
                match parse_allow(rest.trim()) {
                    Ok((key, reason)) => {
                        if let Some(t) = target {
                            self.allows.push(Allow { key, reason, target: t });
                        }
                    }
                    Err(msg) => {
                        self.annotation_findings.push(Finding::annotation(
                            &self.rel, c.line, msg,
                        ));
                    }
                }
            }
        }
    }
}

/// Strip comment sigils: `//`, `///`, `//!`, `/* … */` framing.
fn comment_body(text: &str) -> &str {
    let t = text.trim_start_matches('/');
    let t = if let Some(inner) = t.strip_prefix('*') {
        inner.trim_end_matches('/').trim_end_matches('*')
    } else {
        t.strip_prefix('!').unwrap_or(t)
    };
    t.trim()
}

/// Parse `allow(<key>, <reason>)`; both parts mandatory, key must be a
/// known allow key.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let inner = s
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| {
            format!("malformed lint annotation `{s}`: expected `lint: allow(<key>, <reason>)`")
        })?;
    let (key, reason) = inner.split_once(',').ok_or_else(|| {
        format!("lint annotation `allow({inner})` is missing its mandatory reason")
    })?;
    let (key, reason) = (key.trim(), reason.trim());
    if reason.is_empty() {
        return Err(format!("lint annotation `allow({inner})` has an empty reason"));
    }
    if !crate::lints::ALLOW_KEYS.contains(&key) {
        return Err(format!(
            "unknown lint key `{key}` in allow annotation (known: {})",
            crate::lints::ALLOW_KEYS.join(", ")
        ));
    }
    Ok((key.to_string(), reason.to_string()))
}

/// Compute the per-token "inside test code" mask: tokens covered by a
/// `#[test]`-attributed item or a `#[cfg(test)]`-gated item (module,
/// fn, impl, …). `#[cfg(not(test))]` is *not* test code.
fn test_mask(tokens: &[Token], src: &str) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Work over code tokens; map back to full indices for marking.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(tokens[i].kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
        .collect();
    let text = |ci: usize| tokens[code[ci]].text(src);
    let is_punct = |ci: usize, c: char| {
        tokens[code[ci]].kind == TokenKind::Punct && text(ci) == c.to_string().as_str()
    };

    let mut ci = 0;
    while ci + 1 < code.len() {
        if !(is_punct(ci, '#') && is_punct(ci + 1, '[')) {
            ci += 1;
            continue;
        }
        // Find the attribute's closing `]`.
        let Some(close) = match_close(&code, tokens, src, ci + 1, '[', ']') else { break };
        let attr: Vec<&str> = (ci + 2..close).map(text).collect();
        if !attr_is_test(&attr) {
            ci = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut q = close + 1;
        while q + 1 < code.len() && is_punct(q, '#') && is_punct(q + 1, '[') {
            match match_close(&code, tokens, src, q + 1, '[', ']') {
                Some(c) => q = c + 1,
                None => break,
            }
        }
        // The gated item runs to its body's matching `}` — or to a `;`
        // for body-less items (`#[cfg(test)] use …;`). Parens/brackets
        // on the way (fn signatures) are skipped as groups.
        let mut end = code.len().saturating_sub(1);
        let mut r = q;
        while r < code.len() {
            if is_punct(r, ';') {
                end = r;
                break;
            } else if is_punct(r, '{') {
                end = match_close(&code, tokens, src, r, '{', '}').unwrap_or(end);
                break;
            } else if is_punct(r, '(') {
                r = match_close(&code, tokens, src, r, '(', ')').map_or(code.len(), |c| c + 1);
            } else if is_punct(r, '[') {
                r = match_close(&code, tokens, src, r, '[', ']').map_or(code.len(), |c| c + 1);
            } else {
                r += 1;
            }
        }
        for slot in &mut mask[code[ci]..=code[end.min(code.len() - 1)]] {
            *slot = true;
        }
        ci = end + 1;
    }
    mask
}

/// Find the code-index of the delimiter matching `open` at `at`.
fn match_close(
    code: &[usize],
    tokens: &[Token],
    src: &str,
    at: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0isize;
    for (off, &ti) in code.iter().enumerate().skip(at) {
        if tokens[ti].kind != TokenKind::Punct {
            continue;
        }
        let t = tokens[ti].text(src);
        if t.len() == 1 {
            let c = t.as_bytes()[0] as char;
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
        }
    }
    None
}

/// Is an attribute's token text `#[test]`-like or `#[cfg(test)]`-like?
fn attr_is_test(attr: &[&str]) -> bool {
    match attr.first() {
        Some(&"test") => true,
        Some(&"cfg") => {
            attr.iter().any(|&t| t == "test") && !attr.iter().any(|&t| t == "not")
        }
        _ => false,
    }
}

/// One parsed `Cargo.toml`, reduced to what the dependency lint needs.
#[derive(Debug)]
pub struct Manifest {
    /// Path relative to the workspace root.
    pub rel: String,
    /// Offending dependency lines: `(line, text, why)`.
    pub offenders: Vec<(u32, String, String)>,
}

impl Manifest {
    /// Walk a manifest's dependency tables. Inside
    /// `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
    /// / `[workspace.dependencies]` (and `[target.*.dependencies]`),
    /// every entry must be `X.workspace = true` or carry `path = …`.
    /// Dotted sections (`[dependencies.X]`) must not use
    /// `version` / `git` / `registry` keys.
    pub fn parse(rel: String, text: &str) -> Manifest {
        #[derive(PartialEq)]
        enum Mode {
            Other,
            DepsTable,
            DepsItem,
        }
        let mut mode = Mode::Other;
        let mut offenders = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                let header = line.trim_matches(|c| c == '[' || c == ']');
                let is_deps = |s: &str| {
                    matches!(s, "dependencies" | "dev-dependencies" | "build-dependencies")
                };
                mode = if is_deps(header)
                    || header == "workspace.dependencies"
                    || (header.starts_with("target.") && header.ends_with(".dependencies"))
                {
                    Mode::DepsTable
                } else if header
                    .rsplit_once('.')
                    .is_some_and(|(head, _)| {
                        is_deps(head)
                            || head == "workspace.dependencies"
                            || (head.starts_with("target.") && head.ends_with(".dependencies"))
                    })
                {
                    Mode::DepsItem
                } else {
                    Mode::Other
                };
                continue;
            }
            let flag = |why: &str, offenders: &mut Vec<(u32, String, String)>| {
                offenders.push((idx as u32 + 1, line.to_string(), why.to_string()));
            };
            match mode {
                Mode::Other => {}
                Mode::DepsTable => {
                    let hermetic = contains_key(line, "workspace")
                        .map(|v| v.starts_with("true"))
                        .unwrap_or(false)
                        || contains_key(line, "path").is_some();
                    if !hermetic {
                        flag("dependency entry has no `path` and is not `workspace = true`",
                             &mut offenders);
                    }
                }
                Mode::DepsItem => {
                    for key in ["version", "git", "registry"] {
                        if line.starts_with(key)
                            && contains_key(line, key).is_some()
                        {
                            flag("dotted dependency section uses a registry key",
                                 &mut offenders);
                        }
                    }
                }
            }
        }
        Manifest { rel, offenders }
    }
}

/// If `line` contains `key` as a TOML key (`key =` or `.key =`), return
/// the text after the `=`.
fn contains_key<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let mut from = 0;
    while let Some(pos) = line[from..].find(key) {
        let at = from + pos;
        let before_ok = at == 0
            || matches!(line.as_bytes()[at - 1], b' ' | b'\t' | b'{' | b',' | b'.');
        let rest = line[at + key.len()..].trim_start();
        if before_ok {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.trim_start());
            }
        }
        from = at + key.len();
    }
    None
}

/// The loaded workspace: every scanned source file and manifest.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Lexed `.rs` files under `src/` and `crates/*/src/`.
    pub files: Vec<SourceFile>,
    /// `Cargo.toml` and `crates/*/Cargo.toml`.
    pub manifests: Vec<Manifest>,
}

impl Workspace {
    /// Load `root` (a directory holding `Cargo.toml` and `crates/`).
    pub fn load(root: &Path) -> Result<Workspace, DaosError> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();

        let mut load_manifest = |p: &Path, rel: String| -> Result<(), DaosError> {
            let text = read(p)?;
            manifests.push(Manifest::parse(rel, &text));
            Ok(())
        };
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            load_manifest(&root_manifest, "Cargo.toml".into())?;
        }

        let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
        let crates = root.join("crates");
        if crates.is_dir() {
            for entry in read_dir_sorted(&crates)? {
                if entry.is_dir() {
                    let name = file_name(&entry);
                    crate_dirs.push((name, entry));
                }
            }
        }
        for (name, dir) in &crate_dirs {
            let m = dir.join("Cargo.toml");
            if m.is_file() {
                load_manifest(&m, format!("crates/{name}/Cargo.toml"))?;
            }
        }

        let mut load_tree =
            |src_dir: &Path, rel_prefix: &str, crate_name: Option<&str>| -> Result<(), DaosError> {
                if !src_dir.is_dir() {
                    return Ok(());
                }
                for p in walk_rs_files(src_dir)? {
                    let rel = format!(
                        "{rel_prefix}/{}",
                        p.strip_prefix(src_dir)
                            .unwrap_or(&p)
                            .to_string_lossy()
                            .replace('\\', "/")
                    );
                    files.push(SourceFile::parse(
                        rel,
                        crate_name.map(str::to_string),
                        read(&p)?,
                    ));
                }
                Ok(())
            };
        load_tree(&root.join("src"), "src", None)?;
        for (name, dir) in &crate_dirs {
            load_tree(&dir.join("src"), &format!("crates/{name}/src"), Some(name))?;
        }

        Ok(Workspace { root: root.to_path_buf(), files, manifests })
    }
}

fn read(p: &Path) -> Result<String, DaosError> {
    fs::read_to_string(p).map_err(|e| DaosError::io(p.to_string_lossy(), e))
}

fn file_name(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, DaosError> {
    let rd = fs::read_dir(dir).map_err(|e| DaosError::io(dir.to_string_lossy(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| DaosError::io(dir.to_string_lossy(), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn walk_rs_files(dir: &Path) -> Result<Vec<PathBuf>, DaosError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for p in read_dir_sorted(&d)? {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), Some("x".into()), src.into())
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let f = sf("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n");
        let code = f.code();
        let tok_text: Vec<(&str, bool)> = code
            .iter()
            .map(|&i| (f.text(&f.tokens[i]), f.in_test[i]))
            .collect();
        assert!(tok_text.contains(&("a", false)));
        assert!(tok_text.contains(&("unwrap", true)));
        assert!(tok_text.contains(&("c", false)));
    }

    #[test]
    fn test_fns_and_stacked_attrs_are_masked() {
        let f = sf("#[test]\n#[allow(dead_code)]\nfn t(x: Option<u8>) { x.unwrap(); }\nfn live() {}\n");
        let code = f.code();
        let masked: Vec<&str> = code
            .iter()
            .filter(|&&i| f.in_test[i])
            .map(|&i| f.text(&f.tokens[i]))
            .collect();
        assert!(masked.contains(&"unwrap"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = sf("#[cfg(not(test))]\nfn a() { x.unwrap(); }\n");
        assert!(f.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn annotations_target_trailing_and_next_lines() {
        let f = sf(
            "fn a() { x.unwrap(); } // lint: allow(panic, trailing form)\n\
             // lint: allow(print, standalone form)\n\
             // more prose continues the comment\n\
             fn b() { println!(\"x\"); }\n",
        );
        assert!(f.allowed("panic", 1));
        assert!(f.allowed("print", 4), "standalone comment targets the next code line");
        assert!(f.annotation_findings.is_empty());
    }

    #[test]
    fn malformed_annotations_are_findings() {
        let f = sf("// lint: allow(panic)\nfn a() {}\n// lint: allow(bogus, why)\nfn b() {}\n");
        assert_eq!(f.annotation_findings.len(), 2);
        assert!(f.annotation_findings[0].message.contains("reason"));
        assert!(f.annotation_findings[1].message.contains("unknown lint key"));
    }

    #[test]
    fn ordering_comments_mark_their_target_lines() {
        let f = sf(
            "// ordering: Release pairs with the Acquire load below\n\
             flag.store(true, Ordering::Release);\n\
             let v = flag.load(Ordering::Acquire); // ordering: pairs with the store\n",
        );
        assert!(f.ordering_justified.contains(&2));
        assert!(f.ordering_justified.contains(&3));
    }

    #[test]
    fn manifest_walker_flags_registry_deps_only() {
        let m = Manifest::parse(
            "Cargo.toml".into(),
            "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\
             [dependencies]\ngood.workspace = true\n\
             also = { path = \"../also\" }\n\
             bad = \"1.0\"\n\
             worse = { version = \"2\", features = [\"std\"] }\n\
             [dependencies.dotted]\nversion = \"3\"\n\
             [dev-dependencies]\nfine = { path = \"x\" }\n",
        );
        let lines: Vec<u32> = m.offenders.iter().map(|o| o.0).collect();
        assert_eq!(lines, vec![7, 8, 10]);
    }
}
