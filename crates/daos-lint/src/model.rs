//! The semantic source model: a brace-matched **item tree** over the
//! token stream. Where the lexer answers "what is code?", this module
//! answers "whose code is it?" — which module, which `impl` block,
//! which function a token belongs to. It is the substrate the
//! concurrency passes (call graph, guard regions, lock-order analysis)
//! stand on.
//!
//! The model is deliberately shallow: it finds item *boundaries* by
//! matching delimiters over the comment-free token stream, it does not
//! parse expressions. Function bodies are `[open brace ..= close
//! brace]` code-index ranges; nested named functions get their own
//! entries (their tokens also lie inside the parent's range — callers
//! that need disjoint spans use [`FnDef::is_nested`]). Closures are
//! *not* items: a closure's tokens belong to the enclosing function,
//! which is exactly what a lock-region analysis wants (the guard rules
//! of the enclosing frame apply).
//!
//! The `#[cfg(test)]` masking discipline is inherited from
//! [`SourceFile::parse`]: a function's [`FnDef::is_test`] flag is the
//! mask at its `fn` keyword, and `tests/model_differential.rs` pins
//! model spans against the token-stream mask on every workspace file,
//! so live code cannot be silently skipped by the semantic passes.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One function (or method) definition found in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` self-type's last path segment, for methods.
    pub owner: Option<String>,
    /// Enclosing `mod` names, outermost first.
    pub modules: Vec<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_receiver: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Code index (into [`SourceFile::code`]) of the `fn` keyword.
    pub fn_tok: usize,
    /// Code-index range of the body, `{` to `}` inclusive.
    pub body: (usize, usize),
    /// Whether the definition sits under `#[test]` / `#[cfg(test)]`.
    pub is_test: bool,
    /// Whether this definition lexically nests inside another one.
    pub is_nested: bool,
}

impl FnDef {
    /// `owner::name` (or just `name`) — the human-readable handle used
    /// in finding messages.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The item tree of one file: every function definition, in source
/// order, over the file's comment-free code-index space.
#[derive(Debug)]
pub struct FileModel {
    /// The file's comment-free token indices ([`SourceFile::code`]).
    pub code: Vec<usize>,
    /// Every function definition found, in source order.
    pub fns: Vec<FnDef>,
}

impl FileModel {
    /// Build the item tree of `file`.
    pub fn build(file: &SourceFile) -> FileModel {
        Builder { f: file, code: file.code() }.run()
    }

    /// Token text at code index `ci` of `file` (must be the same file
    /// the model was built from).
    pub fn text<'f>(&self, file: &'f SourceFile, ci: usize) -> &'f str {
        file.text(&file.tokens[self.code[ci]])
    }

    /// Token kind at code index `ci`.
    pub fn kind(&self, file: &SourceFile, ci: usize) -> TokenKind {
        file.tokens[self.code[ci]].kind
    }

    /// Token line at code index `ci`.
    pub fn line(&self, file: &SourceFile, ci: usize) -> u32 {
        file.tokens[self.code[ci]].line
    }

    /// Code index `ci` exists and its text is exactly `s`.
    pub fn is(&self, file: &SourceFile, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.text(file, ci) == s
    }
}

/// Scope kinds tracked while walking the item tree.
enum Scope {
    Module(String),
    Impl(Option<String>),
}

struct Builder<'f> {
    f: &'f SourceFile,
    code: Vec<usize>,
}

impl Builder<'_> {
    fn text(&self, ci: usize) -> &str {
        self.f.text(&self.f.tokens[self.code[ci]])
    }

    fn kind(&self, ci: usize) -> TokenKind {
        self.f.tokens[self.code[ci]].kind
    }

    fn line(&self, ci: usize) -> u32 {
        self.f.tokens[self.code[ci]].line
    }

    fn is(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.text(ci) == s
    }

    fn is_ident(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.kind(ci) == TokenKind::Ident && self.text(ci) == s
    }

    /// Find the code index of the `close` delimiter matching `open` at
    /// `at` (which must hold `open`). `None` on malformed input.
    fn match_close(&self, at: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0isize;
        for ci in at..self.code.len() {
            if self.kind(ci) != TokenKind::Punct {
                continue;
            }
            let t = self.text(ci);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    fn run(self) -> FileModel {
        let mut fns: Vec<FnDef> = Vec::new();
        // (close code-index, scope) — popped once the walk passes close.
        let mut scopes: Vec<(usize, Scope)> = Vec::new();
        // Body close indices of fns currently open (for is_nested).
        let mut open_fns: Vec<usize> = Vec::new();

        let mut ci = 0;
        while ci < self.code.len() {
            while scopes.last().is_some_and(|(close, _)| ci > *close) {
                scopes.pop();
            }
            while open_fns.last().is_some_and(|close| ci > *close) {
                open_fns.pop();
            }

            if self.is_ident(ci, "mod") && ci + 1 < self.code.len()
                && self.kind(ci + 1) == TokenKind::Ident
            {
                if self.is(ci + 2, "{") {
                    if let Some(close) = self.match_close(ci + 2, "{", "}") {
                        scopes.push((close, Scope::Module(self.text(ci + 1).to_string())));
                        ci += 3; // descend into the module body
                        continue;
                    }
                }
                ci += 2; // `mod name;` declaration
                continue;
            }

            if self.is_ident(ci, "impl") {
                if let Some((self_ty, open)) = self.impl_header(ci) {
                    if let Some(close) = self.match_close(open, "{", "}") {
                        scopes.push((close, Scope::Impl(self_ty)));
                        ci = open + 1; // descend into the impl body
                        continue;
                    }
                }
                ci += 1;
                continue;
            }

            if self.is_ident(ci, "fn") && ci + 1 < self.code.len()
                && self.kind(ci + 1) == TokenKind::Ident
            {
                if let Some(def) = self.fn_def(ci, &scopes, !open_fns.is_empty()) {
                    let body_open = def.body.0;
                    open_fns.push(def.body.1);
                    fns.push(def);
                    ci = body_open + 1; // descend into the body
                    continue;
                }
                // Body-less declaration (trait method signature).
                ci += 2;
                continue;
            }

            ci += 1;
        }
        FileModel { code: self.code, fns }
    }

    /// Parse an `impl` header starting at `at`: returns the self-type's
    /// last path segment (if identifiable) and the code index of the
    /// body's `{`.
    fn impl_header(&self, at: usize) -> Option<(Option<String>, usize)> {
        // Scan to the body `{` at zero paren/bracket depth, tracking
        // angle depth so `for` inside `for<'a>` bounds is not mistaken
        // for the trait/self-type separator. `->` return arrows inside
        // `Fn(..) -> R` bounds only occur at paren depth > 0, so a bare
        // `>` at depth 0 is always a generic closer here.
        let mut depth = 0isize; // (), []
        let mut angle = 0isize;
        let mut for_at: Option<usize> = None;
        let mut open = None;
        for ci in at + 1..self.code.len() {
            let t = self.text(ci);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" if depth == 0 => angle += 1,
                ">" if depth == 0 => angle -= 1,
                "{" if depth == 0 && angle <= 0 => {
                    open = Some(ci);
                    break;
                }
                ";" if depth == 0 => return None,
                "for" if depth == 0 && angle == 0 => for_at = Some(ci),
                "where" if depth == 0 && angle == 0 => {
                    // The self-type ends here; keep scanning for `{`.
                    if open.is_none() && for_at.is_none() {
                        // (type already fully seen; nothing to do)
                    }
                }
                _ => {}
            }
        }
        let open = open?;
        // The self-type starts after `for` (trait impls) or after the
        // optional generic parameter list (inherent impls).
        let ty_start = match for_at {
            Some(f) => f + 1,
            None => {
                if self.is(at + 1, "<") {
                    // Skip the generic parameter list.
                    let mut angle = 0isize;
                    let mut depth = 0isize;
                    let mut end = at + 1;
                    for ci in at + 1..open {
                        match self.text(ci) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "<" if depth == 0 => angle += 1,
                            ">" if depth == 0 => {
                                angle -= 1;
                                if angle == 0 {
                                    end = ci;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    end + 1
                } else {
                    at + 1
                }
            }
        };
        // Last path-segment ident before generics/where/{.
        let mut name = None;
        let mut depth = 0isize;
        for ci in ty_start..open {
            let t = self.text(ci);
            match t {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "where" if depth == 0 => break,
                _ if depth == 0 && self.kind(ci) == TokenKind::Ident => {
                    name = Some(t.to_string());
                }
                _ => {}
            }
        }
        Some((name, open))
    }

    /// Parse a `fn` definition at `at` (`fn` keyword, name at `at+1`).
    /// `None` if it has no body (trait method signature).
    fn fn_def(&self, at: usize, scopes: &[(usize, Scope)], nested: bool) -> Option<FnDef> {
        // Find the body `{` at zero paren/bracket depth; a `;` first
        // means a body-less declaration.
        let mut depth = 0isize;
        let mut open = None;
        for ci in at + 2..self.code.len() {
            match self.text(ci) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(ci);
                    break;
                }
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        let open = open?;
        let close = self.match_close(open, "{", "}")?;
        // Receiver: the first paren group between name and body holds
        // the parameters; a leading `self` (within the first few
        // tokens: `self`, `&self`, `&mut self`, `&'a mut self`) marks a
        // method.
        let mut has_receiver = false;
        for ci in at + 2..open {
            if self.is(ci, "(") {
                for p in ci + 1..(ci + 6).min(self.code.len()) {
                    if self.is(p, ")") || self.is(p, ":") {
                        break;
                    }
                    if self.is_ident(p, "self") {
                        has_receiver = true;
                        break;
                    }
                }
                break;
            }
        }
        let owner = scopes.iter().rev().find_map(|(_, s)| match s {
            Scope::Impl(t) => Some(t.clone()),
            _ => None,
        });
        let modules = scopes
            .iter()
            .filter_map(|(_, s)| match s {
                Scope::Module(m) => Some(m.clone()),
                _ => None,
            })
            .collect();
        Some(FnDef {
            name: self.text(at + 1).to_string(),
            owner: owner.flatten(),
            modules,
            has_receiver,
            line: self.line(at),
            fn_tok: at,
            body: (open, close),
            is_test: self.f.in_test[self.code[at]],
            is_nested: nested,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> (SourceFile, FileModel) {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), Some("x".into()), src.into());
        let m = FileModel::build(&f);
        (f, m)
    }

    #[test]
    fn finds_free_fns_methods_and_modules() {
        let (_, m) = model(
            "pub fn free(x: u8) -> u8 { x }\n\
             pub struct S;\n\
             impl S {\n  pub fn method(&self) -> u8 { 1 }\n  fn assoc() {}\n}\n\
             mod inner {\n  pub fn deep() {}\n}\n",
        );
        let names: Vec<(String, Option<String>, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone(), f.has_receiver))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, false),
                ("method".into(), Some("S".into()), true),
                ("assoc".into(), Some("S".into()), false),
                ("deep".into(), None, false),
            ]
        );
        assert_eq!(m.fns[3].modules, vec!["inner".to_string()]);
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let (_, m) = model(
            "impl<T: Clone> Iterator for Wrap<T> where T: Default {\n\
             fn next(&mut self) -> Option<T> { None }\n}\n\
             impl From<u8> for Wrap<u8> { fn from(x: u8) -> Self { todo!() } }\n",
        );
        assert_eq!(m.fns[0].owner.as_deref(), Some("Wrap"));
        assert_eq!(m.fns[1].owner.as_deref(), Some("Wrap"));
    }

    #[test]
    fn trait_signatures_have_no_body_and_are_skipped() {
        let (_, m) = model(
            "trait T {\n  fn sig(&self) -> u8;\n  fn with_default(&self) -> u8 { 0 }\n}\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn fn_pointer_types_are_not_definitions() {
        let (_, m) = model("pub fn real(cb: fn(u8) -> u8) -> u8 { cb(1) }\n");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
    }

    #[test]
    fn generic_fn_bounds_do_not_confuse_the_body_finder() {
        let (f, m) = model(
            "pub fn apply<F: Fn(u8) -> u8>(f: F) -> u8 { f(2) }\n\
             pub fn after() {}\n",
        );
        assert_eq!(m.fns.len(), 2);
        let body = m.fns[0].body;
        assert!(m.is(&f, body.0, "{") && m.is(&f, body.1, "}"));
        assert_eq!(m.fns[1].name, "after");
    }

    #[test]
    fn nested_fns_are_modelled_and_flagged() {
        let (_, m) = model("fn outer() {\n  fn inner() {}\n  inner();\n}\n");
        assert_eq!(m.fns.len(), 2);
        assert!(!m.fns[0].is_nested);
        assert!(m.fns[1].is_nested);
        // The inner body nests inside the outer body range.
        assert!(m.fns[1].body.0 > m.fns[0].body.0 && m.fns[1].body.1 < m.fns[0].body.1);
    }

    #[test]
    fn test_mask_flows_into_fn_defs() {
        let (_, m) = model(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn masked() {}\n}\n",
        );
        assert_eq!(m.fns.len(), 2);
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
    }

    #[test]
    fn strings_with_braces_do_not_break_matching() {
        let (_, m) = model(
            "fn a() { let s = \"}}}{{\"; let r = r#\"fn fake() {}\"#; }\nfn b() {}\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
