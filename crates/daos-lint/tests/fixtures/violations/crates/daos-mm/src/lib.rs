//! Fixture: a "simulation" crate that breaks determinism and panic
//! discipline. Never compiled — only lexed by the lint tests.

use std::time::Instant;

pub fn work(x: Option<u8>) -> u8 {
    let started = Instant::now();
    let v = x.unwrap();
    if v > 250 {
        panic!("too big");
    }
    let _ = started;
    v
}

// lint: allow(panic)
pub fn half(x: u8) -> u8 {
    x.checked_div(2).expect("two is not zero")
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        // Test code may unwrap freely; none of this counts.
        super::work(Some(1)).checked_add(1).unwrap();
        Some(3u8).unwrap();
    }
}
