//! Fixture: concurrency violations for the semantic passes — an AB/BA
//! lock-order deadlock, blocking calls under live guards, and a bare
//! `.lock().unwrap()`. Never compiled — only lexed.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    cv: Condvar,
}

impl Pair {
    /// Acquires `a` then `b` …
    pub fn ab(&self) -> u64 {
        let ga = recover(self.a.lock());
        let gb = recover(self.b.lock());
        *ga + *gb
    }

    /// … while this one acquires `b` then `a`: the classic deadlock.
    pub fn ba(&self) -> u64 {
        let gb = recover(self.b.lock());
        let ga = recover(self.a.lock());
        *gb - *ga
    }

    /// Sleeping while `a` is held convoys every other `a` user.
    pub fn nap(&self) {
        let g = recover(self.a.lock());
        std::thread::sleep(Duration::from_millis(*g));
        drop(g);
    }

    /// Waiting on `b`'s condition releases `b` — but pins `a`.
    pub fn crossed_wait(&self) {
        let ga = recover(self.a.lock());
        let mut gb = recover(self.b.lock());
        while *gb == 0 {
            gb = recover(self.cv.wait(gb));
        }
        let _ = *ga;
    }

    /// A poisoned `a` panics a second time here.
    pub fn bare(&self) -> u64 {
        *self.a.lock().unwrap()
    }
}
