//! Fixture: library code that prints, leaves atomics unjustified, and
//! declares a tracepoint nobody emits. Never compiled — only lexed.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn status(flag: &AtomicBool) {
    println!("status: {}", flag.load(Ordering::SeqCst));
    flag.store(true, Ordering::Relaxed);
    eprintln!(
        "the multiline form that the old \
         grep guard could not see"
    );
}

daos_trace::events! {
    Alive { n: u64 },
    Dead { n: u64 },
}

pub fn tick() {
    trace!(1, Alive { n: 3 });
}

pub fn bad_metric(reg: &mut Registry) {
    reg.counter_add("Obs-Requests.Total", 1);
}
