//! Fixture: everything here is fine, and most of it is bait. Strings,
//! comments, test modules and annotated sites must all pass the lints.
//! Never compiled — only lexed.

/* A nested /* block comment */ mentioning println!("x") and x.unwrap() */

pub fn raw_bait() -> &'static str {
    // Raw-string contents are data, not code.
    r#"println!("hi"); x.unwrap(); panic!("no"); Instant::now()"#
}

pub fn escaped_bait() -> &'static str {
    "say \"eprintln!\" and .expect(\"quoted\") and Ordering::SeqCst"
}

use std::sync::atomic::{AtomicBool, Ordering};

pub fn shutdown(flag: &AtomicBool) {
    // ordering: Release pairs with the Acquire load in `is_down`.
    flag.store(true, Ordering::Release);
}

pub fn is_down(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire) // ordering: pairs with the Release store above
}

pub fn trailing_allow(x: Option<u8>) -> u8 {
    x.unwrap() // lint: allow(panic, fixture exercises the trailing annotation form)
}

pub fn standalone_allow(x: Option<u8>) -> u8 {
    // lint: allow(panic, fixture exercises the standalone annotation form)
    x.expect("fixture")
}

daos_trace::events! {
    Ping { n: u64 },
    Pong { n: u64 },
    SpanEnter { id: u64 },
    SpanExit { id: u64 },
}

pub fn emit_all() {
    trace!(1, Ping { n: 1 });
    daos_trace::emit(7, daos_trace::Event::Pong { n: 2 });
    span!(3, Sample, { () });
}

pub fn metric_bait(reg: &mut Registry, i: u32) {
    // A well-formed key, a computed key (the labelled-prefix fold owns
    // its shape), and an annotated exception must all pass.
    reg.counter_add("obs.requests_total", 1);
    reg.gauge_set(&format!("tenant.t{i}.rss_bytes"), 0.0);
    reg.hist_record("Legacy-Key", 1) // lint: allow(metric, fixture exercises the metric allow key)
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        super::trailing_allow(Some(1));
        Some(3u8).unwrap();
        let v: Result<u8, ()> = Ok(3);
        v.expect("tests may expect");
        panic!("tests may panic");
    }
}

#[cfg(not(test))]
pub fn not_test_is_live() -> u8 {
    // This item is live library code: had it unwrapped, the lint would
    // fire. It does not.
    0
}
