//! Fixture: concurrency bait — code shaped like violations that the
//! semantic passes must NOT flag: guards dropped before I/O, waits on
//! their own lock, consistent acquisition order, raw strings full of
//! `.lock()` text, and annotated exceptions. Never compiled — only
//! lexed.

use std::io::Write;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub struct State {
    a: Mutex<u64>,
    b: Mutex<Vec<u64>>,
    cv: Condvar,
}

impl State {
    /// Guard dropped before the blocking call: clean.
    pub fn drop_then_io(&self, out: &mut std::net::TcpStream) {
        let g = recover(self.a.lock());
        let n = *g;
        drop(g);
        out.write_all(&n.to_be_bytes());
        out.flush();
    }

    /// A temporary guard's region ends at its statement: the sleep
    /// after it is not "under" the lock.
    pub fn temp_then_sleep(&self) {
        recover(self.b.lock()).push(1);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    /// The condition-variable idiom: waiting on the guard's own lock
    /// is exactly what `Condvar::wait` is for.
    pub fn wait_own_lock(&self) -> u64 {
        let mut g = recover(self.a.lock());
        while *g == 0 {
            g = recover(self.cv.wait(g));
        }
        *g
    }

    /// Same idiom through `wait_timeout`, pump-loop style.
    pub fn wait_own_lock_timed(&self) {
        let mut g = lock(&self.a);
        loop {
            if *g != 0 {
                break;
            }
            g = self
                .cv
                .wait_timeout(g, std::time::Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Consistent `a` then `b` nesting here …
    pub fn both_forward(&self) -> u64 {
        let ga = lock(&self.a);
        let gb = recover(self.b.lock());
        *ga + gb.len() as u64
    }

    /// … and the same order everywhere else: edges, but no cycle.
    pub fn also_forward(&self) -> u64 {
        let ga = recover(self.a.lock());
        let gb = lock(&self.b);
        *ga - gb.len() as u64
    }

    /// The reversed order here is justified: `b` is private to this
    /// type and never escapes while `a` is wanted (fixture pins the
    /// edge-level allow).
    pub fn reversed_annotated(&self) -> u64 {
        let gb = lock(&self.b);
        let ga = lock(&self.a); // lint: allow(lock-order, fixture exercises the edge-level allow)
        *ga + gb.len() as u64
    }

    /// A justified blocking call under a guard.
    pub fn justified_nap(&self) {
        let g = lock(&self.a);
        // lint: allow(blocking, fixture exercises the blocking allow key)
        std::thread::sleep(std::time::Duration::from_millis(*g));
        drop(g);
    }

    /// A justified bare unwrap (guard + panic both annotated).
    pub fn justified_bare(&self) -> u64 {
        // lint: allow(guard, fixture exercises the guard allow key)
        *self.a.lock().unwrap() // lint: allow(panic, fixture pairs with the guard allow above)
    }
}

/// Raw strings and comments full of violation-shaped text are data.
pub fn raw_lock_bait() -> &'static str {
    // Looks like trouble: self.a.lock().unwrap() — but it is a comment.
    r##"let g = self.a.lock().unwrap(); recover(self.b.lock()); thread::sleep(d); r#"nested .lock() raw"# still the same string"##
}
