//! The workspace must satisfy its own invariants — `daos-lint` run
//! against this very repo comes back clean — and the binary must speak
//! sysexits: 0 on clean, `EX_DATAERR` (65) on findings, 2 on usage.

use std::path::{Path, PathBuf};
use std::process::Command;

/// `crates/daos-lint` → the repo root two levels up.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the repo root")
        .to_path_buf()
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_daos-lint"))
        .args(args)
        .output()
        .expect("daos-lint binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn workspace_is_lint_clean() {
    let (ws, findings) = daos_lint::lint_workspace(&repo_root()).expect("repo loads");
    let rendered: Vec<String> =
        findings.iter().map(daos_lint::Finding::render).collect();
    assert!(
        findings.is_empty(),
        "the workspace must be lint-clean; fix or annotate:\n{}",
        rendered.join("\n")
    );
    // Sanity: the scan actually covered the repo, not an empty dir.
    assert!(ws.files.len() > 50, "only {} files scanned", ws.files.len());
    assert!(ws.manifests.len() >= 12, "only {} manifests", ws.manifests.len());
}

#[test]
fn workspace_concurrency_surface_is_actually_analyzed() {
    // "Lint-clean" must mean "analyzed and clean", not "analysis saw
    // nothing". Pin that the guard analysis finds the poison funnels
    // and a realistic number of acquisition sites across the four
    // concurrent crates — all of them recovered.
    let ws = daos_lint::Workspace::load(&repo_root()).expect("repo loads");
    let a = daos_lint::locks::Analysis::build(&ws);
    assert!(a.funnels.contains("recover"), "daos_util::pool::recover not detected");
    assert!(a.funnels.contains("lock"), "the lock(&Mutex) funnels not detected");
    let acqs: Vec<_> = a.fns.iter().flat_map(|f| f.acquisitions.iter()).collect();
    assert!(acqs.len() >= 40, "only {} acquisitions found — analysis broken?", acqs.len());
    assert!(
        acqs.iter().all(|q| q.recovered),
        "every workspace acquisition flows through a poison funnel"
    );
    for rel in [
        "crates/daos-util/src/pool.rs",
        "crates/daos-obs/src/server.rs",
        "crates/daos-obs/src/publisher.rs",
        "crates/daos/src/fleet.rs",
    ] {
        let fi = ws.files.iter().position(|f| f.rel == rel).expect("file present");
        let n: usize = a
            .fns
            .iter()
            .filter(|f| f.file == fi)
            .map(|f| f.acquisitions.len())
            .sum();
        assert!(n > 0, "{rel}: no acquisitions found");
    }
}

#[test]
fn binary_lists_and_filters_passes() {
    let (code, stdout, _) = run(&["--list-passes"]);
    assert_eq!(code, 0);
    let listed: Vec<&str> = stdout.lines().collect();
    let expected: Vec<&str> =
        daos_lint::all_passes().iter().map(|p| p.name()).collect::<Vec<_>>();
    assert_eq!(listed, expected, "--list-passes must mirror all_passes()");
    for new in ["lock-order", "blocking-under-lock", "guard-discipline"] {
        assert!(listed.contains(&new), "{new} missing from --list-passes");
    }

    // A single-pass run over the violations fixture reports only that
    // pass's findings.
    let dirty = fixture("violations");
    let (code, stdout, _) = run(&[
        "--pass",
        "lock-order",
        "--root",
        dirty.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, 65, "{stdout}");
    assert!(stdout.contains("[lock-order]"), "{stdout}");
    assert!(!stdout.contains("[no-print]"), "--pass must filter: {stdout}");

    let (code, _, stderr) = run(&["--pass", "bogus"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown pass"), "{stderr}");
}

#[test]
fn binary_output_is_deterministic() {
    let dirty = fixture("violations");
    let args = ["--json", "--root", dirty.to_str().expect("utf-8 path")];
    let (_, first, _) = run(&args);
    let (_, second, _) = run(&args);
    assert_eq!(first, second, "repeat runs must be byte-identical");
    // The report advertises the concurrency passes in its lint list.
    for name in ["lock-order", "blocking-under-lock", "guard-discipline"] {
        assert!(first.contains(&format!("\"{name}\"")), "{name} not in lints: {first}");
    }
}

#[test]
fn binary_is_clean_and_quietly_successful_on_this_repo() {
    let root = repo_root();
    let (code, stdout, _) = run(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("daos-lint: clean"));
}

#[test]
fn binary_exits_dataerr_on_the_violations_fixture() {
    let dirty = fixture("violations");
    let (code, stdout, stderr) = run(&["--root", dirty.to_str().expect("utf-8 path")]);
    assert_eq!(code, 65, "EX_DATAERR via DaosError::Lint; stdout:\n{stdout}");
    assert!(stdout.contains("[panic-discipline]"), "{stdout}");
    assert!(stderr.contains("workspace invariant violation"), "{stderr}");
}

#[test]
fn binary_json_report_is_machine_readable() {
    let dirty = fixture("violations");
    let (code, stdout, _) =
        run(&["--json", "--root", dirty.to_str().expect("utf-8 path")]);
    assert_eq!(code, 65);
    assert!(stdout.starts_with('{') && stdout.trim_end().ends_with('}'));
    assert!(stdout.contains("\"clean\":false"), "{stdout}");
    assert!(stdout.contains("\"lint\":\"no-print\""), "{stdout}");

    let clean = fixture("clean");
    let (code, stdout, _) =
        run(&["--json", "--root", clean.to_str().expect("utf-8 path")]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"clean\":true"), "{stdout}");
    assert!(stdout.contains("\"findings\":[]"), "{stdout}");
}

#[test]
fn binary_usage_errors_exit_2() {
    let (code, _, stderr) = run(&["--bogus"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown argument"), "{stderr}");

    let (code, _, stderr) = run(&["--root", "/nonexistent/nowhere"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("workspace root"), "{stderr}");

    let (code, stdout, _) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("USAGE"));
}
