//! End-to-end lint runs over the seeded fixture workspaces under
//! `tests/fixtures/`. The `violations/` tree trips every lint at least
//! once; the `clean/` tree is all bait (raw strings, nested block
//! comments, test modules, annotated sites) and must produce nothing.

use daos_lint::{lint_workspace, Finding};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Vec<Finding> {
    lint_workspace(&fixture(name)).expect("fixture workspace loads").1
}

fn count(findings: &[Finding], lint: &str) -> usize {
    findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn violations_fixture_trips_every_lint() {
    let findings = lint("violations");
    let rendered: Vec<String> = findings.iter().map(Finding::render).collect();
    let ctx = rendered.join("\n");

    assert_eq!(count(&findings, "no-print"), 2, "{ctx}");
    assert_eq!(count(&findings, "no-registry-deps"), 3, "{ctx}");
    assert_eq!(count(&findings, "panic-discipline"), 4, "{ctx}");
    assert_eq!(count(&findings, "determinism"), 2, "{ctx}");
    assert_eq!(count(&findings, "atomic-ordering"), 2, "{ctx}");
    assert_eq!(count(&findings, "dead-tracepoint"), 1, "{ctx}");
    assert_eq!(count(&findings, "metric-name-discipline"), 1, "{ctx}");
    assert_eq!(count(&findings, "annotation"), 1, "{ctx}");
    assert_eq!(count(&findings, "lock-order"), 1, "{ctx}");
    assert_eq!(count(&findings, "blocking-under-lock"), 2, "{ctx}");
    assert_eq!(count(&findings, "guard-discipline"), 1, "{ctx}");
    assert_eq!(findings.len(), 20, "{ctx}");
}

#[test]
fn violations_fixture_concurrency_details() {
    let findings = lint("violations");
    let ctx: Vec<String> = findings.iter().map(Finding::render).collect();
    let ctx = ctx.join("\n");

    // The AB/BA deadlock is reported as a cycle with a witness path
    // naming both functions and both legs.
    let deadlock = findings
        .iter()
        .find(|f| f.lint == "lock-order")
        .expect("deadlock finding present");
    assert_eq!(deadlock.file, "crates/app/src/sync.rs", "{ctx}");
    assert!(deadlock.message.contains("potential deadlock"), "{ctx}");
    assert!(deadlock.message.contains("`a` -> `b` -> `a`"), "{ctx}");
    assert!(deadlock.message.contains("Pair::ab"), "{ctx}");
    assert!(deadlock.message.contains("Pair::ba"), "{ctx}");

    // Blocking under a live guard: the sleep, and the wait on a
    // *different* lock's condition (`crossed_wait` pins `a` while
    // waiting on `b`).
    let blocking: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == "blocking-under-lock")
        .collect();
    assert!(blocking.iter().any(|f| f.message.contains("`sleep`")), "{ctx}");
    assert!(
        blocking
            .iter()
            .any(|f| f.message.contains("`wait`") && f.message.contains("Pair::crossed_wait")),
        "{ctx}"
    );

    // The bare `.lock().unwrap()` trips guard-discipline (and
    // panic-discipline, counted above).
    let guard = findings
        .iter()
        .find(|f| f.lint == "guard-discipline")
        .expect("guard finding present");
    assert!(guard.message.contains("Pair::bare"), "{ctx}");
    assert!(guard.message.contains("poison"), "{ctx}");
}

#[test]
fn violations_fixture_details() {
    let findings = lint("violations");

    // The multiline eprintln! the old grep guard missed is caught.
    assert!(findings
        .iter()
        .any(|f| f.lint == "no-print" && f.message.contains("eprintln")));

    // The dotted `[dependencies.libc] version = …` section is caught.
    assert!(findings.iter().any(|f| f.lint == "no-registry-deps"
        && f.file == "crates/daos-mm/Cargo.toml"
        && f.message.contains("registry key")));

    // Only the never-emitted variant is dead; the emitted one is not.
    assert!(findings
        .iter()
        .any(|f| f.lint == "dead-tracepoint" && f.message.contains("`Dead`")));
    assert!(!findings.iter().any(|f| f.message.contains("`Alive`")));

    // The reason-less `// lint: allow(panic)` is itself the finding and
    // suppresses nothing: the `.expect()` it hovers over still fires.
    let half_line = findings
        .iter()
        .find(|f| f.lint == "annotation")
        .map(|f| f.line)
        .expect("annotation finding present");
    assert!(findings
        .iter()
        .any(|f| f.lint == "panic-discipline" && f.line > half_line));

    // Test-module unwraps are masked: every panic finding in the
    // daos-mm fixture file sits before its `#[cfg(test)]` module.
    assert!(findings
        .iter()
        .filter(|f| f.lint == "panic-discipline"
            && f.file == "crates/daos-mm/src/lib.rs")
        .all(|f| f.line < 21));
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = lint("clean");
    let rendered: Vec<String> = findings.iter().map(Finding::render).collect();
    assert!(findings.is_empty(), "clean fixture flagged:\n{}", rendered.join("\n"));
}

#[test]
fn findings_are_sorted_and_render_stably() {
    let findings = lint("violations");
    let keys: Vec<(&str, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.lint))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be ordered by (file, line, lint)");
    for f in &findings {
        assert_eq!(
            f.render(),
            format!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message)
        );
    }
}
