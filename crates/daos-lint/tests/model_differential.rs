//! Differential pin: the semantic item tree (`model.rs`) agrees with a
//! deliberately independent, flat scan of the token stream on every
//! workspace file. The flat scan knows nothing about modules, impls,
//! or nesting — it just finds every `fn <ident>` pair that reaches a
//! `{` before a `;` at zero paren/bracket depth. If the model ever
//! skipped a live function (a brace-matching bug, an impl header it
//! cannot parse), the concurrency passes would silently not analyze
//! it; this test makes that a loud failure instead.
//!
//! Also pinned: the model's `is_test` flag equals the token-stream
//! `#[cfg(test)]` mask at the `fn` keyword — the masking discipline
//! both layers must share.

use daos_lint::lexer::TokenKind;
use daos_lint::model::FileModel;
use daos_lint::{SourceFile, Workspace};
use std::path::Path;

fn workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root");
    Workspace::load(root).expect("workspace loads")
}

/// The independent oracle: `(line, is_test)` of every function
/// definition that has a body, found without any item-tree machinery.
fn flat_fn_scan(f: &SourceFile) -> Vec<(u32, bool)> {
    let code = f.code();
    let text = |ci: usize| f.text(&f.tokens[code[ci]]);
    let kind = |ci: usize| f.tokens[code[ci]].kind;
    let mut out = Vec::new();
    for ci in 0..code.len() {
        if !(kind(ci) == TokenKind::Ident && text(ci) == "fn") {
            continue;
        }
        if ci + 1 >= code.len() || kind(ci + 1) != TokenKind::Ident {
            continue; // `fn(u8) -> u8` pointer type
        }
        // Reach a body `{` at zero paren/bracket depth before any `;`.
        let mut depth = 0isize;
        let mut has_body = false;
        for j in ci + 2..code.len() {
            match text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    has_body = true;
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        if has_body {
            out.push((f.tokens[code[ci]].line, f.in_test[code[ci]]));
        }
    }
    out
}

#[test]
fn model_fn_spans_agree_with_flat_scan_on_every_file() {
    let ws = workspace();
    assert!(ws.files.len() > 50, "workspace scan looks wrong");
    let mut total = 0usize;
    for file in &ws.files {
        let model = FileModel::build(file);
        let flat = flat_fn_scan(file);
        let modelled: Vec<(u32, bool)> =
            model.fns.iter().map(|d| (d.line, d.is_test)).collect();
        assert_eq!(
            modelled, flat,
            "item tree and flat scan disagree in {}",
            file.rel
        );
        total += flat.len();
    }
    assert!(total > 500, "only {total} fns across the workspace — scan broken?");
}

#[test]
fn model_bodies_are_well_formed_brace_ranges() {
    let ws = workspace();
    for file in &ws.files {
        let model = FileModel::build(file);
        for d in &model.fns {
            assert!(d.body.0 < d.body.1, "{}: empty body range", file.rel);
            assert!(
                model.is(file, d.body.0, "{") && model.is(file, d.body.1, "}"),
                "{}: `{}` body range is not brace-delimited",
                file.rel,
                d.name
            );
        }
        // Distinct fns' bodies either nest fully or are disjoint —
        // a partial overlap would mean brace matching went wrong.
        for (i, x) in model.fns.iter().enumerate() {
            for y in model.fns.iter().skip(i + 1) {
                let nested = (y.body.0 > x.body.0 && y.body.1 < x.body.1)
                    || (x.body.0 > y.body.0 && x.body.1 < y.body.1);
                let disjoint = y.body.0 > x.body.1 || x.body.0 > y.body.1;
                assert!(
                    nested || disjoint,
                    "{}: `{}` and `{}` bodies partially overlap",
                    file.rel,
                    x.name,
                    y.name
                );
            }
        }
    }
}

#[test]
fn live_code_is_never_silently_skipped() {
    // Every *live* function the flat scan sees must be analyzed:
    // non-test in the model too, with matching receiver information
    // derivable (has_receiver implies a parameter list).
    let ws = workspace();
    let mut live = 0usize;
    for file in &ws.files {
        let model = FileModel::build(file);
        for d in model.fns.iter().filter(|d| !d.is_test) {
            live += 1;
            assert_eq!(
                d.is_test,
                file.in_test[model.code[d.fn_tok]],
                "{}: `{}` mask mismatch",
                file.rel,
                d.name
            );
        }
    }
    assert!(live > 400, "only {live} live fns — the mask ate the workspace?");
}
