//! The paper's core overhead claim, as a microbenchmark: the cost of one
//! monitoring tick is bounded by `max_nr_regions` *regardless of target
//! size* (1 MiB … 4 GiB here), while a full per-page scan grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daos_mm::addr::{AddrRange, PAGE_SIZE};
use daos_mm::clock::ms;
use daos_monitor::{MonitorAttrs, MonitorCtx, SyntheticPrimitives, SyntheticSpace};
use std::hint::black_box;

fn attrs() -> MonitorAttrs {
    MonitorAttrs::paper_defaults()
}

fn bench_tick_vs_target_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_tick_vs_target_size");
    group.sample_size(20);
    for mib in [1u64, 64, 1024, 4096] {
        let range = AddrRange::new(0, mib << 20);
        group.bench_with_input(BenchmarkId::from_parameter(format!("{mib}MiB")), &range, |b, range| {
            let mut env = SyntheticSpace::new(vec![*range]);
            env.touch_range(AddrRange::new(0, range.len() / 4));
            let mut ctx = MonitorCtx::new(attrs(), SyntheticPrimitives, &env, 0, 42);
            let mut sink = Vec::new();
            let mut now = 0;
            b.iter(|| {
                now += attrs().sampling_interval;
                ctx.step(&mut env, now, &mut sink);
                sink.clear();
                black_box(ctx.regions().len())
            });
        });
    }
    group.finish();
}

fn bench_full_scan_vs_target_size(c: &mut Criterion) {
    // The comparison point: naive per-page accessed-bit scanning, whose
    // cost is what kept prior work (e.g. the proactive-reclamation
    // system's 2-minute minimum interval) from sampling frequently.
    let mut group = c.benchmark_group("full_scan_vs_target_size");
    group.sample_size(10);
    for mib in [1u64, 64, 256] {
        let range = AddrRange::new(0, mib << 20);
        group.bench_with_input(BenchmarkId::from_parameter(format!("{mib}MiB")), &range, |b, range| {
            let mut env = SyntheticSpace::new(vec![*range]);
            env.touch_range(AddrRange::new(0, range.len() / 4));
            b.iter(|| {
                let mut young = 0u64;
                let mut addr = range.start;
                while addr < range.end {
                    young += env.accessed.contains(&addr) as u64;
                    addr += PAGE_SIZE;
                }
                black_box(young)
            });
        });
    }
    group.finish();
}

fn bench_aggregation_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_pass");
    group.sample_size(20);
    for nr_regions in [100usize, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(nr_regions),
            &nr_regions,
            |b, &nr| {
                let a = MonitorAttrs { max_nr_regions: nr, ..attrs() };
                let mut env = SyntheticSpace::new(vec![AddrRange::new(0, 1 << 30)]);
                let mut ctx = MonitorCtx::new(a, SyntheticPrimitives, &env, 0, 42);
                let mut sink = Vec::new();
                let mut now = 0;
                // Warm the region set up to its cap.
                for _ in 0..40 {
                    now += ms(5);
                    ctx.step(&mut env, now, &mut sink);
                }
                b.iter(|| {
                    now += ms(100); // every step crosses an aggregation
                    ctx.step(&mut env, now, &mut sink);
                    black_box(sink.drain(..).count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tick_vs_target_size,
    bench_full_scan_vs_target_size,
    bench_aggregation_pass
);
criterion_main!(benches);
