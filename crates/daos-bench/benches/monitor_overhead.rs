//! The paper's core overhead claim, as a microbenchmark: the cost of one
//! monitoring tick is bounded by `max_nr_regions` *regardless of target
//! size* (1 MiB … 4 GiB here), while a full per-page scan grows linearly.
//!
//! Runs under the in-tree `daos_util::bench` harness (`harness = false`).

use daos_mm::addr::{AddrRange, PAGE_SIZE};
use daos_mm::clock::ms;
use daos_monitor::{MonitorAttrs, MonitorCtx, SyntheticPrimitives, SyntheticSpace};
use daos_util::bench::Harness;
use std::hint::black_box;

fn attrs() -> MonitorAttrs {
    MonitorAttrs::paper_defaults()
}

fn bench_tick_vs_target_size(h: &mut Harness) {
    for mib in [1u64, 64, 1024, 4096] {
        let range = AddrRange::new(0, mib << 20);
        let mut env = SyntheticSpace::new(vec![range]);
        env.touch_range(AddrRange::new(0, range.len() / 4));
        let mut ctx = MonitorCtx::new(attrs(), SyntheticPrimitives, &env, 0, 42);
        let mut sink = Vec::new();
        let mut now = 0;
        h.bench_iters(&format!("tick_vs_target_size/{mib}MiB"), 200, || {
            now += attrs().sampling_interval;
            ctx.step(&mut env, now, &mut sink);
            sink.clear();
            black_box(ctx.regions().len())
        });
    }
}

fn bench_full_scan_vs_target_size(h: &mut Harness) {
    // The comparison point: naive per-page accessed-bit scanning, whose
    // cost is what kept prior work (e.g. the proactive-reclamation
    // system's 2-minute minimum interval) from sampling frequently.
    for mib in [1u64, 64, 256] {
        let range = AddrRange::new(0, mib << 20);
        let mut env = SyntheticSpace::new(vec![range]);
        env.touch_range(AddrRange::new(0, range.len() / 4));
        h.bench(&format!("full_scan_vs_target_size/{mib}MiB"), || {
            let mut young = 0u64;
            let mut addr = range.start;
            while addr < range.end {
                young += env.accessed.contains(&addr) as u64;
                addr += PAGE_SIZE;
            }
            black_box(young)
        });
    }
}

fn bench_aggregation_pass(h: &mut Harness) {
    for nr_regions in [100usize, 1000] {
        let a = MonitorAttrs::builder().max_nr_regions(nr_regions).build().unwrap();
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, 1 << 30)]);
        let mut ctx = MonitorCtx::new(a, SyntheticPrimitives, &env, 0, 42);
        let mut sink = Vec::new();
        let mut now = 0;
        // Warm the region set up to its cap.
        for _ in 0..40 {
            now += ms(5);
            ctx.step(&mut env, now, &mut sink);
        }
        h.bench_iters(&format!("aggregation_pass/{nr_regions}"), 100, || {
            now += ms(100); // every step crosses an aggregation
            ctx.step(&mut env, now, &mut sink);
            black_box(sink.drain(..).count())
        });
    }
}

fn main() {
    let mut h = Harness::new("monitor_overhead", 20).progress_to(Box::new(std::io::stdout()));
    bench_tick_vs_target_size(&mut h);
    bench_full_scan_vs_target_size(&mut h);
    bench_aggregation_pass(&mut h);
}
