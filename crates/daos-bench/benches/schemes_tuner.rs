//! Schemes-engine and tuner component costs: DSL parsing, region
//! matching, polynomial fitting and peak search.

use criterion::{criterion_group, criterion_main, Criterion};
use daos_mm::addr::AddrRange;
use daos_mm::clock::ms;
use daos_monitor::{Aggregation, RegionInfo};
use daos_schemes::{parse_scheme_line, parse_schemes, Scheme};
use daos_tuner::{best_peak, paper_degree, Polynomial};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_parser");
    group.bench_function("parse_listing3", |b| {
        let text = "min max 5 max min max hugepage\n\
                    2M max min min 7s max nohugepage\n\
                    4K max min min 5s max pageout\n";
        b.iter(|| black_box(parse_schemes(black_box(text)).unwrap()));
    });
    group.bench_function("roundtrip_one_line", |b| {
        let line = "2M max 80% max 1m max hugepage";
        b.iter(|| {
            let s = parse_scheme_line(black_box(line)).unwrap();
            black_box(s.to_string())
        });
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_matching");
    let agg = Aggregation {
        at: 0,
        regions: (0..1000)
            .map(|i| RegionInfo {
                range: AddrRange::new(i << 20, (i + 1) << 20),
                nr_accesses: (i % 21) as u32,
                age: (i % 100) as u32,
            })
            .collect(),
        max_nr_accesses: 20,
        aggregation_interval: ms(100),
    };
    let scheme: Scheme = parse_scheme_line("4K max min min 5s max pageout").unwrap();
    group.bench_function("match_1000_regions", |b| {
        b.iter(|| {
            black_box(
                agg.regions
                    .iter()
                    .filter(|r| scheme.matches(r, &agg))
                    .count(),
            )
        });
    });
    group.finish();
}

fn bench_polyfit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuner");
    let samples: Vec<(f64, f64)> = (0..10)
        .map(|i| {
            let x = i as f64 * 6.0;
            (x, 25.0 - (x - 16.0).powi(2) / 30.0)
        })
        .collect();
    group.bench_function("polyfit_10_samples_deg3", |b| {
        b.iter(|| black_box(Polynomial::fit(black_box(&samples), paper_degree(10)).unwrap()));
    });
    let poly = Polynomial::fit(&samples, 3).unwrap();
    group.bench_function("peak_search", |b| {
        b.iter(|| black_box(best_peak(black_box(&poly), 0.0, 60.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_parser, bench_matching, bench_polyfit);
criterion_main!(benches);
