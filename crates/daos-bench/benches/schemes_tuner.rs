//! Schemes-engine and tuner component costs: DSL parsing, region
//! matching, polynomial fitting and peak search.
//!
//! Runs under the in-tree `daos_util::bench` harness (`harness = false`).

use daos_mm::addr::AddrRange;
use daos_mm::clock::ms;
use daos_monitor::{Aggregation, RegionInfo};
use daos_schemes::{parse_scheme_line, parse_schemes, Scheme};
use daos_tuner::{best_peak, paper_degree, Polynomial};
use daos_util::bench::Harness;
use std::hint::black_box;

fn bench_parser(h: &mut Harness) {
    let text = "min max 5 max min max hugepage\n\
                2M max min min 7s max nohugepage\n\
                4K max min min 5s max pageout\n";
    h.bench("scheme_parser/parse_listing3", || {
        black_box(parse_schemes(black_box(text)).unwrap())
    });
    let line = "2M max 80% max 1m max hugepage";
    h.bench("scheme_parser/roundtrip_one_line", || {
        let s = parse_scheme_line(black_box(line)).unwrap();
        black_box(s.to_string())
    });
}

fn bench_matching(h: &mut Harness) {
    let agg = Aggregation {
        at: 0,
        regions: (0..1000)
            .map(|i| RegionInfo {
                range: AddrRange::new(i << 20, (i + 1) << 20),
                nr_accesses: (i % 21) as u32,
                age: (i % 100) as u32,
            })
            .collect(),
        max_nr_accesses: 20,
        aggregation_interval: ms(100),
    };
    let scheme: Scheme = parse_scheme_line("4K max min min 5s max pageout").unwrap();
    h.bench("scheme_matching/match_1000_regions", || {
        black_box(
            agg.regions
                .iter()
                .filter(|r| scheme.matches(r, &agg))
                .count(),
        )
    });
}

fn bench_polyfit(h: &mut Harness) {
    let samples: Vec<(f64, f64)> = (0..10)
        .map(|i| {
            let x = i as f64 * 6.0;
            (x, 25.0 - (x - 16.0).powi(2) / 30.0)
        })
        .collect();
    h.bench("tuner/polyfit_10_samples_deg3", || {
        black_box(Polynomial::fit(black_box(&samples), paper_degree(10)).unwrap())
    });
    let poly = Polynomial::fit(&samples, 3).unwrap();
    h.bench("tuner/peak_search", || {
        black_box(best_peak(black_box(&poly), 0.0, 60.0))
    });
}

fn main() {
    let mut h = Harness::new("schemes_tuner", 20).progress_to(Box::new(std::io::stdout()));
    bench_parser(&mut h);
    bench_matching(&mut h);
    bench_polyfit(&mut h);
}
