//! Substrate hot paths: the resident-touch fast path, the fault path,
//! and DAMOS pageout throughput.
//!
//! Runs under the in-tree `daos_util::bench` harness (`harness = false`).

use daos_mm::access::AccessBatch;
use daos_mm::machine::MachineProfile;
use daos_mm::swap::SwapConfig;
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;
use daos_util::bench::Harness;
use std::hint::black_box;

const REGION: u64 = 16 << 20; // 4096 pages

fn fresh_system() -> (MemorySystem, u32, daos_mm::addr::AddrRange) {
    let mut m = MachineProfile::test_tiny();
    m.dram_bytes = 256 << 20;
    let mut sys = MemorySystem::new(m, SwapConfig::paper_zram(), 1);
    let pid = sys.spawn();
    let range = sys.mmap(pid, REGION, ThpMode::Never).unwrap();
    (sys, pid, range)
}

fn bench_resident_touch(h: &mut Harness) {
    {
        let (mut sys, pid, range) = fresh_system();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        h.bench("apply_access/resident_touch_all", || {
            black_box(sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap())
        });
    }
    {
        let (mut sys, pid, range) = fresh_system();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        h.bench("apply_access/random_touch_256", || {
            black_box(sys.apply_access(pid, &AccessBatch::random(range, 256, 1.0)).unwrap())
        });
    }
}

fn bench_fault_paths(h: &mut Harness) {
    h.bench_setup("faults/minor_fault_region", 10, fresh_system, |(mut sys, pid, range)| {
        black_box(sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap())
    });
    h.bench_setup(
        "faults/pageout_then_major_fault_region",
        10,
        || {
            let (mut sys, pid, range) = fresh_system();
            sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
            sys.pageout(pid, range).unwrap(); // reference pass
            sys.pageout(pid, range).unwrap(); // eviction
            (sys, pid, range)
        },
        |(mut sys, pid, range)| {
            black_box(sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap())
        },
    );
}

fn main() {
    let mut h = Harness::new("substrate", 20).progress_to(Box::new(std::io::stdout()));
    bench_resident_touch(&mut h);
    bench_fault_paths(&mut h);
}
