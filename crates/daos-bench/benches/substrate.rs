//! Substrate hot paths: the resident-touch fast path, the fault path,
//! and DAMOS pageout throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daos_mm::access::AccessBatch;
use daos_mm::machine::MachineProfile;
use daos_mm::swap::SwapConfig;
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;
use std::hint::black_box;

const REGION: u64 = 16 << 20; // 4096 pages

fn fresh_system() -> (MemorySystem, u32, daos_mm::addr::AddrRange) {
    let mut m = MachineProfile::test_tiny();
    m.dram_bytes = 256 << 20;
    let mut sys = MemorySystem::new(m, SwapConfig::paper_zram(), 1);
    let pid = sys.spawn();
    let range = sys.mmap(pid, REGION, ThpMode::Never).unwrap();
    (sys, pid, range)
}

fn bench_resident_touch(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_access");
    group.throughput(Throughput::Elements(REGION / 4096));
    group.sample_size(30);
    group.bench_function("resident_touch_all", |b| {
        let (mut sys, pid, range) = fresh_system();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        b.iter(|| black_box(sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap()));
    });
    group.bench_function("random_touch_256", |b| {
        let (mut sys, pid, range) = fresh_system();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        b.iter(|| black_box(sys.apply_access(pid, &AccessBatch::random(range, 256, 1.0)).unwrap()));
    });
    group.finish();
}

fn bench_fault_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults");
    group.sample_size(20);
    group.bench_function("minor_fault_region", |b| {
        b.iter_with_setup(fresh_system, |(mut sys, pid, range)| {
            black_box(sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap())
        });
    });
    group.bench_function("pageout_then_major_fault_region", |b| {
        b.iter_with_setup(
            || {
                let (mut sys, pid, range) = fresh_system();
                sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
                sys.pageout(pid, range).unwrap(); // reference pass
                sys.pageout(pid, range).unwrap(); // eviction
                (sys, pid, range)
            },
            |(mut sys, pid, range)| {
                black_box(sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap())
            },
        );
    });
    group.finish();
}

criterion_group!(benches, bench_resident_touch, bench_fault_paths);
criterion_main!(benches);
