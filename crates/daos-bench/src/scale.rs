//! Experiment grid scaling.
//!
//! The full paper grids (Fig. 4: 16 workloads × 61 min_age values × 3
//! machines × 3 repeats) take tens of minutes on one core. The default
//! grids preserve every qualitative result at a fraction of the cost;
//! set `DAOS_FULL=1` for the paper-exact grid or `DAOS_QUICK=1` for a
//! smoke-test pass.

use daos_workloads::{fig4_subset, paper_suite, WorkloadSpec};

/// Grid density selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke test: minutes → seconds.
    Quick,
    /// Default: full qualitative coverage.
    Default,
    /// The paper's exact grid.
    Full,
}

impl Scale {
    /// Read from the environment (`DAOS_QUICK` / `DAOS_FULL`).
    pub fn from_env() -> Scale {
        let set = |k: &str| std::env::var(k).map(|v| v != "0" && !v.is_empty()).unwrap_or(false);
        if set("DAOS_FULL") {
            Scale::Full
        } else if set("DAOS_QUICK") {
            Scale::Quick
        } else {
            Scale::Default
        }
    }

    /// min_age grid (seconds) for the Fig. 4 sweep; the paper uses
    /// 0..=60 s at 1 s granularity.
    pub fn fig4_ages(&self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![0, 5, 15, 30, 60],
            Scale::Default => (0..=60).step_by(4).collect(),
            Scale::Full => (0..=60).collect(),
        }
    }

    /// Workloads for the Fig. 4 sweep (paper plots 16 of its 24).
    pub fn fig4_workloads(&self) -> Vec<WorkloadSpec> {
        match self {
            Scale::Quick => fig4_subset().into_iter().take(4).collect(),
            _ => fig4_subset(),
        }
    }

    /// Repeats per configuration (the paper runs each 3 times).
    pub fn repeats(&self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Default => 1,
            Scale::Full => 3,
        }
    }

    /// Workloads for the Fig. 6 heatmaps (paper plots 16).
    pub fn fig6_workloads(&self) -> Vec<WorkloadSpec> {
        match self {
            Scale::Quick => fig4_subset().into_iter().take(4).collect(),
            _ => fig4_subset(),
        }
    }

    /// Workloads for Fig. 7 / Fig. 8 (the paper uses all 24).
    pub fn full_suite(&self) -> Vec<WorkloadSpec> {
        match self {
            Scale::Quick => paper_suite().into_iter().take(6).collect(),
            _ => paper_suite(),
        }
    }

    /// Machines for multi-machine figures.
    pub fn machines(&self) -> Vec<daos_mm::MachineProfile> {
        match self {
            Scale::Quick => vec![daos_mm::MachineProfile::i3_metal()],
            _ => daos_mm::MachineProfile::paper_machines(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_grow_with_scale() {
        assert!(Scale::Quick.fig4_ages().len() < Scale::Default.fig4_ages().len());
        assert_eq!(Scale::Full.fig4_ages().len(), 61);
        assert_eq!(Scale::Full.fig4_workloads().len(), 16);
        assert_eq!(Scale::Full.full_suite().len(), 24);
        assert_eq!(Scale::Full.repeats(), 3);
        assert_eq!(Scale::Quick.machines().len(), 1);
        assert_eq!(Scale::Default.machines().len(), 3);
    }
}
