//! # daos-bench — the paper's evaluation harness
//!
//! One binary per table and figure of the paper (see DESIGN.md §3 for
//! the experiment index), plus in-tree micro-benchmarks
//! (`daos_util::bench`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1_actions` | Table 1 — supported scheme actions |
//! | `table2_machines` | Table 2 — machine profiles |
//! | `fig3_patterns` | Fig. 3 — six score patterns |
//! | `fig4_score_sweep` | Fig. 4 — prcl scores vs min_age |
//! | `fig5_estimation` | Fig. 5 — tuner trend estimation |
//! | `fig6_heatmaps` | Fig. 6 — access-pattern heatmaps |
//! | `fig7_overhead_benefit` | Fig. 7 — overhead & scheme benefits |
//! | `fig8_autotune` | Fig. 8 — manual vs auto-tuned prcl |
//! | `fig9_production` | Fig. 9 — serverless production RSS |
//!
//! Scaling: `DAOS_QUICK=1` smoke grids, default full-qualitative grids,
//! `DAOS_FULL=1` the paper-exact grids. Artifacts land in `./results`.

pub mod artifact;
pub mod report;
pub mod scale;
pub mod sweep;
