//! The fleet engine's hot path, timed: one full monitoring/scheme tick
//! of a 1000-process serverless fleet (and a 100-process fleet for the
//! sub-linearity context), written to `BENCH_fleet.json` at the repo
//! root as the regression baseline.
//!
//! `fleet_bench --quick` shrinks samples/iterations for CI smoke runs;
//! `DAOS_BENCH_OUT` overrides the output path;
//! `--check FILE [--baseline BASE --margin PCT]` gates the committed
//! baseline exactly like `pipeline --check` (exit 65 on a regression).

use daos::{FleetEngine, FleetSpec, MonitorKind, RunConfig};
use daos_bench::artifact;
use daos_mm::MachineProfile;
use daos_schemes::parse_scheme_line;
use daos_util::bench::Harness;
use daos_workloads::FleetConfig;
use std::hint::black_box;

/// The timing gated against the committed baseline: the per-tick cost
/// of the acceptance-scale fleet.
const GATED: [&str; 1] = ["fleet/tick_1000_procs"];

/// The `daos fleet` production configuration at bench scale:
/// physical-address monitoring feeding the pageout scheme.
fn fleet_config() -> RunConfig {
    RunConfig::builder("fleet-prcl")
        .monitor(MonitorKind::Paddr)
        .scheme(parse_scheme_line("min max min min 30s max pageout").expect("static scheme"))
        .build()
        .expect("static config is valid")
}

/// Time `engine.tick()` for a fleet of `nr_procs` small workers. The
/// engine is built once (setup cost excluded); every iteration advances
/// the whole fleet by one epoch over the work-stealing pool.
fn bench_fleet_tick(h: &mut Harness, iters: u64, nr_procs: usize) {
    let machine = MachineProfile::i3_metal();
    let config = fleet_config();
    let workers = FleetConfig { worker_footprint: 2 << 20, ..FleetConfig::default() };
    // More epochs than any harness run will tick through.
    let spec = workers.worker_spec(1 << 20);
    let fleet = FleetSpec::new(nr_procs).shard_size(32);
    let mut engine =
        FleetEngine::new(&machine, &config, &spec, fleet, 42).expect("fleet setup");
    h.bench_iters(&format!("fleet/tick_{nr_procs}_procs"), iters, || {
        engine.tick().expect("fleet tick");
        black_box(engine.nr_ticks())
    });
}

fn read_artifact(path: &str) -> daos_util::json::Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fleet_bench --check: cannot read {path}: {e}");
            std::process::exit(74);
        }
    };
    match artifact::parse_artifact(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fleet_bench --check: {path} is {e}");
            std::process::exit(65);
        }
    }
}

/// `fleet_bench --check FILE [--baseline BASE --margin PCT]`: exit 0
/// iff FILE parses as a bench artifact and (when a baseline is given)
/// the gated fleet-tick median stays within PCT percent of the
/// baseline. Exit 65 on a regression — the verify.sh perf gate.
fn check(path: &str, baseline: Option<&str>, margin_pct: f64) -> ! {
    let doc = read_artifact(path);
    let Some(base_path) = baseline else { std::process::exit(0) };
    let base = read_artifact(base_path);
    let checks = artifact::gate(&doc, &base, &GATED, margin_pct).unwrap_or_else(|e| {
        eprintln!("fleet_bench --check: {e}");
        std::process::exit(65);
    });
    let mut regressed = false;
    for c in &checks {
        if c.regressed() {
            eprintln!(
                "fleet_bench --check: {} regressed: {:.0} ns > {:.0} ns \
                 (baseline {:.0} ns + {margin_pct}% margin)",
                c.bench, c.got_ns, c.bound_ns, c.reference_ns
            );
            regressed = true;
        } else {
            println!(
                "fleet_bench --check: {} ok: {:.0} ns <= {:.0} ns",
                c.bench, c.got_ns, c.bound_ns
            );
        }
    }
    std::process::exit(if regressed { 65 } else { 0 });
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--check") {
        match artifact::flag_value(&argv, "--check") {
            Some(path) => {
                let baseline = artifact::flag_value(&argv, "--baseline");
                let margin = match artifact::flag_value(&argv, "--margin") {
                    Some(m) => m.parse().unwrap_or_else(|_| {
                        eprintln!("fleet_bench --margin needs a number (percent)");
                        std::process::exit(64);
                    }),
                    None => 100.0,
                };
                check(path, baseline, margin)
            }
            None => {
                eprintln!("fleet_bench --check needs a file argument");
                std::process::exit(64);
            }
        }
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 10 };
    let iters = if quick { 2 } else { 5 };
    let mut h = Harness::new("fleet", samples).progress_to(Box::new(std::io::stdout()));

    bench_fleet_tick(&mut h, iters, 100);
    bench_fleet_tick(&mut h, iters, 1000);

    let doc = artifact::artifact_doc("fleet", quick, samples, h.results());
    let text = doc.to_string_compact();
    // Self-validate before writing: the artifact must re-parse.
    if let Err(e) = artifact::parse_artifact(&text) {
        eprintln!("fleet_bench: generated artifact is {e}");
        std::process::exit(70);
    }
    let path = artifact::out_path("BENCH_fleet.json");
    if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
        eprintln!("fleet_bench: cannot write {}: {e}", path.display());
        std::process::exit(74);
    }
    println!("[artifact] {}", path.display());
}
