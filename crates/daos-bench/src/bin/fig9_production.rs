//! Figure 9: DAOS on the serverless production system — a hand-crafted
//! scheme pages out everything untouched for 30 s to zram- or file-backed
//! swap, cutting the fleet's memory footprint by ~80 % / ~90 % while the
//! request path keeps running (Conclusion-6).

use daos_bench::report::{write_artifact, Table};
use daos_mm::clock::{sec, Ns, SEC};
use daos_mm::{MachineProfile, MemorySystem, SwapConfig};
use daos_monitor::{Aggregation, MonitorAttrs, MonitorCtx, PaddrPrimitives};
use daos_schemes::{parse_scheme_line, SchemeTarget, SchemesEngine};
use daos_workloads::{FleetConfig, ServerlessFleet};

/// Virtual duration of the production experiment.
const DURATION: Ns = 240 * SEC;
/// Memory usage is averaged over the steady-state tail.
const WARMUP: Ns = 120 * SEC;

struct Outcome {
    label: &'static str,
    normalized_memory: f64,
    monitor_share: f64,
    slowdown: f64,
    series: Vec<(f64, f64)>, // (t_s, normalized memory)
}

fn run_fleet(label: &'static str, swap: SwapConfig, baseline_cost: Option<f64>) -> Outcome {
    let machine = MachineProfile::i3_metal();
    let mut sys = MemorySystem::new(machine, swap, 7);
    let mut fleet = ServerlessFleet::new(FleetConfig::default(), 7);
    fleet.setup(&mut sys).expect("fleet setup");
    let full = fleet.total_rss(&sys) as f64;

    // The paper's hand-crafted production scheme: page out pages not
    // touched for 30 seconds, driven by physical-address monitoring so
    // one monitor covers the whole fleet.
    let scheme = parse_scheme_line("min max min min 30s max pageout").expect("scheme");
    let mut engine = SchemesEngine::new(SchemeTarget::Physical, vec![scheme]);
    let mut monitor =
        MonitorCtx::new(MonitorAttrs::paper_defaults(), PaddrPrimitives, &sys, 0, 99);
    let mut sink: Vec<Aggregation> = Vec::new();

    let mut series = Vec::new();
    let mut next_sample = 0;
    let mut usage_acc = 0.0;
    let mut usage_n = 0u64;
    let mut work_cost: Ns = 0;

    while sys.now() < DURATION {
        let cost = fleet.epoch(&mut sys).expect("fleet epoch");
        work_cost += cost;
        sys.advance(cost);
        let now = sys.now();
        monitor.step(&mut sys, now, &mut sink);
        let interference = sys.charge_monitor(monitor.take_work_ns());
        sys.advance(interference);
        for agg in sink.drain(..) {
            let pass = engine.on_aggregation(&mut sys, &agg);
            let scheme_interference = sys.charge_schemes(pass.work_ns);
            sys.advance(scheme_interference);
        }
        if sys.now() >= next_sample {
            let usage = fleet.total_memory_usage(&sys) as f64 / full;
            series.push((sys.now() as f64 / 1e9, usage));
            if sys.now() >= WARMUP {
                usage_acc += usage;
                usage_n += 1;
            }
            next_sample += sec(1);
        }
    }

    Outcome {
        label,
        normalized_memory: usage_acc / usage_n.max(1) as f64,
        monitor_share: monitor.overhead.cpu_share(sys.now()),
        slowdown: baseline_cost.map(|b| work_cost as f64 / b - 1.0).unwrap_or(0.0),
        series,
    }
}

fn main() {
    println!("Figure 9: serverless production fleet under the 30s pageout scheme.\n");

    // "No Swap" is the reference: the scheme cannot evict anywhere.
    let no_swap = run_fleet("No Swap", SwapConfig::None, None);
    let base_cost = {
        // Re-derive the request-path cost of the no-swap run for the
        // slowdown comparison (its own slowdown is 0 by construction).
        let mut sys = MemorySystem::new(MachineProfile::i3_metal(), SwapConfig::None, 7);
        let mut fleet = ServerlessFleet::new(FleetConfig::default(), 7);
        fleet.setup(&mut sys).unwrap();
        let mut cost = 0u64;
        while sys.now() < DURATION {
            let c = fleet.epoch(&mut sys).unwrap();
            cost += c;
            sys.advance(c);
        }
        cost as f64
    };
    // Serverless heaps are mostly-idle, highly compressible data → a
    // higher zram compression ratio than the general-purpose default.
    let zram = run_fleet(
        "ZRAM",
        SwapConfig::Zram { capacity_bytes: 256 << 20, compression_ratio: 9.0 },
        Some(base_cost),
    );
    let file = run_fleet(
        "File Swap",
        SwapConfig::File { capacity_bytes: 1 << 30 },
        Some(base_cost),
    );

    let mut table = Table::new(vec![
        "configuration", "normalized RSS memory", "reduction", "monitor CPU", "request slowdown",
    ]);
    let mut csv = Table::new(vec!["configuration", "t_s", "normalized_memory"]);
    for o in [&no_swap, &file, &zram] {
        table.row(vec![
            o.label.to_string(),
            format!("{:.3}", o.normalized_memory),
            format!("{:.0}%", (1.0 - o.normalized_memory) * 100.0),
            format!("{:.2}%", o.monitor_share * 100.0),
            format!("{:.2}%", o.slowdown * 100.0),
        ]);
        for (t, u) in &o.series {
            csv.row(vec![o.label.to_string(), format!("{t:.0}"), format!("{u:.4}")]);
        }
    }
    print!("{}", table.render());
    println!(
        "\npaper: zram reduces memory bloat by ~80%, file swap by ~90%, at <=2% CPU overhead \
         and negligible request slowdown.\nThe file backend saves more than zram because \
         compressed zram pages still occupy DRAM."
    );
    println!("[artifact] {}", write_artifact("fig9_production.csv", &csv.to_csv()).unwrap().display());
}
