//! Figure 4: scores of the proactive reclamation scheme for varying
//! aggressiveness (min_age 0–60 s) on the Fig. 4 workload panel across
//! the three machines. Also classifies each curve into the Fig. 3
//! patterns (Conclusion-1).

use daos_bench::report::{write_artifact, Table};
use daos_bench::scale::Scale;
use daos_bench::sweep::{prcl_sweep, to_aggressiveness_series};
use daos_tuner::classify;

fn main() {
    let scale = Scale::from_env();
    let ages = scale.fig4_ages();
    let machines = scale.machines();
    let workloads = scale.fig4_workloads();
    let reps = scale.repeats();
    println!(
        "Figure 4: prcl score vs min_age — {} workloads x {} machines x {} ages x {} repeats\n",
        workloads.len(),
        machines.len(),
        ages.len(),
        reps
    );

    let mut csv = Table::new(vec![
        "workload", "machine", "min_age_s", "score", "score_std", "performance", "memory_efficiency",
    ]);
    let mut patterns = Table::new(vec!["workload", "machine", "fig3 pattern"]);

    for spec in &workloads {
        println!("== {} ==", spec.path_name());
        let mut header = format!("{:>9}", "min_age");
        for m in &machines {
            header.push_str(&format!("  {:>8}", format!("score.{}", &m.name[..1])));
        }
        println!("{header}");
        let mut series_per_machine = Vec::new();
        for machine in &machines {
            let pts = prcl_sweep(machine, spec, &ages, reps, 42).expect("prcl sweep");
            for p in &pts {
                csv.row(vec![
                    spec.path_name(),
                    machine.name.clone(),
                    p.min_age_s.to_string(),
                    format!("{:.2}", p.score),
                    format!("{:.2}", p.score_std),
                    format!("{:.4}", p.performance),
                    format!("{:.4}", p.memory_efficiency),
                ]);
            }
            series_per_machine.push(pts);
        }
        for (i, &age) in ages.iter().enumerate() {
            let mut line = format!("{age:>8}s");
            for pts in &series_per_machine {
                line.push_str(&format!("  {:>8.1}", pts[i].score));
            }
            println!("{line}");
        }
        for (machine, pts) in machines.iter().zip(&series_per_machine) {
            let series = to_aggressiveness_series(pts);
            let label = classify(&series)
                .map(|p| p.to_string())
                .unwrap_or_else(|| "unclassifiable".into());
            println!("  pattern on {}: {}", machine.name, label);
            patterns.row(vec![spec.path_name(), machine.name.clone(), label]);
        }
        println!();
    }

    println!("Conclusion-1 check: every curve falls into one of the 6 patterns.\n");
    print!("{}", patterns.render());
    println!("[artifact] {}", write_artifact("fig4_scores.csv", &csv.to_csv()).unwrap().display());
    println!("[artifact] {}", write_artifact("fig4_patterns.csv", &patterns.to_csv()).unwrap().display());
}
