//! Figure 6: data access patterns of the workloads in heatmap format —
//! when (x), which addresses (y), how frequently (intensity) — recorded
//! by the `rec` configuration's Data Access Monitor.

use daos::{biggest_active_span, run, Heatmap, RunConfig};
use daos_bench::report::write_artifact;
use daos_bench::scale::Scale;
use daos_mm::MachineProfile;

fn main() {
    let scale = Scale::from_env();
    let machine = MachineProfile::i3_metal();
    println!("Figure 6: access-pattern heatmaps (rec configuration on {}).\n", machine.name);

    let mut all_csv = String::from("workload,time_s,addr_mib,intensity\n");
    for spec in scale.fig6_workloads() {
        let r = run(&machine, &RunConfig::rec(), &spec, 42).expect("rec run");
        let record = r.record.as_ref().expect("rec records");
        // "we find and visualize the biggest subspace of each workload
        // that shows active access patterns" (§4.1).
        let span = biggest_active_span(record).expect("active span");
        let hm = Heatmap::from_record(record, span, 72, 16).expect("heatmap");
        println!(
            "== {} ==  ({} aggregation windows, {:.0}s runtime, span {} MiB)",
            spec.path_name(),
            record.len(),
            r.runtime_ns as f64 / 1e9,
            span.len() >> 20,
        );
        print!("{}", hm.render_ascii());
        println!(
            "   time {:>3.0}s {:->62} {:>5.0}s  (addr {} - {} MiB)\n",
            hm.time_span.0 as f64 / 1e9,
            ">",
            hm.time_span.1 as f64 / 1e9,
            span.start >> 20,
            span.end >> 20,
        );
        for line in hm.to_csv().lines().skip(1) {
            all_csv.push_str(&format!("{},{}\n", spec.path_name(), line));
        }
    }
    println!("[artifact] {}", write_artifact("fig6_heatmaps.csv", &all_csv).unwrap().display());
    println!("Conclusion-2: hot regions and dynamic pattern changes are visible per workload.");
}
