//! Extension experiment: from `prcl` to DAMON_RECLAIM — what the paper's
//! proactive-reclamation scheme became when it shipped as a kernel
//! module. Quotas bound the reclaim bandwidth (no burst storms on
//! mistuned thresholds); watermarks keep the scheme dormant until free
//! memory actually runs short.

use daos::{run, Normalized, RunConfig};
use daos_bench::report::{write_artifact, Table};
use daos_mm::clock::ms;
use daos_mm::MachineProfile;
use daos_schemes::{Quota, WatermarkMetric, Watermarks};
use daos_workloads::by_path;

fn main() {
    println!("Extension: prcl vs DAMON_RECLAIM (quota + watermarks)\n");

    let mut table = Table::new(vec![
        "workload", "config", "perf", "mem-eff", "pageouts", "quota skips", "wm-dormant",
    ]);

    for name in ["parsec3/freqmine", "parsec3/blackscholes", "splash2x/ocean_cp"] {
        let spec = by_path(name).expect("suite workload");
        // Pressure setup: DRAM sized to 1.5x the footprint, so the fleet
        // of one workload + page cache headroom makes watermarks
        // meaningful (free memory ~33% while fully resident).
        let mut machine = MachineProfile::i3_metal();
        machine.dram_bytes = spec.footprint * 3 / 2;

        let baseline = run(&machine, &RunConfig::baseline(), &spec, 42).unwrap();

        // Plain prcl with an aggressive threshold.
        let prcl = RunConfig::prcl_with_min_age(ms(500));
        let r_prcl = run(&machine, &prcl, &spec, 42).unwrap();

        // DAMON_RECLAIM: same threshold + quota + watermarks.
        let mut dr = RunConfig::prcl_with_min_age(ms(500));
        dr.name = "damon_reclaim".into();
        let scheme = dr.schemes.remove(0).scheme;
        dr.schemes = vec![scheme
            .configure()
            .quota(Quota { sz_limit: 4 << 20, reset_interval: ms(500) })
            .watermarks(Watermarks {
                metric: WatermarkMetric::FreeMemPermille,
                high: 500,
                mid: 400,
                low: 50,
            })
            .build()
            .unwrap()];
        let r_dr = run(&machine, &dr, &spec, 42).unwrap();

        for (r, cfg_name) in [(&r_prcl, "prcl(0.5s)"), (&r_dr, "damon_reclaim")] {
            let n = Normalized::of(&baseline, r);
            let dormant = r
                .scheme_stats
                .first()
                .map(|s| s.nr_tried == 0)
                .unwrap_or(true);
            table.row(vec![
                spec.plot_name(),
                cfg_name.to_string(),
                format!("{:.3}", n.performance),
                format!("{:.3}", n.memory_efficiency),
                r.kstats.damos_pageouts.to_string(),
                r.scheme_stats.first().map(|s| s.nr_quota_skips).unwrap_or(0).to_string(),
                if dormant { "yes" } else { "no" }.into(),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nThe quota turns pageout bursts into a bounded drip (quota skips > 0) and the\n\
         watermarks keep the scheme inactive when free memory is plentiful — the two\n\
         guardrails that made the paper's prcl deployable as DAMON_RECLAIM."
    );
    println!("[artifact] {}", write_artifact("ext_damon_reclaim.csv", &table.to_csv()).unwrap().display());
}
