//! Extension experiment: DAMON_LRU_SORT — access-aware LRU sorting (what
//! the engine's COLD/WILLNEED hints became in kernel 6.0). Under memory
//! pressure, proactively sorting hot regions to the active head and cold
//! regions to the inactive tail means pressure reclaim finds the right
//! victims immediately instead of discovering them by trial eviction.

use daos_bench::report::{write_artifact, Table};
use daos_mm::access::AccessBatch;
use daos_mm::addr::AddrRange;
use daos_mm::{MachineProfile, MemorySystem, SwapConfig, ThpMode};
use daos_monitor::{MonitorAttrs, MonitorCtx, VaddrPrimitives};
use daos_schemes::{parse_schemes, SchemeTarget, SchemesEngine};

/// Run a hot/cold workload under DRAM pressure, optionally with the
/// LRU_SORT schemes. Returns (major faults of the hot set, runtime s).
fn pressured_run(lru_sort: bool) -> (u64, f64) {
    // 24 MiB footprint, 16 MiB DRAM: something must always be swapped.
    let mut machine = MachineProfile::i3_metal();
    machine.dram_bytes = 16 << 20;
    let mut sys = MemorySystem::new(machine, SwapConfig::paper_zram(), 21);
    let pid = sys.spawn();
    let region = sys.mmap(pid, 24 << 20, ThpMode::Never).unwrap();
    let hot = AddrRange::new(region.start, region.start + (6 << 20));
    let cold = AddrRange::new(hot.end, region.end);

    let mut engine = lru_sort.then(|| {
        let schemes = parse_schemes(
            // Warm regions to the active head; long-idle ones to the tail.
            "min max 1 max min max lru_prio\n\
             min max min min 1s max lru_deprio",
        )
        .unwrap();
        SchemesEngine::new(SchemeTarget::Virtual(pid), schemes)
    });
    let mut monitor = lru_sort
        .then(|| MonitorCtx::new(MonitorAttrs::paper_defaults(), VaddrPrimitives::new(pid), &sys, 0, 5));
    let mut sink = Vec::new();

    // Build the working set: hot first so naive FIFO order puts the hot
    // pages at the *front* of the reclaim queue (the worst case LRU_SORT
    // fixes). Cold pages are touched once, then only scanned rarely.
    sys.apply_access(pid, &AccessBatch::all(hot, 2.0)).unwrap();
    sys.apply_access(pid, &AccessBatch::all(cold, 1.0)).unwrap();

    let mut hot_majors = 0u64;
    for epoch in 0..4000u64 {
        let mut cost = 1_000_000u64;
        // The hot set is only *periodically* re-touched: between touches
        // its accessed bits go stale, so naive reclaim cannot tell it
        // from cold memory — the gap access-aware sorting closes.
        if epoch % 50 == 0 {
            let before = sys.proc_stats(pid).unwrap().major_faults;
            let out = sys.apply_access(pid, &AccessBatch::all(hot, 4.0)).unwrap();
            hot_majors += sys.proc_stats(pid).unwrap().major_faults - before;
            cost += out.cost_ns;
        }
        // Continuous cold churn forces eviction decisions every epoch.
        {
            let o = sys.apply_access(pid, &AccessBatch::random(cold, 512, 1.0)).unwrap();
            cost += o.cost_ns;
        }
        sys.advance(cost);
        if let (Some(mon), Some(eng)) = (&mut monitor, &mut engine) {
            let now = sys.now();
            mon.step(&mut sys, now, &mut sink);
            let i = sys.charge_monitor(mon.take_work_ns());
            sys.advance(i);
            for agg in sink.drain(..) {
                let pass = eng.on_aggregation(&mut sys, &agg);
                let i2 = sys.charge_schemes(pass.work_ns);
                sys.advance(i2);
            }
        }
    }
    (hot_majors, sys.now() as f64 / 1e9)
}

fn main() {
    println!(
        "Extension: DAMON_LRU_SORT — 24 MiB workload on 16 MiB DRAM.\n\
         The hot 6 MiB is re-touched only every ~100 ms, so its accessed bits are\n\
         stale whenever reclaim inspects them; 18 MiB of cold memory is churned\n\
         continuously. Naive reclaim cannot tell the two apart — the monitor can.\n"
    );
    let (majors_plain, runtime_plain) = pressured_run(false);
    let (majors_sorted, runtime_sorted) = pressured_run(true);

    let mut table = Table::new(vec!["config", "hot-set major faults", "total runtime"]);
    table.row(vec![
        "pressure reclaim only".to_string(),
        majors_plain.to_string(),
        format!("{runtime_plain:.1}s"),
    ]);
    table.row(vec![
        "with lru_prio/lru_deprio".to_string(),
        majors_sorted.to_string(),
        format!("{runtime_sorted:.1}s"),
    ]);
    print!("{}", table.render());
    println!(
        "\nWith sorting, reclaim victims come from the monitored-cold side: the hot\n\
         working set suffers {}x fewer refaults (the latency-critical metric this\n\
         mechanism exists for). The cost lands on the cold churn — its faults grow,\n\
         and with them total runtime — which is the right trade whenever the hot set\n\
         is the service's critical path. Honest caveat: where hot pages are touched\n\
         faster than reclaim scans them, plain second-chance reclaim already wins\n\
         and sorting adds nothing (we measured exactly that with a hot set touched\n\
         every epoch).",
        majors_plain.max(1) / majors_sorted.max(1)
    );
    println!("[artifact] {}", write_artifact("ext_lru_sort.csv", &table.to_csv()).unwrap().display());
}
