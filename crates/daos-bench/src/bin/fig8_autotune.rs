//! Figure 8: manually-optimized vs auto-tuned prcl schemes on the three
//! machines — the Auto-tuning Runtime finds per-workload/per-machine
//! min_age thresholds with 10 samples and the Listing-2 score function
//! (Conclusion-5).

use daos::{run, score_inputs, score_vs_baseline, Normalized, RunConfig};
use daos_util::pool::par_map;
use daos_bench::report::{mean, write_artifact, Table};
use daos_bench::scale::Scale;
use daos_mm::clock::sec;
use daos_mm::MachineProfile;
use daos_tuner::{tune, DefaultScore, ScoreFn, TunerConfig};
use daos_workloads::WorkloadSpec;

struct Row {
    workload: String,
    machine: String,
    man: Normalized,
    man_score: f64,
    auto: Normalized,
    auto_score: f64,
    tuned_min_age: f64,
}

fn tune_one(machine: &MachineProfile, spec: &WorkloadSpec) -> Row {
    let baseline = run(machine, &RunConfig::baseline(), spec, 42).expect("baseline");
    // The manually-written scheme: the paper's Listing-3 thresholds
    // (min_age 5 s), tuned by hand on the i3.metal guest.
    let manual = run(machine, &RunConfig::prcl(), spec, 42).expect("manual prcl");

    // Auto-tuning with 10 samples, as in §4.3.
    let mut score_fn = DefaultScore::default();
    let cfg = TunerConfig {
        time_limit: sec(100),
        unit_work_time: sec(10),
        range: (0.0, 60.0),
        seed: 42,
    };
    let result = tune(&cfg, |min_age| {
        let r = run(
            machine,
            &RunConfig::prcl_with_min_age((min_age * 1e9) as u64),
            spec,
            42,
        )
        .expect("sample");
        score_fn.score(&score_inputs(&baseline, &r))
    });
    let auto = run(
        machine,
        &RunConfig::prcl_with_min_age((result.best_x * 1e9) as u64),
        spec,
        42,
    )
    .expect("auto prcl");

    Row {
        workload: spec.plot_name(),
        machine: machine.name.clone(),
        man: Normalized::of(&baseline, &manual),
        man_score: score_vs_baseline(&baseline, &manual),
        auto: Normalized::of(&baseline, &auto),
        auto_score: score_vs_baseline(&baseline, &auto),
        tuned_min_age: result.best_x,
    }
}

fn main() {
    let scale = Scale::from_env();
    let machines = scale.machines();
    let workloads = scale.full_suite();
    println!(
        "Figure 8: manual vs auto-tuned prcl — {} workloads x {} machines, 10 tuning samples each.\n",
        workloads.len(),
        machines.len()
    );

    let mut jobs = Vec::new();
    for machine in &machines {
        for spec in &workloads {
            jobs.push((machine.clone(), *spec));
        }
    }
    let rows: Vec<Row> = par_map(jobs, |(machine, spec)| tune_one(&machine, &spec));

    let mut table = Table::new(vec![
        "workload", "machine", "man perf", "auto perf", "man mem", "auto mem", "man score",
        "auto score", "tuned min_age",
    ]);
    for r in &rows {
        table.row(vec![
            r.workload.clone(),
            r.machine.clone(),
            format!("{:.3}", r.man.performance),
            format!("{:.3}", r.auto.performance),
            format!("{:.3}", r.man.memory_efficiency),
            format!("{:.3}", r.auto.memory_efficiency),
            format!("{:.1}", r.man_score),
            format!("{:.1}", r.auto_score),
            format!("{:.1}s", r.tuned_min_age),
        ]);
    }
    print!("{}", table.render());

    println!("\nPer-machine summary (paper: auto-tuning removes ~90% of the manual");
    println!("scheme's slowdown while keeping ~70% of its memory saving):");
    for machine in &machines {
        let ms: Vec<&Row> = rows.iter().filter(|r| r.machine == machine.name).collect();
        let man_drop = mean(ms.iter().map(|r| r.man.slowdown_pct().max(0.0)));
        let auto_drop = mean(ms.iter().map(|r| r.auto.slowdown_pct().max(0.0)));
        let man_save = mean(ms.iter().map(|r| r.man.memory_saving_pct()));
        let auto_save = mean(ms.iter().map(|r| r.auto.memory_saving_pct()));
        let man_score = mean(ms.iter().map(|r| r.man_score));
        let auto_score = mean(ms.iter().map(|r| r.auto_score));
        let removed = if man_drop > 1e-9 { 100.0 * (1.0 - auto_drop / man_drop) } else { 0.0 };
        println!(
            "  {:>10}: perf drop {:.2}% -> {:.2}% ({removed:.0}% removed) | \
             mem saving {:.1}% -> {:.1}% | score {:.2} -> {:.2} ({:+.1}%)",
            machine.name,
            man_drop,
            auto_drop,
            man_save,
            auto_save,
            man_score,
            auto_score,
            100.0 * (auto_score - man_score) / man_score.abs().max(1e-9),
        );
    }
    let worst_man = rows.iter().map(|r| r.man.slowdown_pct()).fold(f64::NEG_INFINITY, f64::max);
    let worst_auto = rows.iter().map(|r| r.auto.slowdown_pct()).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nworst-case slowdown: manual {worst_man:.1}% vs auto-tuned {worst_auto:.1}% \
         (paper: 78.2% -> 14.6%)"
    );

    let mut csv = Table::new(vec![
        "workload", "machine", "man_perf", "auto_perf", "man_mem", "auto_mem", "man_score",
        "auto_score", "tuned_min_age_s",
    ]);
    for r in &rows {
        csv.row(vec![
            r.workload.clone(),
            r.machine.clone(),
            format!("{:.4}", r.man.performance),
            format!("{:.4}", r.auto.performance),
            format!("{:.4}", r.man.memory_efficiency),
            format!("{:.4}", r.auto.memory_efficiency),
            format!("{:.3}", r.man_score),
            format!("{:.3}", r.auto_score),
            format!("{:.2}", r.tuned_min_age),
        ]);
    }
    println!("[artifact] {}", write_artifact("fig8_autotune.csv", &csv.to_csv()).unwrap().display());
}
