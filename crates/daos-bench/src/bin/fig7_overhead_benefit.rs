//! Figure 7: normalized performance and memory efficiency of all 24
//! workloads under the monitoring (rec, prec), Linux-original THP (thp),
//! and monitoring-based scheme (ethp, prcl) configurations on i3.metal —
//! the paper's Conclusions 3 and 4.

use daos::{run, Normalized, RunConfig, RunResult};
use daos_util::pool::par_map;
use daos_bench::report::{mean, r3, write_artifact, Table};
use daos_bench::scale::Scale;
use daos_mm::MachineProfile;

fn main() {
    let scale = Scale::from_env();
    let machine = MachineProfile::i3_metal();
    let workloads = scale.full_suite();
    let configs = RunConfig::paper_configs();
    println!(
        "Figure 7: {} workloads x {} configurations on {}.\n",
        workloads.len(),
        configs.len(),
        machine.name
    );

    // All runs are independent.
    let mut jobs = Vec::new();
    for spec in &workloads {
        for cfg in &configs {
            jobs.push((*spec, cfg.clone()));
        }
    }
    let results: Vec<RunResult> =
        par_map(jobs, |(spec, cfg)| run(&machine, &cfg, &spec, 42).expect("run"));

    let ncfg = configs.len();
    let mut table = Table::new(vec![
        "workload", "metric", "rec", "prec", "thp", "ethp", "prcl",
    ]);
    let mut csv = Table::new(vec![
        "workload", "config", "performance", "memory_efficiency", "monitor_cpu_share",
    ]);
    let mut norms: Vec<Vec<Normalized>> = Vec::new();
    let mut monitor_shares: Vec<f64> = Vec::new();

    for (wi, spec) in workloads.iter().enumerate() {
        let base = &results[wi * ncfg];
        let row: Vec<Normalized> = (1..ncfg)
            .map(|ci| Normalized::of(base, &results[wi * ncfg + ci]))
            .collect();
        table.row(
            std::iter::once(spec.plot_name())
                .chain(std::iter::once("perf".into()))
                .chain(row.iter().map(|n| r3(n.performance)))
                .collect(),
        );
        table.row(
            std::iter::once(String::new())
                .chain(std::iter::once("mem-eff".into()))
                .chain(row.iter().map(|n| r3(n.memory_efficiency)))
                .collect(),
        );
        for (ci, n) in row.iter().enumerate() {
            let r = &results[wi * ncfg + ci + 1];
            csv.row(vec![
                spec.plot_name(),
                configs[ci + 1].name.clone(),
                r3(n.performance),
                r3(n.memory_efficiency),
                format!("{:.4}", r.monitor_cpu_share()),
            ]);
        }
        monitor_shares.push(results[wi * ncfg + 1].monitor_cpu_share()); // rec
        monitor_shares.push(results[wi * ncfg + 2].monitor_cpu_share()); // prec
        norms.push(row);
    }
    print!("{}", table.render());

    // Averages row, as in the paper's rightmost column.
    println!("\naverages (normalized to baseline):");
    for (ci, name) in ["rec", "prec", "thp", "ethp", "prcl"].iter().enumerate() {
        let perf = mean(norms.iter().map(|r| r[ci].performance));
        let mem = mean(norms.iter().map(|r| r[ci].memory_efficiency));
        println!("  {name:>5}: performance {perf:.3}  memory-efficiency {mem:.3}");
    }

    // Conclusion-3: monitoring overhead.
    let rec_perf = mean(norms.iter().map(|r| r[0].performance));
    let prec_perf = mean(norms.iter().map(|r| r[1].performance));
    let worst_rec = norms.iter().map(|r| r[0].performance).fold(f64::INFINITY, f64::min);
    let worst_prec = norms.iter().map(|r| r[1].performance).fold(f64::INFINITY, f64::min);
    println!(
        "\nConclusion-3 — monitoring overhead: avg normalized perf rec {:.3} / prec {:.3} \
         (paper: 0.99/0.99), worst {:.3}/{:.3} (paper: 0.97/0.96); \
         monitor CPU share avg {:.2}% (paper: 1.37%/1.46%)",
        rec_perf,
        prec_perf,
        worst_rec,
        worst_prec,
        100.0 * mean(monitor_shares.iter().copied()),
    );

    // Conclusion-4: scheme benefits, with the paper's headline cases.
    let find = |name: &str| workloads.iter().position(|s| s.path_name() == name);
    if let Some(wi) = find("splash2x/ocean_ncp") {
        let thp = &norms[wi][2];
        let ethp = &norms[wi][3];
        let thp_gain = thp.performance - 1.0;
        let ethp_gain = ethp.performance - 1.0;
        let thp_bloat = 1.0 / thp.memory_efficiency - 1.0;
        let ethp_bloat = 1.0 / ethp.memory_efficiency - 1.0;
        println!(
            "ethp best case (ocean_ncp): thp gain {:.1}% bloat {:.1}% -> ethp gain {:.1}% bloat {:.1}% \
             (preserves {:.0}% of gain, removes {:.0}% of bloat; paper: 46%/80%)",
            thp_gain * 100.0,
            thp_bloat * 100.0,
            ethp_gain * 100.0,
            ethp_bloat * 100.0,
            100.0 * ethp_gain / thp_gain.max(1e-9),
            100.0 * (1.0 - ethp_bloat / thp_bloat.max(1e-9)),
        );
    }
    if let Some(wi) = find("parsec3/freqmine") {
        let prcl = &norms[wi][4];
        println!(
            "prcl best case (freqmine): {:.1}% memory saving at {:.1}% slowdown (paper: 91.3%/0.9%)",
            prcl.memory_saving_pct(),
            prcl.slowdown_pct()
        );
    }
    let prcl_avg_saving = mean(norms.iter().map(|r| r[4].memory_saving_pct()));
    let prcl_avg_slowdown = mean(norms.iter().map(|r| r[4].slowdown_pct()));
    let prcl_worst = norms
        .iter()
        .map(|r| r[4].slowdown_pct())
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "prcl average: {:.1}% memory saving, {:.1}% slowdown; worst-case slowdown {:.1}% \
         (paper: 37.1%/13.7%, worst 78.2%) -> motivates auto-tuning (Fig. 8)",
        prcl_avg_saving, prcl_avg_slowdown, prcl_worst
    );

    println!("[artifact] {}", write_artifact("fig7_overhead_benefit.csv", &csv.to_csv()).unwrap().display());
}
