//! Figure 3: the six theoretical patterns of performance, memory
//! efficiency and unified score under growing action aggressiveness —
//! their canonical shapes, and a measured validation that real sweep
//! curves classify into them (§3.3–3.4).

use daos_bench::report::{write_artifact, Table};
use daos_bench::scale::Scale;
use daos_bench::sweep::{prcl_sweep, to_aggressiveness_series};
use daos_mm::MachineProfile;
use daos_tuner::{classify, ScorePattern};

fn main() {
    println!("Figure 3: score patterns for varying PAGEOUT aggressiveness.\n");

    // Part 1: the canonical shapes.
    let mut canon = Table::new(vec![
        "aggressiveness", "p1", "p2", "p3", "p4", "p5", "p6",
    ]);
    println!("Canonical pattern curves (score at aggressiveness t):");
    println!("{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}", "t", "p1", "p2", "p3", "p4", "p5", "p6");
    for i in 0..=10 {
        let t = i as f64 / 10.0;
        let ys: Vec<f64> = ScorePattern::all().iter().map(|p| p.canonical(t)).collect();
        println!(
            "{:>6.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            t, ys[0], ys[1], ys[2], ys[3], ys[4], ys[5]
        );
        canon.row(
            std::iter::once(format!("{t:.1}"))
                .chain(ys.iter().map(|y| format!("{y:.2}")))
                .collect(),
        );
    }
    for p in ScorePattern::all() {
        println!("  pattern {p}");
    }

    // Part 2: measured sweeps classify into the patterns (a compact
    // version of the Fig. 4 validation — Conclusion-1).
    let scale = Scale::from_env();
    let machine = MachineProfile::i3_metal();
    let ages = scale.fig4_ages();
    println!("\nMeasured prcl sweeps on {} classified into the patterns:", machine.name);
    let mut seen = std::collections::BTreeSet::new();
    let mut measured = Table::new(vec!["workload", "pattern"]);
    for spec in scale.fig4_workloads() {
        let pts = prcl_sweep(&machine, &spec, &ages, 1, 42).expect("prcl sweep");
        let label = match classify(&to_aggressiveness_series(&pts)) {
            Some(p) => {
                seen.insert(p.index());
                p.to_string()
            }
            None => "unclassifiable".to_string(),
        };
        println!("  {:28} {}", spec.path_name(), label);
        measured.row(vec![spec.path_name(), label]);
    }
    println!(
        "\ndistinct patterns observed: {:?} (paper: all 6 appear across workloads x machines)",
        seen
    );
    println!("[artifact] {}", write_artifact("fig3_canonical.csv", &canon.to_csv()).unwrap().display());
    println!("[artifact] {}", write_artifact("fig3_measured.csv", &measured.to_csv()).unwrap().display());
}
