//! Ablation: the paper's tuning strategy (60 % global / 40 % localized
//! sampling + polynomial trend estimation) against two same-budget
//! baselines — a uniform grid search and pure random search — on noisy
//! synthetic score landscapes of the six Fig. 3 shapes.

use daos_bench::report::{mean, write_artifact, Table};
use daos_mm::clock::sec;
use daos_tuner::{tune, Polynomial, ScorePattern, TunerConfig};
use daos_util::rng::SmallRng;

const BUDGET: u64 = 10;
const NOISE: f64 = 2.0;
const TRIALS: u64 = 40;

/// Noisy evaluation of a canonical pattern (aggressiveness t ∈ [0,60]).
fn make_eval(pattern: ScorePattern, seed: u64) -> impl FnMut(f64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    move |x: f64| pattern.canonical(x / 60.0) + (rng.random::<f64>() - 0.5) * 2.0 * NOISE
}

/// True optimum of the canonical curve.
fn true_best(pattern: ScorePattern) -> (f64, f64) {
    (0..=600)
        .map(|i| i as f64 / 10.0)
        .map(|x| (x, pattern.canonical(x / 60.0)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
}

/// Regret of one strategy = true optimum score − true score at the
/// strategy's chosen point.
fn regret(pattern: ScorePattern, chosen_x: f64) -> f64 {
    let (_, best) = true_best(pattern);
    best - pattern.canonical(chosen_x / 60.0)
}

fn daos_strategy(pattern: ScorePattern, seed: u64) -> f64 {
    let cfg = TunerConfig {
        time_limit: sec(BUDGET * 10),
        unit_work_time: sec(10),
        range: (0.0, 60.0),
        seed,
    };
    tune(&cfg, make_eval(pattern, seed ^ 0xe7a1)).best_x
}

fn grid_strategy(pattern: ScorePattern, seed: u64) -> f64 {
    // Uniform grid, pick the best raw sample (no fitting).
    let mut eval = make_eval(pattern, seed ^ 0xe7a1);
    (0..BUDGET)
        .map(|i| i as f64 * 60.0 / (BUDGET - 1) as f64)
        .map(|x| (x, eval(x)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
}

fn random_strategy(pattern: ScorePattern, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut eval = make_eval(pattern, seed ^ 0xe7a1);
    (0..BUDGET)
        .map(|_| rng.random_range(0.0..=60.0))
        .map(|x| (x, eval(x)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
}

fn grid_fit_strategy(pattern: ScorePattern, seed: u64) -> f64 {
    // Grid + the same polynomial fitting: isolates the contribution of
    // the 60/40 sampling plan from that of the trend estimation.
    let mut eval = make_eval(pattern, seed ^ 0xe7a1);
    let samples: Vec<(f64, f64)> = (0..BUDGET)
        .map(|i| i as f64 * 60.0 / (BUDGET - 1) as f64)
        .map(|x| (x, eval(x)))
        .collect();
    match Polynomial::fit(&samples, daos_tuner::paper_degree(samples.len())) {
        Some(poly) => daos_tuner::best_peak(&poly, 0.0, 60.0).x,
        None => 0.0,
    }
}

fn main() {
    println!(
        "Ablation: tuning strategies at equal budget ({BUDGET} samples, noise ±{NOISE}, \
         {TRIALS} trials per landscape)\nmetric: regret = true_best − true(chosen)\n"
    );
    let mut table = Table::new(vec![
        "landscape", "daos (60/40+fit)", "grid+fit", "grid raw", "random raw",
    ]);
    let mut totals = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for pattern in ScorePattern::all() {
        let mut rows = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for t in 0..TRIALS {
            let seed = 1000 + t;
            rows[0].push(regret(pattern, daos_strategy(pattern, seed)));
            rows[1].push(regret(pattern, grid_fit_strategy(pattern, seed)));
            rows[2].push(regret(pattern, grid_strategy(pattern, seed)));
            rows[3].push(regret(pattern, random_strategy(pattern, seed)));
        }
        table.row(vec![
            format!("pattern {}", pattern.index()),
            format!("{:.2}", mean(rows[0].iter().copied())),
            format!("{:.2}", mean(rows[1].iter().copied())),
            format!("{:.2}", mean(rows[2].iter().copied())),
            format!("{:.2}", mean(rows[3].iter().copied())),
        ]);
        for (acc, r) in totals.iter_mut().zip(rows.iter()) {
            acc.extend_from_slice(r);
        }
    }
    table.row(vec![
        "mean".to_string(),
        format!("{:.2}", mean(totals[0].iter().copied())),
        format!("{:.2}", mean(totals[1].iter().copied())),
        format!("{:.2}", mean(totals[2].iter().copied())),
        format!("{:.2}", mean(totals[3].iter().copied())),
    ]);
    print!("{}", table.render());
    println!(
        "\nFindings (honest ablation): trend fitting is the big win — it suppresses the\n\
         ±{NOISE} noise that raw-sample selection chases (compare grid+fit vs grid raw, and\n\
         daos vs random raw). The 60/40 *random* plan, however, underperforms a plain\n\
         uniform grid at this budget on smooth 1-D landscapes: random strata can leave\n\
         the boundary region unsampled, and the peak search never extrapolates beyond\n\
         the sampled hull. The paper's randomized plan buys robustness on landscapes\n\
         whose structure is unknown a priori, not efficiency on smooth ones."
    );
    println!("[artifact] {}", write_artifact("ablation_tuner.csv", &table.to_csv()).unwrap().display());
}
