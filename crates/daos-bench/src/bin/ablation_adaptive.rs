//! Ablation: the adaptive regions adjustment vs static space-based
//! sampling (§2.2's prior-work baseline) at equal check budgets.
//!
//! A small hot region (1/128th of the target) sits at an arbitrary
//! offset and periodically jumps — the skewed, dynamic pattern the paper
//! says static region division handles poorly. We measure how much of
//! the true hot set each monitor identifies (recall), how much cold
//! memory it mislabels hot (false-hot), and what it costs (checks/tick).

use daos_bench::report::{mean, write_artifact, Table};
use daos_mm::addr::AddrRange;
use daos_mm::clock::{ms, sec};
use daos_monitor::{MonitorAttrs, MonitorCtx, SyntheticPrimitives, SyntheticSpace};

const TARGET: u64 = 256 << 20;
const HOT: u64 = 2 << 20;

struct Outcome {
    recall: f64,
    false_hot_mib: f64,
    checks_per_tick: f64,
}

fn run_monitor(nr_regions: usize, adaptive: bool, seed: u64) -> Outcome {
    let attrs = MonitorAttrs::builder()
        .sampling_interval(ms(5))
        .aggregation_interval(ms(100))
        .regions_update_interval(sec(1))
        // Static mode uses a fixed grid of `nr_regions`; adaptive mode
        // may shrink below it (merging) but never exceed it, so the
        // overhead budget is identical.
        .min_nr_regions(if adaptive { 10.min(nr_regions) } else { nr_regions })
        .max_nr_regions(nr_regions)
        .adaptive(adaptive)
        .build()
        .unwrap();
    let mut env = SyntheticSpace::new(vec![AddrRange::new(0, TARGET)]);
    let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, seed);
    let mut sink = Vec::new();

    let mut recalls = Vec::new();
    let mut false_hots = Vec::new();
    let mut now = 0;
    // 20 s of monitoring; the hot region jumps every 5 s.
    for tick in 0..4000u64 {
        let jump = tick / 1000;
        let hot_start = (TARGET / 7) * (jump + 1) % (TARGET - HOT);
        let hot = AddrRange::new(hot_start & !4095, (hot_start & !4095) + HOT);
        env.touch_range(hot);
        now += attrs.sampling_interval;
        ctx.step(&mut env, now, &mut sink);
        for agg in sink.drain(..) {
            // Skip the windows right after a jump (transients).
            if tick % 1000 < 200 {
                continue;
            }
            let mut hot_found = 0u64;
            let mut false_hot = 0u64;
            for r in &agg.regions {
                if agg.freq_ratio(r) < 0.5 {
                    continue;
                }
                match r.range.intersect(&hot) {
                    Some(i) => {
                        hot_found += i.len();
                        false_hot += r.range.len() - i.len();
                    }
                    None => false_hot += r.range.len(),
                }
            }
            recalls.push(hot_found as f64 / HOT as f64);
            false_hots.push(false_hot as f64 / (1 << 20) as f64);
        }
    }
    Outcome {
        recall: mean(recalls),
        false_hot_mib: mean(false_hots),
        checks_per_tick: ctx.overhead.avg_checks_per_tick(),
    }
}

fn main() {
    println!(
        "Ablation: adaptive regions adjustment vs static sampling\n\
         target {} MiB, hot region {} MiB (1/128th), jumping every 5 s\n",
        TARGET >> 20,
        HOT >> 20
    );
    let mut table = Table::new(vec![
        "regions", "mode", "hot recall", "false-hot", "checks/tick",
    ]);
    for nr in [10usize, 50, 200, 1000] {
        for adaptive in [false, true] {
            let o = run_monitor(nr, adaptive, 42);
            table.row(vec![
                nr.to_string(),
                if adaptive { "adaptive" } else { "static" }.to_string(),
                format!("{:.1}%", o.recall * 100.0),
                format!("{:.1} MiB", o.false_hot_mib),
                format!("{:.0}", o.checks_per_tick),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nStatic sampling needs region granularity ≤ hot-set size \
         ({} regions here) to see the hot 2 MiB at all;\nthe adaptive \
         mechanism finds it with a fraction of the regions by splitting \
         where the pattern demands.",
        TARGET / HOT
    );
    println!("[artifact] {}", write_artifact("ablation_adaptive.csv", &table.to_csv()).unwrap().display());
}
