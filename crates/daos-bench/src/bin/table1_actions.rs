//! Table 1: the actions supported by the DAOS Scheme Engine.
//!
//! Prints the table and *proves* each action by exercising it on a live
//! simulated system, reporting its observable effect.

use daos_bench::report::{write_artifact, Table};
use daos_mm::access::AccessBatch;
use daos_mm::addr::{AddrRange, HUGE_PAGE_SIZE};
use daos_mm::{MachineProfile, MemorySystem, SwapConfig, ThpMode};
use daos_monitor::{Aggregation, RegionInfo};
use daos_schemes::{Action, Scheme, SchemeTarget, SchemesEngine};

fn demo_system() -> (MemorySystem, u32, AddrRange) {
    let mut sys = MemorySystem::new(MachineProfile::i3_metal(), SwapConfig::paper_zram(), 1);
    let pid = sys.spawn();
    let range = sys
        .mmap_at(pid, 8 * HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE, ThpMode::Madvise)
        .unwrap();
    sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
    // Quiesce reference bits so reclaim-flavoured actions act immediately.
    for p in range.pages() {
        sys.check_accessed_clear(pid, p);
    }
    (sys, pid, range)
}

fn agg(range: AddrRange) -> Aggregation {
    Aggregation {
        at: 0,
        regions: vec![RegionInfo { range, nr_accesses: 0, age: 100 }],
        max_nr_accesses: 20,
        aggregation_interval: daos_mm::clock::ms(100),
    }
}

/// Apply one action through the engine and describe what happened.
fn demonstrate(action: Action) -> String {
    let (mut sys, pid, range) = demo_system();
    let rss_before = sys.rss_bytes(pid) >> 20;
    let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![Scheme::any(action)]);
    if action == Action::Willneed {
        // WILLNEED needs swapped pages to prefetch.
        sys.pageout(pid, range).unwrap();
        sys.pageout(pid, range).unwrap();
    }
    let pass = engine.on_aggregation(&mut sys, &agg(range));
    match action {
        Action::Willneed => format!(
            "swapped-out region prefetched back: RSS 0 -> {} MiB",
            sys.rss_bytes(pid) >> 20
        ),
        Action::Cold => format!(
            "{} pages deactivated to the inactive LRU tail",
            engine.stats()[0].sz_applied >> 12
        ),
        Action::Hugepage => format!(
            "{} MiB now huge-mapped (was 0)",
            sys.huge_bytes(pid) >> 20
        ),
        Action::Nohugepage => {
            // Promote first so there is something to demote.
            let (mut sys, pid, range) = demo_system();
            sys.promote_huge(pid, range).unwrap();
            let before = sys.huge_bytes(pid) >> 20;
            let mut engine =
                SchemesEngine::new(SchemeTarget::Virtual(pid), vec![Scheme::any(action)]);
            engine.on_aggregation(&mut sys, &agg(range));
            format!("huge-mapped bytes {} MiB -> {} MiB", before, sys.huge_bytes(pid) >> 20)
        }
        Action::Pageout => format!(
            "RSS {} MiB -> {} MiB ({} MiB paged out)",
            rss_before,
            sys.rss_bytes(pid) >> 20,
            pass.paged_out >> 20
        ),
        Action::Stat => format!(
            "counted {} regions / {} MiB, memory untouched (RSS still {} MiB)",
            pass.stat_regions,
            pass.stat_bytes >> 20,
            sys.rss_bytes(pid) >> 20
        ),
        Action::LruPrio | Action::LruDeprio => format!(
            "{} pages re-sorted on the LRU lists",
            engine.stats()[0].sz_applied >> 12
        ),
    }
}

fn main() {
    println!("Table 1: The actions supported by the DAOS Scheme Engine.\n");
    let mut table = Table::new(vec!["Action", "Description", "Demonstrated effect"]);
    for action in Action::paper_actions() {
        table.row(vec![
            action.keyword().to_uppercase(),
            action.description().to_string(),
            demonstrate(action),
        ]);
    }
    print!("{}", table.render());
    println!("[artifact] {}", write_artifact("table1_actions.csv", &table.to_csv()).unwrap().display());
}
