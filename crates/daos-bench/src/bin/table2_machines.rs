//! Table 2: AWS EC2 instance types used in the experiments, as machine
//! profiles (plus the derived cost-model parameters the simulation uses).

use daos_bench::report::{write_artifact, Table};
use daos_mm::machine::{MachineProfile, CAPACITY_SCALE};

fn main() {
    println!("Table 2: AWS EC2 instance types used in experiments.\n");
    let mut table = Table::new(vec!["Instance type", "CPU", "DRAM"]);
    for m in MachineProfile::paper_machines() {
        table.row(vec![
            m.name.clone(),
            format!("{:.1} GHz x {} vCPUs", m.cpu_ghz, m.nr_cpus),
            format!("{}GiB", (m.dram_bytes * CAPACITY_SCALE) >> 30),
        ]);
    }
    print!("{}", table.render());

    println!("\nDerived simulation cost model (capacities scaled 1/{CAPACITY_SCALE}):\n");
    let mut detail = Table::new(vec![
        "Instance type",
        "sim DRAM",
        "DRAM lat",
        "TLB miss",
        "minor fault",
        "zram load",
        "file swap read",
        "access check",
    ]);
    for m in MachineProfile::paper_machines() {
        detail.row(vec![
            m.name.clone(),
            format!("{} MiB", m.dram_bytes >> 20),
            format!("{:.0} ns", m.dram_latency_ns),
            format!("{:.0} ns", m.tlb_miss_penalty_ns),
            format!("{:.1} us", m.minor_fault_ns as f64 / 1e3),
            format!("{:.0} us", m.zram_load_ns as f64 / 1e3),
            format!("{:.0} us", m.file_swap_read_ns as f64 / 1e3),
            format!("{} ns", m.access_check_ns),
        ]);
    }
    print!("{}", detail.render());
    println!("[artifact] {}", write_artifact("table2_machines.csv", &detail.to_csv()).unwrap().display());
}
