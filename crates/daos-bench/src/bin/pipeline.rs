//! The seeded perf trajectory: median-of-N timings of the simulator's
//! hot paths — the monitoring tick (sampling), a full aggregation window
//! (aggregate + split/merge), the schemes-engine apply pass, and the
//! same monitor loop with tracing enabled vs disabled — written to
//! `BENCH_pipeline.json` at the repo root as the regression baseline.
//!
//! `pipeline --quick` shrinks samples/iterations for CI smoke runs
//! (verify.sh only checks the artifact is well-formed JSON);
//! `DAOS_BENCH_OUT` overrides the output path.

use daos_bench::artifact;
use daos_mm::addr::AddrRange;
use daos_mm::clock::ms;
use daos_mm::{MemorySystem, SwapConfig, ThpMode};
use daos_mm::access::AccessBatch;
use daos_monitor::{
    Aggregation, MonitorAttrs, MonitorCtx, RegionInfo, SyntheticPrimitives, SyntheticSpace,
};
use daos_schemes::{parse_scheme_line, SchemeTarget, SchemesEngine};
use daos_util::bench::Harness;
use std::hint::black_box;

const TARGET: AddrRange = AddrRange::new(0, 64 << 20);

fn attrs() -> MonitorAttrs {
    MonitorAttrs::paper_defaults()
}

fn fresh_monitor() -> (SyntheticSpace, MonitorCtx<SyntheticPrimitives>, Vec<Aggregation>) {
    let mut env = SyntheticSpace::new(vec![TARGET]);
    env.touch_range(AddrRange::new(0, TARGET.len() / 4));
    let ctx = MonitorCtx::new(attrs(), SyntheticPrimitives, &env, 0, 42);
    (env, ctx, Vec::new())
}

/// One sampling tick (the per-`sampling_interval` cost: young-bit checks
/// over at most `2 * max_nr_regions` sampled pages).
fn bench_monitor_tick(h: &mut Harness, iters: u64) {
    let (mut env, mut ctx, mut sink) = fresh_monitor();
    let step = attrs().sampling_interval;
    let mut now = 0;
    h.bench_iters("monitor/sample_tick", iters, || {
        now += step;
        ctx.step(&mut env, now, &mut sink);
        sink.clear();
        black_box(ctx.regions().len())
    });
}

/// One full aggregation window: every sampling tick of the window plus
/// the window-close work (aggregate + adaptive split/merge).
fn bench_monitor_window(h: &mut Harness, iters: u64) {
    let (mut env, mut ctx, mut sink) = fresh_monitor();
    let a = attrs();
    let ticks = (a.aggregation_interval / a.sampling_interval).max(1);
    let mut now = 0;
    h.bench_iters("monitor/aggregate_window", iters, || {
        for _ in 0..ticks {
            now += a.sampling_interval;
            ctx.step(&mut env, now, &mut sink);
        }
        let windows = sink.len();
        sink.clear();
        black_box(windows)
    });
}

/// The schemes-engine apply pass over a 1000-region window against a
/// real memory system (steady state: matching + action attempts).
fn bench_scheme_apply(h: &mut Harness, iters: u64) {
    let machine = daos_mm::MachineProfile::i3_metal();
    let mut sys = MemorySystem::new(machine, SwapConfig::paper_zram(), 42);
    let pid = sys.spawn();
    let range = sys.mmap(pid, 1 << 30, ThpMode::Never).expect("mmap 1 GiB");
    sys.apply_access(pid, &AccessBatch::all(range, 1.0)).expect("fault in");

    let scheme = parse_scheme_line("4K max min min 5s max pageout").expect("static scheme");
    let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![scheme]);
    let nr = 1000u64;
    let slice = range.len() / nr;
    let agg = Aggregation {
        at: 0,
        regions: (0..nr)
            .map(|i| RegionInfo {
                range: AddrRange::new(range.start + i * slice, range.start + (i + 1) * slice),
                nr_accesses: (i % 3 == 0) as u32,
                age: 100,
            })
            .collect(),
        max_nr_accesses: 20,
        aggregation_interval: ms(100),
    };
    h.bench_iters("schemes/apply_1000_regions", iters, || {
        black_box(engine.on_aggregation(&mut sys, &agg).work_ns)
    });
}

/// The identical monitor loop with the trace collector absent vs
/// installed — the zero-overhead-when-disabled claim, quantified.
fn bench_trace_toggle(h: &mut Harness, iters: u64) {
    for enabled in [false, true] {
        let (mut env, mut ctx, mut sink) = fresh_monitor();
        let step = attrs().sampling_interval;
        let mut now = 0;
        if enabled {
            daos_trace::install(daos_trace::Collector::builder().build().expect("collector"))
                .expect("no collector installed yet");
        }
        let name =
            if enabled { "trace/monitor_tick_enabled" } else { "trace/monitor_tick_disabled" };
        h.bench_iters(name, iters, || {
            now += step;
            ctx.step(&mut env, now, &mut sink);
            sink.clear();
            black_box(ctx.regions().len())
        });
        if enabled {
            daos_trace::take();
        }
    }
}

/// Hot-path timings gated against the committed baseline by
/// `--check --baseline`: the region/mm rebuild targets, so a rewrite
/// that quietly regresses either shows up in verify.sh.
const GATED: [&str; 2] = ["schemes/apply_1000_regions", "monitor/aggregate_window"];

fn read_artifact(path: &str) -> daos_util::json::Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pipeline --check: cannot read {path}: {e}");
            std::process::exit(74);
        }
    };
    match artifact::parse_artifact(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("pipeline --check: {path} is {e}");
            std::process::exit(65);
        }
    }
}

/// `pipeline --check FILE [--baseline BASE --margin PCT]`: exit 0 iff
/// FILE parses as a bench artifact and (when a baseline is given) none
/// of the gated hot-path medians exceeds the baseline median by more
/// than PCT percent. Exit 65 on a regression — the verify.sh perf gate.
fn check(path: &str, baseline: Option<&str>, margin_pct: f64) -> ! {
    let doc = read_artifact(path);
    let Some(base_path) = baseline else { std::process::exit(0) };
    let base = read_artifact(base_path);
    let checks = artifact::gate(&doc, &base, &GATED, margin_pct).unwrap_or_else(|e| {
        eprintln!("pipeline --check: {e}");
        std::process::exit(65);
    });
    let mut regressed = false;
    for c in &checks {
        if c.regressed() {
            eprintln!(
                "pipeline --check: {} regressed: {:.0} ns > {:.0} ns \
                 (baseline {:.0} ns + {margin_pct}% margin)",
                c.bench, c.got_ns, c.bound_ns, c.reference_ns
            );
            regressed = true;
        } else {
            println!(
                "pipeline --check: {} ok: {:.0} ns <= {:.0} ns",
                c.bench, c.got_ns, c.bound_ns
            );
        }
    }
    std::process::exit(if regressed { 65 } else { 0 });
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--check") {
        match artifact::flag_value(&argv, "--check") {
            Some(path) => {
                let baseline = artifact::flag_value(&argv, "--baseline");
                let margin = match artifact::flag_value(&argv, "--margin") {
                    Some(m) => m.parse().unwrap_or_else(|_| {
                        eprintln!("pipeline --margin needs a number (percent)");
                        std::process::exit(64);
                    }),
                    None => 100.0,
                };
                check(path, baseline, margin)
            }
            None => {
                eprintln!("pipeline --check needs a file argument");
                std::process::exit(64);
            }
        }
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 20 };
    let iters = if quick { 5 } else { 100 };
    let mut h = Harness::new("pipeline", samples).progress_to(Box::new(std::io::stdout()));

    bench_monitor_tick(&mut h, iters * 4);
    bench_monitor_window(&mut h, iters);
    bench_scheme_apply(&mut h, iters);
    bench_trace_toggle(&mut h, iters * 4);

    let doc = artifact::artifact_doc("pipeline", quick, samples, h.results());
    let text = doc.to_string_compact();
    // Self-validate before writing: the artifact must re-parse.
    if let Err(e) = artifact::parse_artifact(&text) {
        eprintln!("pipeline: generated artifact is {e}");
        std::process::exit(70);
    }
    let path = artifact::out_path("BENCH_pipeline.json");
    if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
        eprintln!("pipeline: cannot write {}: {e}", path.display());
        std::process::exit(74);
    }
    println!("[artifact] {}", path.display());
}
