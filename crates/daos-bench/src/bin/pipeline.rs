//! The seeded perf trajectory: median-of-N timings of the simulator's
//! hot paths — the monitoring tick (sampling), a full aggregation window
//! (aggregate + split/merge), the schemes-engine apply pass, and the
//! same monitor loop with tracing enabled vs disabled — written to
//! `BENCH_pipeline.json` at the repo root as the regression baseline.
//!
//! `pipeline --quick` shrinks samples/iterations for CI smoke runs
//! (verify.sh only checks the artifact is well-formed JSON);
//! `DAOS_BENCH_OUT` overrides the output path.

use daos_mm::addr::AddrRange;
use daos_mm::clock::ms;
use daos_mm::{MemorySystem, SwapConfig, ThpMode};
use daos_mm::access::AccessBatch;
use daos_monitor::{
    Aggregation, MonitorAttrs, MonitorCtx, RegionInfo, SyntheticPrimitives, SyntheticSpace,
};
use daos_schemes::{parse_scheme_line, SchemeTarget, SchemesEngine};
use daos_util::bench::{Harness, Timing};
use daos_util::json::Json;
use std::hint::black_box;

const TARGET: AddrRange = AddrRange::new(0, 64 << 20);

fn attrs() -> MonitorAttrs {
    MonitorAttrs::paper_defaults()
}

fn fresh_monitor() -> (SyntheticSpace, MonitorCtx<SyntheticPrimitives>, Vec<Aggregation>) {
    let mut env = SyntheticSpace::new(vec![TARGET]);
    env.touch_range(AddrRange::new(0, TARGET.len() / 4));
    let ctx = MonitorCtx::new(attrs(), SyntheticPrimitives, &env, 0, 42);
    (env, ctx, Vec::new())
}

/// One sampling tick (the per-`sampling_interval` cost: young-bit checks
/// over at most `2 * max_nr_regions` sampled pages).
fn bench_monitor_tick(h: &mut Harness, iters: u64) {
    let (mut env, mut ctx, mut sink) = fresh_monitor();
    let step = attrs().sampling_interval;
    let mut now = 0;
    h.bench_iters("monitor/sample_tick", iters, || {
        now += step;
        ctx.step(&mut env, now, &mut sink);
        sink.clear();
        black_box(ctx.regions().len())
    });
}

/// One full aggregation window: every sampling tick of the window plus
/// the window-close work (aggregate + adaptive split/merge).
fn bench_monitor_window(h: &mut Harness, iters: u64) {
    let (mut env, mut ctx, mut sink) = fresh_monitor();
    let a = attrs();
    let ticks = (a.aggregation_interval / a.sampling_interval).max(1);
    let mut now = 0;
    h.bench_iters("monitor/aggregate_window", iters, || {
        for _ in 0..ticks {
            now += a.sampling_interval;
            ctx.step(&mut env, now, &mut sink);
        }
        let windows = sink.len();
        sink.clear();
        black_box(windows)
    });
}

/// The schemes-engine apply pass over a 1000-region window against a
/// real memory system (steady state: matching + action attempts).
fn bench_scheme_apply(h: &mut Harness, iters: u64) {
    let machine = daos_mm::MachineProfile::i3_metal();
    let mut sys = MemorySystem::new(machine, SwapConfig::paper_zram(), 42);
    let pid = sys.spawn();
    let range = sys.mmap(pid, 1 << 30, ThpMode::Never).expect("mmap 1 GiB");
    sys.apply_access(pid, &AccessBatch::all(range, 1.0)).expect("fault in");

    let scheme = parse_scheme_line("4K max min min 5s max pageout").expect("static scheme");
    let mut engine = SchemesEngine::new(SchemeTarget::Virtual(pid), vec![scheme]);
    let nr = 1000u64;
    let slice = range.len() / nr;
    let agg = Aggregation {
        at: 0,
        regions: (0..nr)
            .map(|i| RegionInfo {
                range: AddrRange::new(range.start + i * slice, range.start + (i + 1) * slice),
                nr_accesses: (i % 3 == 0) as u32,
                age: 100,
            })
            .collect(),
        max_nr_accesses: 20,
        aggregation_interval: ms(100),
    };
    h.bench_iters("schemes/apply_1000_regions", iters, || {
        black_box(engine.on_aggregation(&mut sys, &agg).work_ns)
    });
}

/// The identical monitor loop with the trace collector absent vs
/// installed — the zero-overhead-when-disabled claim, quantified.
fn bench_trace_toggle(h: &mut Harness, iters: u64) {
    for enabled in [false, true] {
        let (mut env, mut ctx, mut sink) = fresh_monitor();
        let step = attrs().sampling_interval;
        let mut now = 0;
        if enabled {
            daos_trace::install(daos_trace::Collector::builder().build().expect("collector"))
                .expect("no collector installed yet");
        }
        let name =
            if enabled { "trace/monitor_tick_enabled" } else { "trace/monitor_tick_disabled" };
        h.bench_iters(name, iters, || {
            now += step;
            ctx.step(&mut env, now, &mut sink);
            sink.clear();
            black_box(ctx.regions().len())
        });
        if enabled {
            daos_trace::take();
        }
    }
}

fn timing_json(t: &Timing) -> Json {
    Json::Object(vec![
        ("median_ns".into(), Json::F64(t.median_ns)),
        ("min_ns".into(), Json::F64(t.min_ns)),
        ("max_ns".into(), Json::F64(t.max_ns)),
        ("iters".into(), Json::U64(t.iters)),
    ])
}

fn out_path() -> std::path::PathBuf {
    match std::env::var("DAOS_BENCH_OUT") {
        Ok(p) => p.into(),
        // The repo root, two levels above this crate's manifest.
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_pipeline.json"),
    }
}

/// Hot-path timings gated against the committed baseline by
/// `--check --baseline`: the region/mm rebuild targets, so a rewrite
/// that quietly regresses either shows up in verify.sh.
const GATED: [&str; 2] = ["schemes/apply_1000_regions", "monitor/aggregate_window"];

fn parse_artifact(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pipeline --check: cannot read {path}: {e}");
            std::process::exit(74);
        }
    };
    match daos_util::json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("pipeline --check: {path} is not valid JSON: {e}");
            std::process::exit(65);
        }
    }
}

fn median_of(doc: &Json, path: &str, bench: &str) -> f64 {
    let median = doc.get("results").and_then(|r| r.get(bench)).and_then(|t| t.get("median_ns"));
    match median {
        Some(Json::F64(v)) => *v,
        Some(Json::U64(v)) => *v as f64,
        _ => {
            eprintln!("pipeline --check: {path} has no median for {bench}");
            std::process::exit(65);
        }
    }
}

/// `pipeline --check FILE [--baseline BASE --margin PCT]`: exit 0 iff
/// FILE parses as a bench artifact and (when a baseline is given) none
/// of the gated hot-path medians exceeds the baseline median by more
/// than PCT percent. Exit 65 on a regression — the verify.sh perf gate.
fn check(path: &str, baseline: Option<&str>, margin_pct: f64) -> ! {
    let doc = parse_artifact(path);
    let Some(base_path) = baseline else { std::process::exit(0) };
    let base = parse_artifact(base_path);
    let mut regressed = false;
    for bench in GATED {
        let got = median_of(&doc, path, bench);
        let reference = median_of(&base, base_path, bench);
        let bound = reference * (1.0 + margin_pct / 100.0);
        if got > bound {
            eprintln!(
                "pipeline --check: {bench} regressed: {got:.0} ns > {bound:.0} ns \
                 (baseline {reference:.0} ns + {margin_pct}% margin)"
            );
            regressed = true;
        } else {
            println!("pipeline --check: {bench} ok: {got:.0} ns <= {bound:.0} ns");
        }
    }
    std::process::exit(if regressed { 65 } else { 0 });
}

fn flag_value<'a>(argv: &'a [String], flag: &str) -> Option<&'a str> {
    argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1)).map(|s| s.as_str())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--check") {
        match flag_value(&argv, "--check") {
            Some(path) => {
                let baseline = flag_value(&argv, "--baseline");
                let margin = match flag_value(&argv, "--margin") {
                    Some(m) => m.parse().unwrap_or_else(|_| {
                        eprintln!("pipeline --margin needs a number (percent)");
                        std::process::exit(64);
                    }),
                    None => 100.0,
                };
                check(path, baseline, margin)
            }
            None => {
                eprintln!("pipeline --check needs a file argument");
                std::process::exit(64);
            }
        }
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 20 };
    let iters = if quick { 5 } else { 100 };
    let mut h = Harness::new("pipeline", samples).progress_to(Box::new(std::io::stdout()));

    bench_monitor_tick(&mut h, iters * 4);
    bench_monitor_window(&mut h, iters);
    bench_scheme_apply(&mut h, iters);
    bench_trace_toggle(&mut h, iters * 4);

    let results: Vec<(String, Json)> =
        h.results().iter().map(|(name, t)| (name.clone(), timing_json(t))).collect();
    let doc = Json::Object(vec![
        ("bench".into(), Json::Str("pipeline".into())),
        ("quick".into(), Json::Bool(quick)),
        ("samples".into(), Json::U64(samples as u64)),
        ("results".into(), Json::Object(results)),
    ]);
    let text = doc.to_string_compact();

    // Self-validate before writing: the artifact must re-parse.
    if let Err(e) = daos_util::json::parse(&text) {
        eprintln!("pipeline: generated artifact is not valid JSON: {e}");
        std::process::exit(70);
    }
    let path = out_path();
    if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
        eprintln!("pipeline: cannot write {}: {e}", path.display());
        std::process::exit(74);
    }
    println!("[artifact] {}", path.display());
}
