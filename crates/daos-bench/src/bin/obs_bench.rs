//! The obs plane under fire: storms of concurrent keep-alive clients
//! hammer a live `ObsServer`'s `/metrics`, `/snapshot`, `/events`,
//! `/statusz`, and `/query` (metric-history) endpoints, recording
//! sustained RPS and p50/p95/p99 request latency
//! per endpoint into `BENCH_obs.json` at the repo root as the
//! regression baseline. Before writing, the harness cross-checks the
//! server's own `daos_obs_http_requests_total{endpoint=...}`
//! self-telemetry against the client-side request counts — the artifact
//! is only committed if the server counted every request.
//!
//! `obs_bench --quick` shrinks the storm for CI smoke runs;
//! `DAOS_BENCH_OUT` overrides the output path;
//! `--check FILE [--baseline BASE --margin PCT]` gates the committed
//! baseline exactly like `pipeline --check` (exit 65 on a regression).

use daos_bench::artifact::{self, LoadStats};
use daos_obs::http::{http_get, HttpClient};
use daos_obs::{prom, ObsConfig, ObsServer, ObsSnapshot, Publisher};
use daos_trace::{Collector, Event, Registry};
use std::time::{Duration, Instant};

/// The latencies gated against the committed baseline (on `median_ns`,
/// i.e. the storm p50).
const GATED: [&str; 5] =
    ["obs/metrics", "obs/snapshot", "obs/events", "obs/statusz", "obs/query"];

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A publisher that looks like a real finished run: a snapshot with a
/// populated registry (scheme counters, per-tenant aggregates, span
/// histograms) and a synced event tail, so every endpoint serves
/// realistic payloads. Finished means `/events` drains and terminates —
/// one bounded request per storm iteration.
fn synthetic_publisher() -> Publisher {
    let mut reg = Registry::new();
    reg.counter_add("monitor.work_ns", 48_000_000);
    reg.counter_add("monitor.nr_checks", 120_000);
    for i in 0..4u32 {
        reg.counter_add(&format!("scheme.{i}.nr_applied"), 100 + i as u64 * 37);
        reg.counter_add(&format!("scheme.{i}.sz_applied"), (64 << 20) + ((i as u64) << 12));
    }
    for t in 0..16u32 {
        reg.counter_add(&format!("tenant.t{t}.rss_bytes"), (t as u64 + 1) << 24);
        reg.counter_add(&format!("tenant.t{t}.nr_processes"), 8);
    }
    for v in 0..4096u64 {
        reg.hist_record("span.sample_ns", v * 13 % 100_000);
    }
    let publisher = Publisher::new();
    publisher.publish(ObsSnapshot {
        seq: 1,
        config: "obs-bench".into(),
        workload: "synthetic".into(),
        machine: "bench".into(),
        epoch: 99,
        nr_epochs: 100,
        now_ns: 1_000_000_000,
        wss_bytes: 512 << 20,
        registry: reg,
        ..Default::default()
    });
    let mut c = Collector::builder().ring_capacity(1024).build().expect("collector");
    for at in 0..512u64 {
        c.record(at * 1000, Event::RegionSplit { before: at, after: at + 1 });
    }
    publisher.sync_ring(c.ring());
    publisher.finish();
    publisher
}

/// One storm: `clients` threads, each issuing `requests` sequential
/// requests to `path` and timing every one. Keep-alive clients hold one
/// connection for all their requests; one-shot storms (`/events`, whose
/// chunked stream always ends with the connection) reconnect per
/// request. Returns the merged latency distribution.
fn storm(
    addr: std::net::SocketAddr,
    path: &'static str,
    clients: usize,
    requests: usize,
    keep_alive: bool,
) -> LoadStats {
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests);
                let mut client = keep_alive
                    .then(|| HttpClient::connect(addr, CLIENT_TIMEOUT).expect("connect"));
                for _ in 0..requests {
                    let t0 = Instant::now();
                    let resp = match &mut client {
                        Some(c) => c.get(path).expect("request"),
                        None => http_get(addr, path, CLIENT_TIMEOUT).expect("request"),
                    };
                    assert_eq!(resp.status, 200, "{path} under load");
                    assert!(!resp.body.is_empty(), "{path} served a body");
                    lat.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
                lat
            })
        })
        .collect();
    let mut all = Vec::with_capacity(clients * requests);
    for w in workers {
        all.extend(w.join().expect("storm client panicked"));
    }
    let wall = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    artifact::load_stats(all, wall).expect("non-empty storm")
}

/// One scrape of `/metrics`, returning the server's own
/// `daos_obs_http_requests_total` per endpoint label. A single scrape
/// keeps the counts consistent: what it reports is the state *before*
/// the scrape request itself.
fn server_side_counts(addr: std::net::SocketAddr) -> Vec<(String, u64)> {
    let resp = http_get(addr, "/metrics", CLIENT_TIMEOUT).expect("scrape /metrics");
    let samples = prom::parse_exposition(&resp.body).unwrap_or_else(|e| {
        eprintln!("obs_bench: /metrics is not valid exposition: {e}");
        std::process::exit(70);
    });
    samples
        .iter()
        .filter(|s| s.name == "daos_obs_http_requests_total")
        .filter_map(|s| match s.labels.as_slice() {
            [(k, v)] if k == "endpoint" => Some((v.clone(), s.value as u64)),
            _ => None,
        })
        .collect()
}

fn read_artifact(path: &str) -> daos_util::json::Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_bench --check: cannot read {path}: {e}");
            std::process::exit(74);
        }
    };
    match artifact::parse_artifact(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("obs_bench --check: {path} is {e}");
            std::process::exit(65);
        }
    }
}

/// `obs_bench --check FILE [--baseline BASE --margin PCT]`: exit 0 iff
/// FILE parses as a bench artifact and (when a baseline is given) every
/// gated endpoint's p50 stays within PCT percent of the baseline. Exit
/// 65 on a regression — the verify.sh perf gate.
fn check(path: &str, baseline: Option<&str>, margin_pct: f64) -> ! {
    let doc = read_artifact(path);
    let Some(base_path) = baseline else { std::process::exit(0) };
    let base = read_artifact(base_path);
    let checks = artifact::gate(&doc, &base, &GATED, margin_pct).unwrap_or_else(|e| {
        eprintln!("obs_bench --check: {e}");
        std::process::exit(65);
    });
    let mut regressed = false;
    for c in &checks {
        if c.regressed() {
            eprintln!(
                "obs_bench --check: {} regressed: {:.0} ns > {:.0} ns \
                 (baseline {:.0} ns + {margin_pct}% margin)",
                c.bench, c.got_ns, c.bound_ns, c.reference_ns
            );
            regressed = true;
        } else {
            println!(
                "obs_bench --check: {} ok: {:.0} ns <= {:.0} ns",
                c.bench, c.got_ns, c.bound_ns
            );
        }
    }
    std::process::exit(if regressed { 65 } else { 0 });
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--check") {
        match artifact::flag_value(&argv, "--check") {
            Some(path) => {
                let baseline = artifact::flag_value(&argv, "--baseline");
                let margin = match artifact::flag_value(&argv, "--margin") {
                    Some(m) => m.parse().unwrap_or_else(|_| {
                        eprintln!("obs_bench --margin needs a number (percent)");
                        std::process::exit(64);
                    }),
                    None => 100.0,
                };
                check(path, baseline, margin)
            }
            None => {
                eprintln!("obs_bench --check needs a file argument");
                std::process::exit(64);
            }
        }
    }
    let quick = argv.iter().any(|a| a == "--quick");
    let (clients, requests) = if quick { (20, 5) } else { (200, 25) };

    let publisher = synthetic_publisher();
    let server = ObsServer::bind_with(
        "127.0.0.1:0",
        publisher,
        ObsConfig { workers: 4, max_connections: 512, ..ObsConfig::default() },
    )
    .unwrap_or_else(|e| {
        eprintln!("obs_bench: cannot bind the obs server: {e}");
        std::process::exit(74);
    });
    let addr = server.addr();
    println!(
        "obs_bench: {clients} clients x {requests} requests per endpoint \
         against {addr} (4 workers)"
    );

    // Keep-alive storms for the snapshot-backed endpoints; `/events` is
    // one request per connection by design (chunked, Connection: close).
    let plan: [(&str, &str, bool); 5] = [
        ("obs/metrics", "/metrics", true),
        ("obs/snapshot", "/snapshot", true),
        ("obs/events", "/events", false),
        ("obs/statusz", "/statusz", true),
        ("obs/query", "/query?metric=daos_obs_seq&agg=last", true),
    ];
    let mut results: Vec<(String, LoadStats)> = Vec::new();
    for (bench, path, keep_alive) in plan {
        let stats = storm(addr, path, clients, requests, keep_alive);
        println!(
            "{bench}: {:.0} req/s sustained, p50 {:.0} ns, p95 {:.0} ns, p99 {:.0} ns \
             ({} requests)",
            stats.rps, stats.p50_ns, stats.p95_ns, stats.p99_ns, stats.iters
        );
        results.push((bench.to_string(), stats));
    }

    // The server must have counted exactly what the clients sent; the
    // final verification scrape reports the pre-scrape totals, so every
    // endpoint — /metrics included — pins to clients * requests.
    let expected = (clients * requests) as u64;
    let counts = server_side_counts(addr);
    for endpoint in ["metrics", "snapshot", "events", "statusz", "query"] {
        let counted =
            counts.iter().find(|(e, _)| e == endpoint).map(|(_, n)| *n).unwrap_or(0);
        if counted != expected {
            eprintln!(
                "obs_bench: server counted {counted} {endpoint} requests, \
                 clients sent {expected} — refusing to write the artifact"
            );
            std::process::exit(70);
        }
    }
    println!("obs_bench: server-side request totals match client-side counts");

    let doc = artifact::load_artifact_doc("obs", quick, &results);
    let text = doc.to_string_compact();
    // Self-validate before writing: the artifact must re-parse and every
    // gated endpoint must have a gateable median.
    if let Err(e) = artifact::parse_artifact(&text) {
        eprintln!("obs_bench: generated artifact is {e}");
        std::process::exit(70);
    }
    for bench in GATED {
        if artifact::median_of(&doc, bench).is_none() {
            eprintln!("obs_bench: generated artifact has no median for {bench}");
            std::process::exit(70);
        }
    }
    let path = artifact::out_path("BENCH_obs.json");
    if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
        eprintln!("obs_bench: cannot write {}: {e}", path.display());
        std::process::exit(74);
    }
    println!("[artifact] {}", path.display());
}
