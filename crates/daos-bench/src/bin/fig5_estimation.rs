//! Figure 5: the auto-tuner's trend estimation for parsec3/raytrace —
//! a dense "Measured" sweep, the 10 tuner samples (6 global + 4 local),
//! the polynomial "Estimated" curve, and the chosen peak.

use daos::{run, score_inputs, RunConfig};
use daos_bench::report::{write_artifact, Table};
use daos_bench::sweep::prcl_sweep;
use daos_mm::clock::sec;
use daos_mm::MachineProfile;
use daos_tuner::{tune, DefaultScore, ScoreFn, TunerConfig};
use daos_workloads::by_path;

fn main() {
    let machine = MachineProfile::i3_metal();
    let spec = by_path("parsec3/raytrace").expect("suite workload");
    println!("Figure 5: trend estimation for {} on {}.\n", spec.path_name(), machine.name);

    // Dense measured curve (1 s granularity, as in the paper).
    let ages: Vec<u64> = (0..=60).collect();
    let measured = prcl_sweep(&machine, &spec, &ages, 1, 42).expect("prcl sweep");

    // The tuning session: 10 samples (60 % global + 40 % local).
    let baseline = run(&machine, &RunConfig::baseline(), &spec, 42).expect("baseline");
    let mut score_fn = DefaultScore::default();
    let cfg = TunerConfig {
        time_limit: sec(100),
        unit_work_time: sec(10), // → 10 samples
        range: (0.0, 60.0),
        seed: 42,
    };
    let result = tune(&cfg, |min_age| {
        let r = run(
            &machine,
            &RunConfig::prcl_with_min_age((min_age * 1e9) as u64),
            &spec,
            42,
        )
        .expect("sample run");
        score_fn.score(&score_inputs(&baseline, &r))
    });

    let curve = result.curve.as_ref().expect("polynomial fit");
    println!("{:>8} {:>10} {:>10}", "min_age", "Measured", "Estimated");
    let mut csv = Table::new(vec!["min_age_s", "measured", "estimated"]);
    for (i, age) in ages.iter().enumerate() {
        let est = curve.eval(*age as f64);
        println!("{:>7}s {:>10.2} {:>10.2}", age, measured[i].score, est);
        csv.row(vec![
            age.to_string(),
            format!("{:.3}", measured[i].score),
            format!("{:.3}", est),
        ]);
    }

    println!("\n60% global samples:");
    let mut samples = Table::new(vec!["phase", "min_age_s", "score"]);
    for (x, s) in &result.samples[..result.nr_global] {
        println!("  min_age {x:>5.1}s -> score {s:>7.2}");
        samples.row(vec!["global".into(), format!("{x:.2}"), format!("{s:.3}")]);
    }
    println!("40% local samples (around the best global sample):");
    for (x, s) in &result.samples[result.nr_global..] {
        println!("  min_age {x:>5.1}s -> score {s:>7.2}");
        samples.row(vec!["local".into(), format!("{x:.2}"), format!("{s:.3}")]);
    }

    let best_measured = measured
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
        .unwrap();
    println!(
        "\nestimated peak: min_age {:.1}s (score {:.2}); measured best: min_age {}s (score {:.2})",
        result.best_x, result.best_score, best_measured.min_age_s, best_measured.score
    );
    println!(
        "polynomial degree {} (nr_samples/3 rule), {} samples total",
        curve.degree(),
        result.samples.len()
    );

    println!("[artifact] {}", write_artifact("fig5_curves.csv", &csv.to_csv()).unwrap().display());
    println!("[artifact] {}", write_artifact("fig5_samples.csv", &samples.to_csv()).unwrap().display());
}
