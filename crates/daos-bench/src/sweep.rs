//! The prcl aggressiveness sweep shared by Figures 3, 4 and 5: vary the
//! pageout scheme's `min_age` threshold, score each run with Listing 2.

use daos::{run, score_inputs, DaosError, Normalized, RunConfig};
use daos_mm::clock::sec;
use daos_mm::MachineProfile;
use daos_tuner::{DefaultScore, ScoreFn};
use daos_workloads::WorkloadSpec;

use daos_util::pool::par_map;
use crate::report::mean;

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The prcl `min_age` threshold, seconds.
    pub min_age_s: u64,
    /// Listing-2 score (mean over repeats).
    pub score: f64,
    /// Standard deviation of the score over repeats.
    pub score_std: f64,
    /// Normalised performance (mean over repeats).
    pub performance: f64,
    /// Normalised memory efficiency (mean over repeats).
    pub memory_efficiency: f64,
}

/// Sweep `min_age` over `ages_s` for one workload on one machine.
///
/// Evaluation proceeds from the least aggressive setting (largest
/// `min_age`) to the most aggressive, matching the paper's note that
/// "aggressiveness increases from right to left" — Listing 2's stateful
/// SLA clamp then sees safe configurations before risky ones. Returned
/// points are sorted by ascending `min_age`.
///
/// Fails with the first simulation's error if any run rejects its
/// configuration.
pub fn prcl_sweep(
    machine: &MachineProfile,
    spec: &WorkloadSpec,
    ages_s: &[u64],
    repeats: u64,
    seed: u64,
) -> Result<Vec<SweepPoint>, DaosError> {
    // All runs (baseline + each age × repeat) are independent →
    // parallel; scoring is sequential afterwards (stateful SLA).
    let mut ages: Vec<u64> = ages_s.to_vec();
    ages.sort_unstable();
    ages.dedup();

    let mut jobs: Vec<(Option<u64>, u64)> = Vec::new();
    for rep in 0..repeats {
        jobs.push((None, rep)); // baseline
        for &age in &ages {
            jobs.push((Some(age), rep));
        }
    }
    let results = par_map(jobs.clone(), |(age, rep)| {
        let cfg = match age {
            None => RunConfig::baseline(),
            Some(a) => RunConfig::prcl_with_min_age(sec(a)),
        };
        run(machine, &cfg, spec, seed + rep)
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Index results.
    let mut baselines = Vec::new();
    let mut by_age: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for (i, (age, _rep)) in jobs.iter().enumerate() {
        match age {
            None => baselines.push(i),
            Some(a) => by_age.entry(*a).or_default().push(i),
        }
    }

    // Score per repeat, walking ages from least to most aggressive.
    let mut scores: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
    let mut norms: std::collections::BTreeMap<u64, Vec<Normalized>> = Default::default();
    for rep in 0..repeats as usize {
        let base = &results[baselines[rep]];
        let mut score_fn = DefaultScore::default();
        for &age in ages.iter().rev() {
            let idx = by_age[&age][rep];
            let r = &results[idx];
            let s = score_fn.score(&score_inputs(base, r));
            scores.entry(age).or_default().push(s);
            norms.entry(age).or_default().push(Normalized::of(base, r));
        }
    }

    Ok(ages
        .iter()
        .map(|&age| {
            let ss = &scores[&age];
            let m = mean(ss.iter().copied());
            let var = mean(ss.iter().map(|s| (s - m) * (s - m)));
            let ns = &norms[&age];
            SweepPoint {
                min_age_s: age,
                score: m,
                score_std: var.sqrt(),
                performance: mean(ns.iter().map(|n| n.performance)),
                memory_efficiency: mean(ns.iter().map(|n| n.memory_efficiency)),
            }
        })
        .collect())
}

/// Convert sweep points to `(aggressiveness, score)` pairs for the
/// Fig. 3 pattern classifier (aggressiveness = 60 − min_age).
pub fn to_aggressiveness_series(points: &[SweepPoint]) -> Vec<(f64, f64)> {
    points.iter().map(|p| (60.0 - p.min_age_s as f64, p.score)).collect()
}
