//! A tiny work-distributing map over `std::thread::scope`.
//!
//! Figure sweeps run hundreds of independent simulations; this spreads
//! them over the available cores (degrading gracefully to serial on a
//! single-core box). Simulations are deterministic, so parallel and
//! serial execution produce identical numbers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` in parallel, preserving order of results.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let nr_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if nr_threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // A worker panic propagates out of the scope when its JoinHandle is
    // detached-joined at scope exit, so no explicit error plumbing is
    // needed; a poisoned slot mutex carries no torn state (each slot is
    // written whole, once), so poison recovery is safe everywhere.
    std::thread::scope(|scope| {
        for _ in 0..nr_threads {
            scope.spawn(|| loop {
                // ordering: Relaxed suffices — the counter only hands
                // out unique indices; the scope join is what publishes
                // the outputs to the caller.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    // lint: allow(panic, fetch_add hands each index to exactly one worker)
                    .expect("each index claimed once");
                *outputs[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(f(item));
            });
        }
    });

    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // lint: allow(panic, a worker panic would have propagated at scope exit)
                .expect("all indices processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert_eq!(out.len(), 20);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn parallel_matches_serial_for_deterministic_work() {
        let serial: Vec<u64> = (0..64u64).map(|x| x.wrapping_mul(x) ^ 0xDA05).collect();
        let parallel = par_map((0..64u64).collect(), |x| x.wrapping_mul(x) ^ 0xDA05);
        assert_eq!(serial, parallel);
    }
}
