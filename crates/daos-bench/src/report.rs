//! Report rendering: aligned console tables plus CSV artifacts under
//! `results/` so each figure's data can be re-plotted.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (must match header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object: `{"headers": [...], "rows": [[...]]}`.
    pub fn to_json(&self) -> daos_util::json::Json {
        use daos_util::json::{Json, ToJson};
        Json::Object(vec![
            ("headers".to_string(), self.headers.to_json()),
            ("rows".to_string(), self.rows.to_json()),
        ])
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Directory experiment artifacts are written to (`$DAOS_RESULTS` or
/// `./results`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DAOS_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    let _ = fs::create_dir_all(&p);
    p
}

/// Write an artifact file under the results directory, returning its
/// path. Silent: the calling binary announces the path (library code
/// never prints — see the guard in scripts/verify.sh).
pub fn write_artifact(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

/// Format a ratio as a fixed-width number (`1.234`).
pub fn r3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage (`12.3%`).
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Geometric-mean helper for normalised metrics.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2.5"]);
        let s = t.render();
        assert!(s.contains("longer-name  2.5"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn table_to_json() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a", "1"]);
        let j = t.to_json().to_string_compact();
        assert_eq!(j, "{\"headers\":[\"k\",\"v\"],\"rows\":[[\"a\",\"1\"]]}");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn stats_helpers() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(Vec::<f64>::new()), 1.0);
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(Vec::<f64>::new()), 0.0);
    }
}
