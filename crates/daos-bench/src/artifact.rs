//! Bench-artifact machinery shared by the `pipeline` and `fleet_bench`
//! binaries: artifact JSON assembly, the committed-baseline regression
//! gate that `scripts/verify.sh` drives via `--check --baseline
//! --margin`, and the tiny argv helpers. Pure functions only — the
//! binaries own all printing and exit codes.

use std::path::PathBuf;

use daos_util::bench::Timing;
use daos_util::json::Json;

/// One [`Timing`] as the artifact's per-bench JSON object.
pub fn timing_json(t: &Timing) -> Json {
    Json::Object(vec![
        ("median_ns".into(), Json::F64(t.median_ns)),
        ("min_ns".into(), Json::F64(t.min_ns)),
        ("max_ns".into(), Json::F64(t.max_ns)),
        ("iters".into(), Json::U64(t.iters)),
    ])
}

/// The full artifact document for a harness run.
pub fn artifact_doc(bench: &str, quick: bool, samples: usize, results: &[(String, Timing)]) -> Json {
    let results: Vec<(String, Json)> =
        results.iter().map(|(name, t)| (name.clone(), timing_json(t))).collect();
    Json::Object(vec![
        ("bench".into(), Json::Str(bench.into())),
        ("quick".into(), Json::Bool(quick)),
        ("samples".into(), Json::U64(samples as u64)),
        ("results".into(), Json::Object(results)),
    ])
}

/// A measured latency distribution plus sustained rate — the
/// per-endpoint result shape of the `obs_bench` load harness.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Median request latency (doubles as the gated `median_ns`).
    pub p50_ns: f64,
    /// 95th-percentile request latency.
    pub p95_ns: f64,
    /// 99th-percentile request latency.
    pub p99_ns: f64,
    /// Fastest request.
    pub min_ns: f64,
    /// Slowest request.
    pub max_ns: f64,
    /// Sustained requests per second over the whole storm.
    pub rps: f64,
    /// Requests measured.
    pub iters: u64,
}

/// Aggregate raw per-request latencies plus the storm's wall time into
/// a [`LoadStats`]. Returns `None` for an empty sample set.
pub fn load_stats(mut lat_ns: Vec<u64>, wall_ns: u64) -> Option<LoadStats> {
    if lat_ns.is_empty() {
        return None;
    }
    lat_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((p / 100.0) * (lat_ns.len() - 1) as f64).round() as usize;
        lat_ns[idx.min(lat_ns.len() - 1)] as f64
    };
    Some(LoadStats {
        p50_ns: pct(50.0),
        p95_ns: pct(95.0),
        p99_ns: pct(99.0),
        min_ns: lat_ns[0] as f64,
        max_ns: lat_ns[lat_ns.len() - 1] as f64,
        rps: lat_ns.len() as f64 / (wall_ns.max(1) as f64 / 1e9),
        iters: lat_ns.len() as u64,
    })
}

/// One [`LoadStats`] as the artifact's per-bench JSON object. The p50
/// is written under the `median_ns` key too, so [`median_of`] and
/// [`gate`] work on load artifacts unchanged.
pub fn load_json(s: &LoadStats) -> Json {
    Json::Object(vec![
        ("median_ns".into(), Json::F64(s.p50_ns)),
        ("p50_ns".into(), Json::F64(s.p50_ns)),
        ("p95_ns".into(), Json::F64(s.p95_ns)),
        ("p99_ns".into(), Json::F64(s.p99_ns)),
        ("min_ns".into(), Json::F64(s.min_ns)),
        ("max_ns".into(), Json::F64(s.max_ns)),
        ("rps".into(), Json::F64(s.rps)),
        ("iters".into(), Json::U64(s.iters)),
    ])
}

/// The full artifact document for a load-harness run (the
/// `obs_bench` shape: [`LoadStats`] per endpoint instead of
/// [`Timing`] per bench).
pub fn load_artifact_doc(
    bench: &str,
    quick: bool,
    results: &[(String, LoadStats)],
) -> Json {
    let results: Vec<(String, Json)> =
        results.iter().map(|(name, s)| (name.clone(), load_json(s))).collect();
    Json::Object(vec![
        ("bench".into(), Json::Str(bench.into())),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Object(results)),
    ])
}

/// Artifact output path: the `DAOS_BENCH_OUT` override, or `file` at
/// the repo root (two levels above this crate's manifest).
pub fn out_path(file: &str) -> PathBuf {
    match std::env::var("DAOS_BENCH_OUT") {
        Ok(p) => p.into(),
        Err(_) => {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file)
        }
    }
}

/// Parse an artifact's text into JSON.
pub fn parse_artifact(text: &str) -> Result<Json, String> {
    daos_util::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))
}

/// The median timing recorded for `bench`, if the artifact has one.
pub fn median_of(doc: &Json, bench: &str) -> Option<f64> {
    match doc.get("results").and_then(|r| r.get(bench)).and_then(|t| t.get("median_ns")) {
        Some(Json::F64(v)) => Some(*v),
        Some(Json::U64(v)) => Some(*v as f64),
        _ => None,
    }
}

/// One gated comparison against the committed baseline.
pub struct GateCheck {
    /// The gated bench name.
    pub bench: String,
    /// The fresh median.
    pub got_ns: f64,
    /// The baseline median.
    pub reference_ns: f64,
    /// The pass bound: baseline plus the margin.
    pub bound_ns: f64,
}

impl GateCheck {
    /// Whether this bench exceeded its bound.
    pub fn regressed(&self) -> bool {
        self.got_ns > self.bound_ns
    }
}

/// Compare every gated median in `doc` against `base` with a
/// `margin_pct` percent allowance. `Err` names the first bench either
/// artifact is missing a median for.
pub fn gate(
    doc: &Json,
    base: &Json,
    gated: &[&str],
    margin_pct: f64,
) -> Result<Vec<GateCheck>, String> {
    gated
        .iter()
        .map(|&bench| {
            let got_ns = median_of(doc, bench)
                .ok_or_else(|| format!("artifact has no median for {bench}"))?;
            let reference_ns = median_of(base, bench)
                .ok_or_else(|| format!("baseline has no median for {bench}"))?;
            let bound_ns = reference_ns * (1.0 + margin_pct / 100.0);
            Ok(GateCheck { bench: bench.to_string(), got_ns, reference_ns, bound_ns })
        })
        .collect()
}

/// The value following `flag` in `argv`, if any.
pub fn flag_value<'a>(argv: &'a [String], flag: &str) -> Option<&'a str> {
    argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1)).map(|s| s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(median: f64) -> Json {
        parse_artifact(&format!(
            r#"{{"bench":"t","results":{{"a/b":{{"median_ns":{median},"iters":3}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn median_lookup_and_gate() {
        let fresh = artifact(150.0);
        let base = artifact(100.0);
        assert_eq!(median_of(&fresh, "a/b"), Some(150.0));
        assert_eq!(median_of(&fresh, "a/missing"), None);

        let checks = gate(&fresh, &base, &["a/b"], 100.0).unwrap();
        assert!(!checks[0].regressed(), "150 within 100 + 100%");
        let checks = gate(&fresh, &base, &["a/b"], 10.0).unwrap();
        assert!(checks[0].regressed(), "150 exceeds 100 + 10%");
        assert!(gate(&fresh, &base, &["a/missing"], 10.0).is_err());
    }

    #[test]
    fn artifact_doc_round_trips() {
        let t = Timing { median_ns: 1.5, min_ns: 1.0, max_ns: 2.0, iters: 7 };
        let doc = artifact_doc("demo", true, 3, &[("x/y".into(), t)]);
        let text = doc.to_string_compact();
        let back = parse_artifact(&text).unwrap();
        assert_eq!(median_of(&back, "x/y"), Some(1.5));
    }

    #[test]
    fn load_stats_percentiles_and_gateable_artifact() {
        assert!(load_stats(vec![], 1).is_none());
        // 1..=100 ns over a 10 µs wall: nearest-rank percentiles on the
        // sorted samples, rps from the wall clock.
        let lat: Vec<u64> = (1..=100).collect();
        let s = load_stats(lat, 10_000).unwrap();
        assert_eq!(s.p50_ns, 51.0);
        assert_eq!(s.p95_ns, 95.0);
        assert_eq!(s.p99_ns, 99.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
        assert_eq!(s.iters, 100);
        assert!((s.rps - 1e7).abs() < 1e-6, "100 reqs / 10 µs = 1e7 rps");

        // The load artifact round-trips and its p50 is gateable through
        // the same `median_of`/`gate` machinery as the timing artifacts.
        let doc = load_artifact_doc("obs", false, &[("obs/metrics".into(), s)]);
        let back = parse_artifact(&doc.to_string_compact()).unwrap();
        assert_eq!(median_of(&back, "obs/metrics"), Some(51.0));
        let checks = gate(&back, &back, &["obs/metrics"], 150.0).unwrap();
        assert!(!checks[0].regressed(), "an artifact never regresses against itself");
    }

    #[test]
    fn flag_values_parse() {
        let argv: Vec<String> =
            ["bin", "--check", "f.json", "--margin", "50"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag_value(&argv, "--check"), Some("f.json"));
        assert_eq!(flag_value(&argv, "--margin"), Some("50"));
        assert_eq!(flag_value(&argv, "--baseline"), None);
    }
}
