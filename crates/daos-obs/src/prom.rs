//! Prometheus text exposition (format 0.0.4) rendered from an
//! [`ObsSnapshot`], plus a strict line parser used by the tests and the
//! verify smoke to assert the output really is well-formed.
//!
//! Mapping from registry keys:
//! - dotted keys become `daos_`-prefixed underscore names
//!   (`monitor.work_ns` → `daos_monitor_work_ns`);
//! - per-scheme counters `scheme.<i>.<field>` collapse into one family
//!   per field with a `scheme` label
//!   (`daos_scheme_nr_applied{scheme="0"}`);
//! - log2 histograms render as native Prometheus histograms with
//!   power-of-two `le` bounds plus `_sum`/`_count`.

use crate::snapshot::ObsSnapshot;
use daos_trace::{Histogram, Registry};
use std::collections::BTreeMap;

/// Mangle a dotted registry key into a Prometheus metric name.
fn mangle(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 5);
    out.push_str("daos_");
    for c in key.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn hist_lines(out: &mut String, name: &str, h: &Histogram) {
    family(out, name, "histogram", "log2-bucketed duration/size distribution");
    let mut cum = 0u64;
    for (bucket, count) in h.nonzero_buckets() {
        cum += count;
        // Bucket 0 holds zeros; bucket i >= 1 holds [2^(i-1), 2^i).
        let le = if bucket == 0 { 0u128 } else { 1u128 << bucket };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Counter-key prefixes that collapse into labelled families:
/// `scheme.<i>.<field>` → `daos_scheme_<field>{scheme="i"}`, and
/// `tenant.<t>.<field>` → `daos_tenant_<field>{tenant="t"}` (the fleet
/// engine's per-tenant aggregates).
const LABELLED_PREFIXES: [&str; 2] = ["scheme", "tenant"];

/// Render the registry part of the exposition into `out`.
fn render_registry(out: &mut String, reg: &Registry) {
    // Counters: per-scheme / per-tenant keys collapse into labelled
    // families.
    let mut labelled: BTreeMap<(&str, &str), Vec<(&str, u64)>> = BTreeMap::new();
    let mut plain: Vec<(&str, u64)> = Vec::new();
    for (key, value) in reg.counters() {
        let split = LABELLED_PREFIXES.iter().find_map(|label| {
            key.strip_prefix(label)
                .and_then(|rest| rest.strip_prefix('.'))
                .and_then(|rest| rest.split_once('.'))
                .map(|(idx, field)| (*label, idx, field))
        });
        match split {
            Some((label, idx, field)) => {
                labelled.entry((label, field)).or_default().push((idx, value))
            }
            None => plain.push((key, value)),
        }
    }
    for (key, value) in plain {
        let name = mangle(key);
        family(out, &name, "counter", &format!("daos-trace counter {key}"));
        out.push_str(&format!("{name} {value}\n"));
    }
    for ((label, field), entries) in labelled {
        let name = mangle(&format!("{label}.{field}"));
        family(
            out,
            &name,
            "counter",
            &format!("per-{label} counter {label}.<{label}>.{field}"),
        );
        for (idx, value) in entries {
            out.push_str(&format!("{name}{{{label}=\"{idx}\"}} {value}\n"));
        }
    }
    for (key, value) in reg.gauges() {
        let name = mangle(key);
        family(out, &name, "gauge", &format!("daos-trace gauge {key}"));
        out.push_str(&format!("{name} {value}\n"));
    }
    for (key, h) in reg.hists() {
        hist_lines(out, &mangle(key), h);
    }
}

/// Render the full `/metrics` exposition for one snapshot.
pub fn render(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    let gauges: [(&str, &str, u64); 6] = [
        ("daos_obs_seq", "snapshot publish sequence number", snap.seq),
        ("daos_obs_epoch", "last completed epoch (0-based)", snap.epoch),
        ("daos_obs_nr_epochs", "total epochs this run executes", snap.nr_epochs),
        ("daos_obs_now_ns", "virtual clock at publish time", snap.now_ns),
        ("daos_obs_wss_bytes", "working-set estimate of the last window", snap.wss_bytes),
        ("daos_obs_finished", "1 once the run has completed", snap.finished as u64),
    ];
    for (name, help, value) in gauges {
        family(&mut out, name, "gauge", help);
        out.push_str(&format!("{name} {value}\n"));
    }
    family(
        &mut out,
        "daos_obs_dropped_events",
        "counter",
        "events the trace ring overwrote",
    );
    out.push_str(&format!("daos_obs_dropped_events {}\n", snap.dropped_events));
    render_registry(&mut out, &snap.registry);
    out
}

/// One parsed sample line: metric name, sorted label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs as written.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// `name{k="v",...}` rendering for map keys in tests.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Strictly parse a text exposition: every line must be `# HELP name ...`,
/// `# TYPE name counter|gauge|histogram`, or `name[{labels}] value`.
/// Returns the samples, or a message naming the first offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if line.is_empty() {
            return Err(err("blank line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            let kind = words.next().unwrap_or_default();
            let name = words.next().unwrap_or_default();
            if !matches!(kind, "HELP" | "TYPE") {
                return Err(err("comment is neither HELP nor TYPE"));
            }
            if name.is_empty() || !valid_name(name) {
                return Err(err("bad metric name in comment"));
            }
            if kind == "TYPE"
                && !matches!(words.next(), Some("counter" | "gauge" | "histogram"))
            {
                return Err(err("unknown TYPE"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(err("comment without HELP/TYPE"));
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample line has no value"))?;
        let value: f64 = value.parse().map_err(|_| err("unparseable value"))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| err("unclosed label set"))?;
                let mut labels = Vec::new();
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("label without ="))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if !valid_name(&name) {
            return Err(err("bad metric name"));
        }
        samples.push(Sample { name, labels, value });
    }
    Ok(samples)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map(text: &str) -> BTreeMap<String, f64> {
        parse_exposition(text)
            .unwrap()
            .into_iter()
            .map(|s| (s.key(), s.value))
            .collect()
    }

    #[test]
    fn registry_renders_and_reparses() {
        let mut reg = Registry::new();
        reg.counter_add("monitor.work_ns", 480);
        reg.counter_add("scheme.0.nr_applied", 3);
        reg.counter_add("scheme.1.nr_applied", 5);
        reg.gauge_set("tuner.best_x", 2.5);
        reg.hist_record("span.sample_ns", 0);
        reg.hist_record("span.sample_ns", 100);
        reg.hist_record("span.sample_ns", 100);
        let snap = ObsSnapshot { seq: 1, registry: reg, ..Default::default() };
        let text = render(&snap);
        let m = sample_map(&text);
        assert_eq!(m["daos_monitor_work_ns"], 480.0);
        assert_eq!(m["daos_scheme_nr_applied{scheme=\"0\"}"], 3.0);
        assert_eq!(m["daos_scheme_nr_applied{scheme=\"1\"}"], 5.0);
        assert_eq!(m["daos_tuner_best_x"], 2.5);
        assert_eq!(m["daos_span_sample_ns_count"], 3.0);
        assert_eq!(m["daos_span_sample_ns_sum"], 200.0);
        assert_eq!(m["daos_span_sample_ns_bucket{le=\"0\"}"], 1.0);
        // 100 lands in [64,128) → le="128"; cumulative includes the zero.
        assert_eq!(m["daos_span_sample_ns_bucket{le=\"128\"}"], 3.0);
        assert_eq!(m["daos_span_sample_ns_bucket{le=\"+Inf\"}"], 3.0);
        assert_eq!(m["daos_obs_seq"], 1.0);
    }

    #[test]
    fn tenant_counters_fold_into_label_families() {
        let mut reg = Registry::new();
        reg.counter_add("tenant.t0.rss_bytes", 1024);
        reg.counter_add("tenant.t1.rss_bytes", 2048);
        reg.counter_add("tenant.t1.nr_processes", 7);
        reg.counter_add("fleet.nr_processes", 14);
        let snap = ObsSnapshot { seq: 2, registry: reg, ..Default::default() };
        let m = sample_map(&render(&snap));
        assert_eq!(m["daos_tenant_rss_bytes{tenant=\"t0\"}"], 1024.0);
        assert_eq!(m["daos_tenant_rss_bytes{tenant=\"t1\"}"], 2048.0);
        assert_eq!(m["daos_tenant_nr_processes{tenant=\"t1\"}"], 7.0);
        assert_eq!(m["daos_fleet_nr_processes"], 14.0, "fleet totals stay plain");
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 3, 90, 5000, u64::MAX] {
            h.record(v);
        }
        let mut out = String::new();
        hist_lines(&mut out, "daos_h", &h);
        let samples = parse_exposition(&out).unwrap();
        let mut last = -1.0f64;
        let mut last_cum = 0.0;
        for s in samples.iter().filter(|s| s.name == "daos_h_bucket") {
            let le = match s.labels[0].1.as_str() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap(),
            };
            assert!(le > last, "le bounds ascend: {out}");
            assert!(s.value >= last_cum, "bucket counts are cumulative");
            last = le;
            last_cum = s.value;
        }
        assert_eq!(last, f64::INFINITY);
        assert_eq!(last_cum, 6.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("daos_x 1\n\ndaos_y 2").is_err(), "blank line");
        assert!(parse_exposition("# a comment").is_err(), "non-HELP/TYPE comment");
        assert!(parse_exposition("# TYPE daos_x sparkline").is_err(), "unknown type");
        assert!(parse_exposition("daos_x{le=\"1\" 3").is_err(), "unclosed labels");
        assert!(parse_exposition("daos_x one").is_err(), "bad value");
        assert!(parse_exposition("3daos_x 1").is_err(), "name starts with digit");
        assert!(parse_exposition("daos_x 1").is_ok());
    }

    #[test]
    fn empty_snapshot_still_renders_valid_text() {
        let text = render(&ObsSnapshot::default());
        let samples = parse_exposition(&text).unwrap();
        assert!(samples.iter().any(|s| s.name == "daos_obs_seq" && s.value == 0.0));
    }
}
