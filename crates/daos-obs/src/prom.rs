//! Prometheus text exposition (format 0.0.4) rendered from an
//! [`ObsSnapshot`], plus a strict line parser used by the tests and the
//! verify smoke to assert the output really is well-formed.
//!
//! Mapping from registry keys:
//! - dotted keys become `daos_`-prefixed underscore names
//!   (`monitor.work_ns` → `daos_monitor_work_ns`);
//! - keyed prefixes collapse into one family per field with a label:
//!   `scheme.<i>.<field>` → `daos_scheme_<field>{scheme="i"}`,
//!   `tenant.<t>.<field>` → `daos_tenant_<field>{tenant="t"}`, and the
//!   server's own `obs.http.<ep>.<field>` →
//!   `daos_obs_http_<field>{endpoint="ep"}`;
//! - log2 histograms render as native Prometheus histograms with
//!   power-of-two `le` bounds plus `_sum`/`_count`;
//! - label values are escaped per the exposition rules (`\\`, `\"`,
//!   `\n`) and [`parse_exposition`] unescapes them, so hostile tenant
//!   names round-trip.

use crate::snapshot::ObsSnapshot;
use daos_trace::{Histogram, Registry};
use std::collections::BTreeMap;

/// Mangle a dotted registry key into a Prometheus metric name.
fn mangle(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 5);
    out.push_str("daos_");
    for c in key.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escape a label value per the 0.0.4 exposition rules: backslash,
/// double quote, and line feed.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Emit the sample lines of one histogram. `label` is an optional extra
/// label pair rendered on every line (the family header is the caller's
/// job when labelled histograms share a family).
fn hist_samples(out: &mut String, name: &str, label: Option<(&str, &str)>, h: &Histogram) {
    let extra = match label {
        Some((k, v)) => format!("{k}=\"{}\",", escape_label(v)),
        None => String::new(),
    };
    let plain = match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        None => String::new(),
    };
    let mut cum = 0u64;
    for (bucket, count) in h.nonzero_buckets() {
        cum += count;
        // Bucket 0 holds zeros; bucket i >= 1 holds [2^(i-1), 2^i).
        let le = if bucket == 0 { 0u128 } else { 1u128 << bucket };
        out.push_str(&format!("{name}_bucket{{{extra}le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{{extra}le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum{plain} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{plain} {}\n", h.count()));
}

fn hist_lines(out: &mut String, name: &str, h: &Histogram) {
    family(out, name, "histogram", "log2-bucketed duration/size distribution");
    hist_samples(out, name, None, h);
}

/// Key prefixes that collapse into labelled families, as
/// `(key prefix, label name)`: `scheme.<i>.*`, `tenant.<t>.*` (the
/// fleet engine's per-tenant aggregates), `obs.http.<ep>.*` (the obs
/// server's per-endpoint self-telemetry), and `alert.<rule>.*` (the
/// alert engine's per-rule state/transition metrics).
const LABELLED_PREFIXES: [(&str, &str); 4] = [
    ("scheme", "scheme"),
    ("tenant", "tenant"),
    ("obs.http", "endpoint"),
    ("alert", "rule"),
];

/// Split `key` on the first matching labelled prefix into
/// `(prefix, label name, label value, field)`.
fn split_labelled(key: &str) -> Option<(&str, &str, &str, &str)> {
    LABELLED_PREFIXES.iter().find_map(|(prefix, label)| {
        key.strip_prefix(prefix)
            .and_then(|rest| rest.strip_prefix('.'))
            .and_then(|rest| rest.split_once('.'))
            .map(|(value, field)| (*prefix, *label, value, field))
    })
}

/// Render the registry part of the exposition into `out`.
fn render_registry(out: &mut String, reg: &Registry) {
    // Counters: keyed prefixes collapse into labelled families.
    let mut labelled: BTreeMap<(&str, &str, &str), Vec<(&str, u64)>> = BTreeMap::new();
    let mut plain: Vec<(&str, u64)> = Vec::new();
    for (key, value) in reg.counters() {
        match split_labelled(key) {
            Some((prefix, label, idx, field)) => {
                labelled.entry((prefix, label, field)).or_default().push((idx, value))
            }
            None => plain.push((key, value)),
        }
    }
    for (key, value) in plain {
        let name = mangle(key);
        family(out, &name, "counter", &format!("daos-trace counter {key}"));
        out.push_str(&format!("{name} {value}\n"));
    }
    for ((prefix, label, field), entries) in labelled {
        let name = mangle(&format!("{prefix}.{field}"));
        family(
            out,
            &name,
            "counter",
            &format!("per-{label} counter {prefix}.<{label}>.{field}"),
        );
        for (idx, value) in entries {
            out.push_str(&format!("{name}{{{label}=\"{}\"}} {value}\n", escape_label(idx)));
        }
    }
    // Gauges fold the same way (`alert.<rule>.state` is the labelled
    // customer; historical plain gauges are untouched by the fold).
    let mut labelled_gauges: BTreeMap<(&str, &str, &str), Vec<(&str, f64)>> = BTreeMap::new();
    let mut plain_gauges: Vec<(&str, f64)> = Vec::new();
    for (key, value) in reg.gauges() {
        match split_labelled(key) {
            Some((prefix, label, idx, field)) => {
                labelled_gauges.entry((prefix, label, field)).or_default().push((idx, value))
            }
            None => plain_gauges.push((key, value)),
        }
    }
    for (key, value) in plain_gauges {
        let name = mangle(key);
        family(out, &name, "gauge", &format!("daos-trace gauge {key}"));
        out.push_str(&format!("{name} {value}\n"));
    }
    for ((prefix, label, field), entries) in labelled_gauges {
        let name = mangle(&format!("{prefix}.{field}"));
        family(
            out,
            &name,
            "gauge",
            &format!("per-{label} gauge {prefix}.<{label}>.{field}"),
        );
        for (idx, value) in entries {
            out.push_str(&format!("{name}{{{label}=\"{}\"}} {value}\n", escape_label(idx)));
        }
    }
    // Histograms fold the same way; labelled ones share one family
    // header per (prefix, field) with the label on every sample line.
    let mut labelled_hists: BTreeMap<(&str, &str, &str), Vec<(&str, &Histogram)>> =
        BTreeMap::new();
    for (key, h) in reg.hists() {
        match split_labelled(key) {
            Some((prefix, label, idx, field)) => {
                labelled_hists.entry((prefix, label, field)).or_default().push((idx, h))
            }
            None => hist_lines(out, &mangle(key), h),
        }
    }
    for ((prefix, label, field), entries) in labelled_hists {
        let name = mangle(&format!("{prefix}.{field}"));
        family(
            out,
            &name,
            "histogram",
            &format!("per-{label} log2 histogram {prefix}.<{label}>.{field}"),
        );
        for (idx, h) in entries {
            hist_samples(out, &name, Some((label, idx)), h);
        }
    }
}

/// The exposition-style series key for one registry entry: the mangled
/// family name, plus the folded label for keyed prefixes — exactly the
/// `Sample::key()` a scrape of `/metrics` would yield, so history
/// series names and scraped names agree.
fn series_key(key: &str, suffix: &str) -> String {
    match split_labelled(key) {
        Some((prefix, label, value, field)) => format!(
            "{}{suffix}{{{label}=\"{}\"}}",
            mangle(&format!("{prefix}.{field}")),
            escape_label(value)
        ),
        None => format!("{}{suffix}", mangle(key)),
    }
}

/// Flatten a registry into `(series key, value)` pairs — counters and
/// gauges verbatim, histograms as their `_p50`/`_p99` percentiles —
/// using the same name mangling and label folding as the exposition.
/// This is what the metric history records on every publish.
pub fn flatten_registry(reg: &Registry) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (key, value) in reg.counters() {
        out.push((series_key(key, ""), value as f64));
    }
    for (key, value) in reg.gauges() {
        out.push((series_key(key, ""), value));
    }
    for (key, h) in reg.hists() {
        out.push((series_key(key, "_p50"), h.percentile(50.0) as f64));
        out.push((series_key(key, "_p99"), h.percentile(99.0) as f64));
    }
    out
}

/// Render the full `/metrics` exposition for one snapshot.
pub fn render(snap: &ObsSnapshot) -> String {
    render_with(snap, None)
}

/// Render the `/metrics` exposition for one snapshot, with an optional
/// extra registry (the obs server's self-telemetry) merged in so both
/// appear as one well-formed exposition with no duplicate families.
pub fn render_with(snap: &ObsSnapshot, extra: Option<&Registry>) -> String {
    let mut out = String::new();
    let gauges: [(&str, &str, u64); 6] = [
        ("daos_obs_seq", "snapshot publish sequence number", snap.seq),
        ("daos_obs_epoch", "last completed epoch (0-based)", snap.epoch),
        ("daos_obs_nr_epochs", "total epochs this run executes", snap.nr_epochs),
        ("daos_obs_now_ns", "virtual clock at publish time", snap.now_ns),
        ("daos_obs_wss_bytes", "working-set estimate of the last window", snap.wss_bytes),
        ("daos_obs_finished", "1 once the run has completed", snap.finished as u64),
    ];
    for (name, help, value) in gauges {
        family(&mut out, name, "gauge", help);
        out.push_str(&format!("{name} {value}\n"));
    }
    family(
        &mut out,
        "daos_obs_dropped_events",
        "counter",
        "events the trace ring overwrote",
    );
    out.push_str(&format!("daos_obs_dropped_events {}\n", snap.dropped_events));
    match extra {
        None => render_registry(&mut out, &snap.registry),
        Some(reg) => {
            let mut merged = snap.registry.clone();
            merged.merge(reg);
            render_registry(&mut out, &merged);
        }
    }
    out
}

/// One parsed sample line: metric name, sorted label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs with escape sequences decoded.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// `name{k="v",...}` rendering (values re-escaped) for map keys in
    /// tests — matches the exposition line the sample came from.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Parse one `k="v",...` label body, decoding `\\`, `\"`, and `\n`
/// escapes, so quoted values may contain commas and equals signs.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, &'static str> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("label without =");
        }
        if chars.next() != Some('"') {
            return Err("unquoted label value");
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err("bad escape in label value"),
                },
                _ => value.push(c),
            }
        }
        if !closed {
            return Err("unterminated label value");
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(_) => return Err("junk after label value"),
        }
    }
}

/// Strictly parse a text exposition: every line must be `# HELP name ...`,
/// `# TYPE name counter|gauge|histogram`, or `name[{labels}] value`.
/// Returns the samples, or a message naming the first offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if line.is_empty() {
            return Err(err("blank line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            let kind = words.next().unwrap_or_default();
            let name = words.next().unwrap_or_default();
            if !matches!(kind, "HELP" | "TYPE") {
                return Err(err("comment is neither HELP nor TYPE"));
            }
            if name.is_empty() || !valid_name(name) {
                return Err(err("bad metric name in comment"));
            }
            if kind == "TYPE"
                && !matches!(words.next(), Some("counter" | "gauge" | "histogram"))
            {
                return Err(err("unknown TYPE"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(err("comment without HELP/TYPE"));
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample line has no value"))?;
        let value: f64 = value.parse().map_err(|_| err("unparseable value"))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| err("unclosed label set"))?;
                (name.to_string(), parse_labels(body).map_err(|e| err(e))?)
            }
        };
        if !valid_name(&name) {
            return Err(err("bad metric name"));
        }
        samples.push(Sample { name, labels, value });
    }
    Ok(samples)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map(text: &str) -> BTreeMap<String, f64> {
        parse_exposition(text)
            .unwrap()
            .into_iter()
            .map(|s| (s.key(), s.value))
            .collect()
    }

    #[test]
    fn registry_renders_and_reparses() {
        let mut reg = Registry::new();
        reg.counter_add("monitor.work_ns", 480);
        reg.counter_add("scheme.0.nr_applied", 3);
        reg.counter_add("scheme.1.nr_applied", 5);
        reg.gauge_set("tuner.best_x", 2.5);
        reg.hist_record("span.sample_ns", 0);
        reg.hist_record("span.sample_ns", 100);
        reg.hist_record("span.sample_ns", 100);
        let snap = ObsSnapshot { seq: 1, registry: reg, ..Default::default() };
        let text = render(&snap);
        let m = sample_map(&text);
        assert_eq!(m["daos_monitor_work_ns"], 480.0);
        assert_eq!(m["daos_scheme_nr_applied{scheme=\"0\"}"], 3.0);
        assert_eq!(m["daos_scheme_nr_applied{scheme=\"1\"}"], 5.0);
        assert_eq!(m["daos_tuner_best_x"], 2.5);
        assert_eq!(m["daos_span_sample_ns_count"], 3.0);
        assert_eq!(m["daos_span_sample_ns_sum"], 200.0);
        assert_eq!(m["daos_span_sample_ns_bucket{le=\"0\"}"], 1.0);
        // 100 lands in [64,128) → le="128"; cumulative includes the zero.
        assert_eq!(m["daos_span_sample_ns_bucket{le=\"128\"}"], 3.0);
        assert_eq!(m["daos_span_sample_ns_bucket{le=\"+Inf\"}"], 3.0);
        assert_eq!(m["daos_obs_seq"], 1.0);
    }

    #[test]
    fn tenant_counters_fold_into_label_families() {
        let mut reg = Registry::new();
        reg.counter_add("tenant.t0.rss_bytes", 1024);
        reg.counter_add("tenant.t1.rss_bytes", 2048);
        reg.counter_add("tenant.t1.nr_processes", 7);
        reg.counter_add("fleet.nr_processes", 14);
        let snap = ObsSnapshot { seq: 2, registry: reg, ..Default::default() };
        let m = sample_map(&render(&snap));
        assert_eq!(m["daos_tenant_rss_bytes{tenant=\"t0\"}"], 1024.0);
        assert_eq!(m["daos_tenant_rss_bytes{tenant=\"t1\"}"], 2048.0);
        assert_eq!(m["daos_tenant_nr_processes{tenant=\"t1\"}"], 7.0);
        assert_eq!(m["daos_fleet_nr_processes"], 14.0, "fleet totals stay plain");
    }

    #[test]
    fn obs_http_keys_fold_counters_and_histograms_by_endpoint() {
        let mut reg = Registry::new();
        reg.counter_add("obs.http.metrics.requests_total", 9);
        reg.counter_add("obs.http.snapshot.requests_total", 4);
        reg.hist_record("obs.http.metrics.request_ns", 100);
        reg.hist_record("obs.http.metrics.request_ns", 100);
        reg.hist_record("obs.http.snapshot.request_ns", 3000);
        reg.counter_add("obs.server.accepted_total", 5);
        let snap = ObsSnapshot { registry: reg, ..Default::default() };
        let text = render(&snap);
        let m = sample_map(&text);
        assert_eq!(m["daos_obs_http_requests_total{endpoint=\"metrics\"}"], 9.0);
        assert_eq!(m["daos_obs_http_requests_total{endpoint=\"snapshot\"}"], 4.0);
        assert_eq!(m["daos_obs_http_request_ns_count{endpoint=\"metrics\"}"], 2.0);
        assert_eq!(m["daos_obs_http_request_ns_sum{endpoint=\"snapshot\"}"], 3000.0);
        assert_eq!(
            m["daos_obs_http_request_ns_bucket{endpoint=\"metrics\",le=\"128\"}"],
            2.0
        );
        assert_eq!(m["daos_obs_server_accepted_total"], 5.0, "obs.server.* stays plain");
        // One family header even with two labelled endpoint histograms.
        assert_eq!(text.matches("# TYPE daos_obs_http_request_ns histogram").count(), 1);
    }

    #[test]
    fn render_with_merges_the_server_registry() {
        let mut reg = Registry::new();
        reg.counter_add("monitor.work_ns", 7);
        let snap = ObsSnapshot { registry: reg, ..Default::default() };
        let mut server = Registry::new();
        server.counter_add("obs.http.metrics.requests_total", 2);
        server.gauge_set("obs.server.in_flight", 1.0);
        let m = sample_map(&render_with(&snap, Some(&server)));
        assert_eq!(m["daos_monitor_work_ns"], 7.0);
        assert_eq!(m["daos_obs_http_requests_total{endpoint=\"metrics\"}"], 2.0);
        assert_eq!(m["daos_obs_server_in_flight"], 1.0);
    }

    #[test]
    fn hostile_label_values_escape_and_round_trip() {
        let hostile = "t\"0\\prod\nline2";
        let mut reg = Registry::new();
        reg.counter_add(&format!("tenant.{hostile}.rss_bytes"), 512);
        let snap = ObsSnapshot { registry: reg, ..Default::default() };
        let text = render(&snap);
        assert!(
            text.contains(r#"{tenant="t\"0\\prod\nline2"}"#),
            "escapes rendered: {text}"
        );
        assert!(!text.contains("prod\nline2"), "no raw newline leaks into the line");
        let samples = parse_exposition(&text).unwrap();
        let s = samples
            .iter()
            .find(|s| s.name == "daos_tenant_rss_bytes")
            .expect("family present");
        assert_eq!(s.labels, vec![("tenant".to_string(), hostile.to_string())]);
        assert_eq!(s.value, 512.0);
    }

    #[test]
    fn label_parser_handles_quoted_commas_and_rejects_junk() {
        let ok = parse_labels(r#"a="x,y=z",b="2""#).unwrap();
        assert_eq!(
            ok,
            vec![("a".into(), "x,y=z".into()), ("b".into(), "2".into())]
        );
        assert!(parse_labels(r#"a="unterminated"#).is_err());
        assert!(parse_labels(r#"a="bad\q""#).is_err(), "unknown escape");
        assert!(parse_labels(r#"a="x"junk"#).is_err());
        assert!(parse_labels(r#"="x""#).is_err(), "empty label name");
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 3, 90, 5000, u64::MAX] {
            h.record(v);
        }
        let mut out = String::new();
        hist_lines(&mut out, "daos_h", &h);
        let samples = parse_exposition(&out).unwrap();
        let mut last = -1.0f64;
        let mut last_cum = 0.0;
        for s in samples.iter().filter(|s| s.name == "daos_h_bucket") {
            let le = match s.labels[0].1.as_str() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap(),
            };
            assert!(le > last, "le bounds ascend: {out}");
            assert!(s.value >= last_cum, "bucket counts are cumulative");
            last = le;
            last_cum = s.value;
        }
        assert_eq!(last, f64::INFINITY);
        assert_eq!(last_cum, 6.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("daos_x 1\n\ndaos_y 2").is_err(), "blank line");
        assert!(parse_exposition("# a comment").is_err(), "non-HELP/TYPE comment");
        assert!(parse_exposition("# TYPE daos_x sparkline").is_err(), "unknown type");
        assert!(parse_exposition("daos_x{le=\"1\" 3").is_err(), "unclosed labels");
        assert!(parse_exposition("daos_x one").is_err(), "bad value");
        assert!(parse_exposition("3daos_x 1").is_err(), "name starts with digit");
        assert!(parse_exposition("daos_x 1").is_ok());
    }

    #[test]
    fn alert_gauges_fold_into_rule_label_families() {
        let mut reg = Registry::new();
        reg.gauge_set("alert.trace_ring_drop_rate.state", 2.0);
        reg.gauge_set("alert.obs_http_503_rate.state", 0.0);
        reg.counter_add("alert.trace_ring_drop_rate.transitions_total", 3);
        reg.gauge_set("tuner.best_x", 1.5);
        let snap = ObsSnapshot { registry: reg, ..Default::default() };
        let text = render(&snap);
        let m = sample_map(&text);
        assert_eq!(m["daos_alert_state{rule=\"trace_ring_drop_rate\"}"], 2.0);
        assert_eq!(m["daos_alert_state{rule=\"obs_http_503_rate\"}"], 0.0);
        assert_eq!(m["daos_alert_transitions_total{rule=\"trace_ring_drop_rate\"}"], 3.0);
        assert_eq!(m["daos_tuner_best_x"], 1.5, "plain gauges stay plain");
        // One family header even with two labelled rule gauges.
        assert_eq!(text.matches("# TYPE daos_alert_state gauge").count(), 1);
    }

    #[test]
    fn flatten_registry_matches_exposition_keys() {
        let mut reg = Registry::new();
        reg.counter_add("monitor.work_ns", 480);
        reg.counter_add("tenant.t3.rss_bytes", 2048);
        reg.gauge_set("alert.r0.state", 1.0);
        reg.hist_record("span.sample_ns", 100);
        reg.hist_record("span.sample_ns", 300);
        let flat: BTreeMap<String, f64> = flatten_registry(&reg).into_iter().collect();
        assert_eq!(flat["daos_monitor_work_ns"], 480.0);
        assert_eq!(flat["daos_tenant_rss_bytes{tenant=\"t3\"}"], 2048.0);
        assert_eq!(flat["daos_alert_state{rule=\"r0\"}"], 1.0);
        // Histograms flatten to their percentiles.
        assert!(flat.contains_key("daos_span_sample_ns_p50"));
        assert!(flat.contains_key("daos_span_sample_ns_p99"));
        let h = reg.hist("span.sample_ns").unwrap();
        assert!(flat["daos_span_sample_ns_p50"] >= h.min() as f64);
        assert!(flat["daos_span_sample_ns_p99"] <= h.max() as f64);
        // Every flattened key matches the exposition's Sample::key()
        // space: re-parse a rendered exposition and check membership.
        let snap = ObsSnapshot { registry: reg, ..Default::default() };
        let keys: std::collections::BTreeSet<String> =
            parse_exposition(&render(&snap)).unwrap().iter().map(|s| s.key()).collect();
        for key in flat.keys().filter(|k| !k.contains("_p5") && !k.contains("_p9")) {
            assert!(keys.contains(key.as_str()), "{key} not in exposition");
        }
    }

    #[test]
    fn empty_snapshot_still_renders_valid_text() {
        let text = render(&ObsSnapshot::default());
        let samples = parse_exposition(&text).unwrap();
        assert!(samples.iter().any(|s| s.name == "daos_obs_seq" && s.value == 0.0));
    }
}
