//! The published unit of live observability: everything `daos top` and
//! the HTTP endpoints need about a running simulation, as one owned,
//! JSON-round-trippable value.

use daos_monitor::{Aggregation, OverheadStats};
use daos_schemes::SchemeStats;
use daos_trace::Registry;
use daos_util::json_struct;

/// One published view of a live run. The sim loop builds a fresh
/// snapshot every publish interval and swaps it behind an `Arc`; readers
/// (HTTP handlers, the in-process dashboard) clone the `Arc` and never
/// block the publisher.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Publish sequence number (1-based; 0 = nothing published yet).
    pub seq: u64,
    /// Configuration name (`rec`, `prcl`, ...).
    pub config: String,
    /// Workload path name.
    pub workload: String,
    /// Machine profile name.
    pub machine: String,
    /// Last completed epoch (0-based).
    pub epoch: u64,
    /// Total epochs the run will execute.
    pub nr_epochs: u64,
    /// Virtual clock at publish time.
    pub now_ns: u64,
    /// Working-set-size estimate of the last aggregation window.
    pub wss_bytes: u64,
    /// Peak resident-set size so far.
    pub peak_rss_bytes: u64,
    /// Time-weighted average resident-set size so far.
    pub avg_rss_bytes: u64,
    /// The most recent completed aggregation window (region list).
    pub last_window: Option<Aggregation>,
    /// Per-scheme counters.
    pub schemes: Vec<SchemeStats>,
    /// Monitoring overhead counters (None when nothing monitors).
    pub overhead: Option<OverheadStats>,
    /// Snapshot of the trace metrics registry (empty when the run has no
    /// collector installed).
    pub registry: Registry,
    /// Events the trace ring overwrote so far.
    pub dropped_events: u64,
    /// Whether the run has completed (the final snapshot sets this).
    pub finished: bool,
}

json_struct!(ObsSnapshot {
    seq, config, workload, machine, epoch, nr_epochs, now_ns, wss_bytes,
    peak_rss_bytes, avg_rss_bytes, last_window, schemes, overhead, registry,
    dropped_events, finished,
});

impl Default for ObsSnapshot {
    fn default() -> Self {
        ObsSnapshot {
            seq: 0,
            config: String::new(),
            workload: String::new(),
            machine: String::new(),
            epoch: 0,
            nr_epochs: 0,
            now_ns: 0,
            wss_bytes: 0,
            peak_rss_bytes: 0,
            avg_rss_bytes: 0,
            last_window: None,
            schemes: Vec::new(),
            overhead: None,
            registry: Registry::new(),
            dropped_events: 0,
            finished: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::addr::AddrRange;
    use daos_monitor::RegionInfo;
    use daos_util::json::{FromJson, ToJson};

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut reg = Registry::new();
        reg.counter_add("monitor.work_ns", 1234);
        reg.gauge_set("tuner.best_x", 2.5);
        reg.hist_record("span.sample_ns", 400);
        let snap = ObsSnapshot {
            seq: 7,
            config: "rec".into(),
            workload: "parsec3/freqmine".into(),
            machine: "i3.metal".into(),
            epoch: 41,
            nr_epochs: 100,
            now_ns: 5_000_000_000,
            wss_bytes: 4 << 20,
            peak_rss_bytes: 16 << 20,
            avg_rss_bytes: 12 << 20,
            last_window: Some(Aggregation {
                at: 5_000_000_000,
                regions: vec![RegionInfo {
                    range: AddrRange::new(0x1000, 0x400000),
                    nr_accesses: 12,
                    age: 3,
                }],
                max_nr_accesses: 20,
                aggregation_interval: 100_000_000,
            }),
            schemes: vec![SchemeStats { nr_tried: 5, sz_tried: 1 << 20, ..Default::default() }],
            overhead: Some(OverheadStats { total_checks: 99, ..Default::default() }),
            registry: reg,
            dropped_events: 0,
            finished: false,
        };
        let back = ObsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        let empty = ObsSnapshot::from_json(&ObsSnapshot::default().to_json()).unwrap();
        assert_eq!(empty, ObsSnapshot::default());
    }
}
