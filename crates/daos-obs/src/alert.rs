//! Threshold and rate-of-change alert rules over the metric history.
//!
//! Rules are built with the same builder-validates idiom as
//! `MonitorAttrs` ([`AlertRule::builder`] → fluent setters →
//! [`AlertRuleBuilder::build`] returning a typed [`AlertError`]) and
//! evaluated by the [`AlertEngine`] on every publish. Evaluation has
//! hysteresis: a breach moves a rule to *pending* and it must stay
//! breached for `for_samples` consecutive evaluations before *firing*;
//! a firing rule that stops breaching passes through *resolved* for one
//! evaluation before returning to *ok*, so consumers polling `/alerts`
//! can see that a fire ended even if they missed the firing window.
//!
//! ```text
//!          breach                   breach × for_samples
//!   Ok ────────────▶ Pending ────────────────────────────▶ Firing
//!    ▲                  │ clear                               │ clear
//!    │                  ▼                                     ▼
//!    └──── clear ─── (Ok) ◀─────────── clear ──────────── Resolved
//! ```
//!
//! Every state change is reported as a [`Transition`]; the publisher
//! turns those into `AlertTransition` trace events on `/events` and
//! bumps per-rule counters exported as `daos_alert_*` in `/metrics`.

use daos_util::json::{Json, ToJson};
use std::fmt;

/// Alert rule evaluation states, exported as
/// `daos_alert_state{rule=…}`: 0 = ok, 1 = pending, 2 = firing,
/// 3 = resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The signal is within bounds.
    Ok,
    /// Breached, but not yet for `for_samples` evaluations.
    Pending,
    /// Breached for at least `for_samples` consecutive evaluations.
    Firing,
    /// Was firing; the breach cleared on the latest evaluation.
    Resolved,
}

impl AlertState {
    /// The `/metrics` gauge encoding of the state.
    pub fn as_gauge(self) -> f64 {
        match self {
            AlertState::Ok => 0.0,
            AlertState::Pending => 1.0,
            AlertState::Firing => 2.0,
            AlertState::Resolved => 3.0,
        }
    }

    /// Lowercase state name (used in JSON and the CLI table).
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// How a rule interprets its metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Breach when the raw sample exceeds the threshold.
    Threshold,
    /// Breach when the per-second derivative between consecutive
    /// samples exceeds the threshold. The first sample after engine
    /// start (no predecessor) never breaches.
    RateOfChange,
}

impl AlertKind {
    /// Lowercase kind name (used in JSON and docs).
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Threshold => "threshold",
            AlertKind::RateOfChange => "rate",
        }
    }
}

/// Why an [`AlertRuleBuilder`] configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertError {
    /// The rule name is empty.
    EmptyName,
    /// The rule name has characters outside `[a-z0-9._]` (it becomes a
    /// Prometheus label value and a trace-event field; keep it boring).
    BadName(String),
    /// The watched metric name is empty.
    EmptyMetric,
    /// The threshold is NaN.
    NanThreshold,
    /// `for_samples` is zero (a rule must see at least one breach).
    ZeroForSamples,
}

impl fmt::Display for AlertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertError::EmptyName => write!(f, "rule name must be non-empty"),
            AlertError::BadName(n) => {
                write!(f, "rule name {n:?} must match [a-z0-9._]+")
            }
            AlertError::EmptyMetric => write!(f, "rule metric must be non-empty"),
            AlertError::NanThreshold => write!(f, "threshold must not be NaN"),
            AlertError::ZeroForSamples => write!(f, "for_samples must be >= 1"),
        }
    }
}

impl std::error::Error for AlertError {}

/// One alert rule: watch `metric`, breach per `kind` against
/// `threshold`, fire after `for_samples` consecutive breaches.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, `[a-z0-9._]+` — the `rule=` label on `/metrics`.
    pub name: String,
    /// The flattened series name to watch (e.g. `daos_obs_wss_bytes`).
    pub metric: String,
    /// Threshold or rate-of-change.
    pub kind: AlertKind,
    /// Breach bound (units of the metric, or metric/second for rate).
    pub threshold: f64,
    /// Consecutive breached evaluations before firing (≥ 1).
    pub for_samples: u32,
}

impl AlertRule {
    /// Start building a rule; [`AlertRuleBuilder::build`] validates.
    pub fn builder() -> AlertRuleBuilder {
        AlertRuleBuilder {
            rule: AlertRule {
                name: String::new(),
                metric: String::new(),
                kind: AlertKind::Threshold,
                threshold: 0.0,
                for_samples: 1,
            },
        }
    }

    /// Validate field sanity (see [`AlertError`]).
    pub fn validate(&self) -> Result<(), AlertError> {
        if self.name.is_empty() {
            return Err(AlertError::EmptyName);
        }
        let ok = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_';
        if !self.name.chars().all(ok) {
            return Err(AlertError::BadName(self.name.clone()));
        }
        if self.metric.is_empty() {
            return Err(AlertError::EmptyMetric);
        }
        if self.threshold.is_nan() {
            return Err(AlertError::NanThreshold);
        }
        if self.for_samples == 0 {
            return Err(AlertError::ZeroForSamples);
        }
        Ok(())
    }
}

/// Builder for [`AlertRule`]; [`build`](Self::build) rejects bad
/// combinations with a typed [`AlertError`].
#[derive(Debug, Clone)]
pub struct AlertRuleBuilder {
    rule: AlertRule,
}

impl AlertRuleBuilder {
    /// Rule name (`[a-z0-9._]+`, required).
    pub fn name(mut self, name: &str) -> Self {
        self.rule.name = name.to_string();
        self
    }

    /// Flattened series name to watch (required).
    pub fn metric(mut self, metric: &str) -> Self {
        self.rule.metric = metric.to_string();
        self
    }

    /// Breach when the sample exceeds `bound` (the default kind).
    pub fn threshold(mut self, bound: f64) -> Self {
        self.rule.kind = AlertKind::Threshold;
        self.rule.threshold = bound;
        self
    }

    /// Breach when the per-second rate of change exceeds `bound`.
    pub fn rate_of_change(mut self, bound: f64) -> Self {
        self.rule.kind = AlertKind::RateOfChange;
        self.rule.threshold = bound;
        self
    }

    /// Consecutive breached evaluations before firing (default 1).
    pub fn for_samples(mut self, n: u32) -> Self {
        self.rule.for_samples = n;
        self
    }

    /// Validate and produce the rule.
    pub fn build(self) -> Result<AlertRule, AlertError> {
        self.rule.validate()?;
        Ok(self.rule)
    }
}

/// One state change, produced by [`AlertEngine::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Index of the rule in the engine (stable for a rule set).
    pub rule: u32,
    /// The rule's name.
    pub name: String,
    /// State before the evaluation.
    pub from: AlertState,
    /// State after the evaluation.
    pub to: AlertState,
    /// The signal value that drove the change (raw sample for
    /// threshold rules, per-second rate for rate rules).
    pub value: f64,
    /// Evaluation timestamp (virtual ns).
    pub at: u64,
}

/// Live evaluation state for one rule.
#[derive(Debug, Clone)]
struct RuleState {
    state: AlertState,
    /// Consecutive breached evaluations while pending/firing.
    breached: u32,
    /// Previous `(at, value)` sample, for rate-of-change rules.
    last: Option<(u64, f64)>,
    transitions: u64,
}

/// Point-in-time view of one rule, serialised on `/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// The rule definition.
    pub rule: AlertRule,
    /// Current state.
    pub state: AlertState,
    /// Consecutive breached evaluations.
    pub breached: u32,
    /// Total state transitions since engine start.
    pub transitions: u64,
    /// Last signal value evaluated (None before the first sample).
    pub value: Option<f64>,
}

impl ToJson for AlertStatus {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("rule".into(), Json::Str(self.rule.name.clone())),
            ("metric".into(), Json::Str(self.rule.metric.clone())),
            ("kind".into(), Json::Str(self.rule.kind.name().into())),
            ("threshold".into(), Json::F64(self.rule.threshold)),
            ("for_samples".into(), Json::U64(self.rule.for_samples as u64)),
            ("state".into(), Json::Str(self.state.name().into())),
            ("breached".into(), Json::U64(self.breached as u64)),
            ("transitions".into(), Json::U64(self.transitions)),
            (
                "value".into(),
                match self.value {
                    Some(v) => Json::F64(v),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Evaluates a fixed rule set against each publish's samples.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    values: Vec<Option<f64>>,
}

impl AlertEngine {
    /// An engine with no rules (evaluation is a no-op).
    pub fn new() -> AlertEngine {
        AlertEngine::default()
    }

    /// Append rules to the engine. Existing rule states are kept —
    /// installing more rules never resets running hysteresis.
    pub fn install(&mut self, rules: Vec<AlertRule>) {
        for rule in rules {
            debug_assert!(rule.validate().is_ok(), "install expects built rules");
            self.rules.push(rule);
            self.states.push(RuleState {
                state: AlertState::Ok,
                breached: 0,
                last: None,
                transitions: 0,
            });
            self.values.push(None);
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate every rule against the sample source (`lookup` maps a
    /// series name to its newest value) and return the transitions, in
    /// rule order. Rules whose metric has no sample yet are skipped.
    pub fn evaluate(
        &mut self,
        at: u64,
        lookup: impl Fn(&str) -> Option<f64>,
    ) -> Vec<Transition> {
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let st = &mut self.states[i];
            let Some(sample) = lookup(&rule.metric) else {
                continue;
            };
            // Derive the signal: the sample itself, or its per-second
            // derivative against the previous evaluation's sample.
            let signal = match rule.kind {
                AlertKind::Threshold => Some(sample),
                AlertKind::RateOfChange => st.last.and_then(|(last_at, last_v)| {
                    let dt = at.saturating_sub(last_at);
                    if dt == 0 {
                        None
                    } else {
                        Some((sample - last_v) / (dt as f64 / 1e9))
                    }
                }),
            };
            st.last = Some((at, sample));
            let Some(signal) = signal else {
                continue;
            };
            self.values[i] = Some(signal);
            let breach = signal > rule.threshold;
            let next = match (st.state, breach) {
                (AlertState::Ok, true) | (AlertState::Resolved, true) => {
                    st.breached = 1;
                    if st.breached >= rule.for_samples {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                (AlertState::Pending, true) => {
                    st.breached += 1;
                    if st.breached >= rule.for_samples {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                (AlertState::Firing, true) => {
                    st.breached += 1;
                    AlertState::Firing
                }
                (AlertState::Pending, false) => {
                    st.breached = 0;
                    AlertState::Ok
                }
                (AlertState::Firing, false) => {
                    st.breached = 0;
                    AlertState::Resolved
                }
                (AlertState::Resolved, false) | (AlertState::Ok, false) => {
                    st.breached = 0;
                    AlertState::Ok
                }
            };
            if next != st.state {
                st.transitions += 1;
                out.push(Transition {
                    rule: i as u32,
                    name: rule.name.clone(),
                    from: st.state,
                    to: next,
                    value: signal,
                    at,
                });
                st.state = next;
            }
        }
        out
    }

    /// Point-in-time view of every rule, in install order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, rule)| AlertStatus {
                rule: rule.clone(),
                state: self.states[i].state,
                breached: self.states[i].breached,
                transitions: self.states[i].transitions,
                value: self.values[i],
            })
            .collect()
    }
}

/// The default rule set `EpochPublisher`/`FleetPublisher` install:
///
/// * `trace_ring_drop_rate` — the trace ring is dropping events
///   (rate of `daos_obs_dropped_events` > 0/s, 2 samples);
/// * `monitor_overhead_permille` — monitoring overhead exceeds 5% of
///   runtime (`daos_obs_monitor_share_permille` > 50, 3 samples);
/// * `obs_http_503_rate` — the obs server is shedding load
///   (rate of `daos_obs_server_rejected_total` > 0/s, 2 samples).
pub fn default_rules() -> Vec<AlertRule> {
    // lint: allow(panic, the literals below are statically valid rules)
    vec![
        AlertRule::builder()
            .name("trace_ring_drop_rate")
            .metric("daos_obs_dropped_events")
            .rate_of_change(0.0)
            .for_samples(2)
            .build()
            .expect("static rule"), // lint: allow(panic, literal rule is statically valid)
        AlertRule::builder()
            .name("monitor_overhead_permille")
            .metric("daos_obs_monitor_share_permille")
            .threshold(50.0)
            .for_samples(3)
            .build()
            .expect("static rule"), // lint: allow(panic, literal rule is statically valid)
        AlertRule::builder()
            .name("obs_http_503_rate")
            .metric("daos_obs_server_rejected_total")
            .rate_of_change(0.0)
            .for_samples(2)
            .build()
            .expect("static rule"), // lint: allow(panic, literal rule is statically valid)
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(for_samples: u32) -> AlertRule {
        AlertRule::builder()
            .name("r")
            .metric("m")
            .threshold(10.0)
            .for_samples(for_samples)
            .build()
            .unwrap()
    }

    fn eval(e: &mut AlertEngine, at: u64, v: f64) -> Vec<(AlertState, AlertState)> {
        e.evaluate(at, |m| (m == "m").then_some(v))
            .into_iter()
            .map(|t| (t.from, t.to))
            .collect()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(AlertRule::builder().build().unwrap_err(), AlertError::EmptyName);
        assert_eq!(
            AlertRule::builder().name("Bad Name").metric("m").build().unwrap_err(),
            AlertError::BadName("Bad Name".into())
        );
        assert_eq!(
            AlertRule::builder().name("r").build().unwrap_err(),
            AlertError::EmptyMetric
        );
        assert_eq!(
            AlertRule::builder().name("r").metric("m").threshold(f64::NAN).build().unwrap_err(),
            AlertError::NanThreshold
        );
        assert_eq!(
            AlertRule::builder().name("r").metric("m").for_samples(0).build().unwrap_err(),
            AlertError::ZeroForSamples
        );
        let r = AlertRule::builder().name("r.x_1").metric("m").rate_of_change(2.5).build().unwrap();
        assert_eq!(r.kind, AlertKind::RateOfChange);
        assert_eq!(r.threshold, 2.5);
        assert!(r.to_owned().validate().is_ok());
        assert!(AlertError::BadName("Bad".into()).to_string().contains("a-z0-9"));
    }

    #[test]
    fn hysteresis_walks_pending_firing_resolved() {
        let mut e = AlertEngine::new();
        e.install(vec![rule(3)]);
        assert!(eval(&mut e, 1, 5.0).is_empty(), "no breach, no transition");
        assert_eq!(eval(&mut e, 2, 20.0), vec![(AlertState::Ok, AlertState::Pending)]);
        assert!(eval(&mut e, 3, 20.0).is_empty(), "still pending (2 of 3)");
        assert_eq!(eval(&mut e, 4, 20.0), vec![(AlertState::Pending, AlertState::Firing)]);
        assert!(eval(&mut e, 5, 20.0).is_empty(), "stays firing");
        assert_eq!(eval(&mut e, 6, 5.0), vec![(AlertState::Firing, AlertState::Resolved)]);
        assert_eq!(eval(&mut e, 7, 5.0), vec![(AlertState::Resolved, AlertState::Ok)]);
        let s = &e.statuses()[0];
        assert_eq!(s.state, AlertState::Ok);
        assert_eq!(s.transitions, 4);
        assert_eq!(s.value, Some(5.0));
    }

    #[test]
    fn pending_clears_straight_to_ok() {
        let mut e = AlertEngine::new();
        e.install(vec![rule(3)]);
        eval(&mut e, 1, 20.0);
        assert_eq!(eval(&mut e, 2, 5.0), vec![(AlertState::Pending, AlertState::Ok)]);
    }

    #[test]
    fn for_samples_one_fires_immediately_and_rebreach_from_resolved() {
        let mut e = AlertEngine::new();
        e.install(vec![rule(1)]);
        assert_eq!(eval(&mut e, 1, 20.0), vec![(AlertState::Ok, AlertState::Firing)]);
        assert_eq!(eval(&mut e, 2, 5.0), vec![(AlertState::Firing, AlertState::Resolved)]);
        // A breach during the resolved grace step re-fires immediately.
        assert_eq!(eval(&mut e, 3, 20.0), vec![(AlertState::Resolved, AlertState::Firing)]);
    }

    #[test]
    fn rate_rule_needs_two_samples_and_divides_by_seconds() {
        let mut e = AlertEngine::new();
        e.install(vec![AlertRule::builder()
            .name("r")
            .metric("m")
            .rate_of_change(5.0)
            .for_samples(1)
            .build()
            .unwrap()]);
        // First sample: no predecessor, no signal, no transition.
        assert!(eval(&mut e, 1_000_000_000, 100.0).is_empty());
        // +20 over 2s = 10/s > 5/s → firing, with the rate as value.
        let t = e.evaluate(3_000_000_000, |_| Some(120.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        assert!((t[0].value - 10.0).abs() < 1e-9);
        // Flat signal → 0/s → resolved.
        assert_eq!(
            eval(&mut e, 4_000_000_000, 120.0),
            vec![(AlertState::Firing, AlertState::Resolved)]
        );
        // Same-timestamp sample: skipped, state unchanged.
        assert!(eval(&mut e, 4_000_000_000, 500.0).is_empty());
    }

    #[test]
    fn missing_metric_skips_without_resetting() {
        let mut e = AlertEngine::new();
        e.install(vec![rule(2)]);
        eval(&mut e, 1, 20.0); // pending, breached=1
        assert!(e.evaluate(2, |_| None).is_empty());
        // Next breach continues the streak rather than restarting it.
        assert_eq!(eval(&mut e, 3, 20.0), vec![(AlertState::Pending, AlertState::Firing)]);
    }

    #[test]
    fn default_rules_are_valid_and_named() {
        let rules = default_rules();
        assert_eq!(rules.len(), 3);
        for r in &rules {
            assert!(r.validate().is_ok());
        }
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["trace_ring_drop_rate", "monitor_overhead_permille", "obs_http_503_rate"]
        );
    }

    #[test]
    fn status_serialises_to_json() {
        let mut e = AlertEngine::new();
        e.install(default_rules());
        let j = Json::Array(e.statuses().iter().map(|s| s.to_json()).collect());
        let text = j.to_string_compact();
        assert!(text.contains("\"trace_ring_drop_rate\""));
        assert!(text.contains("\"state\":\"ok\""));
        assert!(text.contains("\"value\":null"));
    }
}
