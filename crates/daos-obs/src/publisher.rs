//! The shared-state publisher: the simulation thread periodically swaps
//! a fresh [`ObsSnapshot`] behind an `Arc` and appends the trace ring's
//! newest events to a bounded tail; server threads and the in-process
//! dashboard read both without ever blocking the sim loop for more than
//! a pointer swap.

use crate::snapshot::ObsSnapshot;
use daos::{FleetObserver, FleetProgress, FleetSummary, RunObserver, RunProgress, RunResult, TenantStats};
use daos_trace::{Registry, Ring, TimedEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default bound on the live event tail (events). 8Ki timed events is a
/// few hundred KiB — enough for a dashboard's "recent activity" view
/// without letting a slow subscriber pin the whole run in memory.
pub const DEFAULT_TAIL_CAPACITY: usize = 8 * 1024;

/// Bounded live tail of the trace ring, with global sequence numbers so
/// each `/events` subscriber keeps its own cursor.
struct Tail {
    events: VecDeque<TimedEvent>,
    /// Global sequence number of `events.front()`.
    first_seq: u64,
    /// Ring events accounted for so far (`Ring::total_pushed` at the
    /// last sync).
    seen: u64,
    /// Events lost to subscribers: ring overwrites between syncs plus
    /// tail evictions.
    missed: u64,
    cap: usize,
}

struct Shared {
    snap: RwLock<Arc<ObsSnapshot>>,
    tail: Mutex<Tail>,
    finished: AtomicBool,
}

/// Handle to the shared observability state. Clones are cheap and all
/// refer to the same state; the sim side calls [`publish`](Self::publish)
/// / [`sync_ring`](Self::sync_ring), readers call
/// [`snapshot`](Self::snapshot) / [`events_since`](Self::events_since).
#[derive(Clone)]
pub struct Publisher {
    shared: Arc<Shared>,
}

impl Default for Publisher {
    fn default() -> Self {
        Self::new()
    }
}

impl Publisher {
    /// A publisher with an empty snapshot and the default tail bound.
    pub fn new() -> Publisher {
        Self::with_tail_capacity(DEFAULT_TAIL_CAPACITY)
    }

    /// A publisher whose event tail holds at most `cap` events.
    pub fn with_tail_capacity(cap: usize) -> Publisher {
        Publisher {
            shared: Arc::new(Shared {
                snap: RwLock::new(Arc::new(ObsSnapshot::default())),
                tail: Mutex::new(Tail {
                    events: VecDeque::new(),
                    first_seq: 0,
                    seen: 0,
                    missed: 0,
                    cap: cap.max(1),
                }),
                finished: AtomicBool::new(false),
            }),
        }
    }

    /// Swap in a new snapshot (the Arc-swap: readers holding the old
    /// `Arc` keep a consistent view, new readers see the new one).
    pub fn publish(&self, snap: ObsSnapshot) {
        // A panicking publisher poisons the lock; the snapshot is a
        // whole-Arc swap, so the stored value is always consistent and
        // poison recovery is safe.
        *self
            .shared
            .snap
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Arc::new(snap);
    }

    /// The current snapshot (cheap: one `Arc` clone under a read lock).
    pub fn snapshot(&self) -> Arc<ObsSnapshot> {
        self.shared
            .snap
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Pull the ring's events-since-last-sync into the shared tail. Only
    /// the new suffix is copied, so the cost is proportional to emission
    /// rate, not ring size.
    pub fn sync_ring(&self, ring: &Ring) {
        // Tail bookkeeping is updated field-by-field, but every exit
        // path leaves it internally consistent (worst case: events the
        // poisoned sync already counted re-sync as missed), so poison
        // recovery beats taking the whole server down.
        let mut tail = self
            .shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let total = ring.total_pushed();
        let new = total.saturating_sub(tail.seen);
        if new == 0 {
            return;
        }
        // Events the ring already overwrote before we got here are gone.
        let take = (new as usize).min(ring.len());
        tail.missed += new - take as u64;
        for ev in ring.tail(take) {
            if tail.events.len() == tail.cap {
                tail.events.pop_front();
                tail.first_seq += 1;
                tail.missed += 1;
            }
            tail.events.push_back(ev);
        }
        tail.seen = total;
    }

    /// Events with global sequence numbers `>= cursor`, plus the cursor
    /// to pass next time. A subscriber starting at 0 gets the whole
    /// surviving tail.
    pub fn events_since(&self, cursor: u64) -> (Vec<TimedEvent>, u64) {
        let tail = self
            .shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = tail.first_seq + tail.events.len() as u64;
        let start = cursor.max(tail.first_seq);
        let skip = (start - tail.first_seq) as usize;
        (tail.events.iter().skip(skip).copied().collect(), next)
    }

    /// Number of events currently buffered in the tail (the `/statusz`
    /// view of how full the bounded tail is).
    pub fn tail_len(&self) -> usize {
        self.shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .len()
    }

    /// Events that never reached the tail (ring overwrites between syncs
    /// plus tail evictions).
    pub fn missed_events(&self) -> u64 {
        self.shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .missed
    }

    /// Mark the run complete: `/events` streams terminate once drained
    /// and dashboards render a final DONE frame.
    pub fn finish(&self) {
        // ordering: Release pairs with the Acquire load in
        // `is_finished`: a streamer that observes the flag also sees
        // every event published before `finish` was called.
        self.shared.finished.store(true, Ordering::Release);
    }

    /// Whether [`finish`](Self::finish) was called.
    pub fn is_finished(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `finish`.
        self.shared.finished.load(Ordering::Acquire)
    }
}

/// A [`RunObserver`] that publishes an [`ObsSnapshot`] every
/// `publish_every` epochs (and on the final epoch), reading the metrics
/// registry and ring accounting from the thread-local trace collector.
pub struct EpochPublisher {
    publisher: Publisher,
    config: String,
    workload: String,
    machine: String,
    publish_every: u64,
    seq: u64,
}

impl EpochPublisher {
    /// Observer publishing through `publisher` under the given run
    /// identity, once per `publish_every` epochs (min 1).
    pub fn new(
        publisher: Publisher,
        config: &str,
        workload: &str,
        machine: &str,
        publish_every: u64,
    ) -> EpochPublisher {
        EpochPublisher {
            publisher,
            config: config.to_string(),
            workload: workload.to_string(),
            machine: machine.to_string(),
            publish_every: publish_every.max(1),
            seq: 0,
        }
    }

    fn build(&mut self, p: &RunProgress<'_>, finished: bool) -> ObsSnapshot {
        self.seq += 1;
        let registry = daos_trace::registry_snapshot().unwrap_or_default();
        let dropped = daos_trace::ring_status().map_or(0, |(_, dropped, _)| dropped);
        ObsSnapshot {
            seq: self.seq,
            config: self.config.clone(),
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            epoch: p.epoch,
            nr_epochs: p.nr_epochs,
            now_ns: p.now_ns,
            wss_bytes: p.last_window.map_or(0, |w| w.hot_bytes_estimate()),
            peak_rss_bytes: p.stats.peak_rss_bytes,
            avg_rss_bytes: p.stats.avg_rss_bytes(p.now_ns),
            last_window: p.last_window.cloned(),
            schemes: p.scheme_stats.to_vec(),
            overhead: p.overhead,
            registry,
            dropped_events: dropped,
            finished,
        }
    }

    /// Publish the end-of-run snapshot from the final [`RunResult`] and
    /// mark the publisher finished. Call after `run_observed` returns,
    /// with the run's collector still installed (so the registry snapshot
    /// covers the whole run).
    pub fn finalize(&mut self, result: &RunResult) {
        self.seq += 1;
        let registry = daos_trace::registry_snapshot().unwrap_or_default();
        let dropped = daos_trace::ring_status().map_or(0, |(_, dropped, _)| dropped);
        let mut snap = (*self.publisher.snapshot()).clone();
        snap.seq = self.seq;
        snap.config = result.config.clone();
        snap.workload = result.workload.clone();
        snap.machine = result.machine.clone();
        snap.now_ns = result.runtime_ns;
        snap.peak_rss_bytes = result.peak_rss;
        snap.avg_rss_bytes = result.avg_rss;
        snap.schemes = result.scheme_stats.clone();
        snap.overhead = result.overhead;
        snap.registry = registry;
        snap.dropped_events = dropped;
        snap.finished = true;
        self.publisher.publish(snap);
        self.publisher.finish();
    }
}

impl RunObserver for EpochPublisher {
    fn on_epoch(&mut self, p: &RunProgress<'_>) {
        let due = p.epoch % self.publish_every == 0 || p.epoch + 1 == p.nr_epochs;
        if !due {
            return;
        }
        let snap = self.build(p, false);
        daos_trace::with_collector(|c| self.publisher.sync_ring(c.ring()));
        self.publisher.publish(snap);
    }
}

/// Convenience for tests and tooling: a registry snapshot of the
/// currently installed collector, or an empty registry.
pub fn current_registry() -> Registry {
    daos_trace::registry_snapshot().unwrap_or_default()
}

/// A [`FleetObserver`] that publishes **one snapshot per fleet** every
/// `publish_every` ticks: fleet totals as `fleet.*` counters and
/// per-tenant aggregates as `tenant.<name>.*` counters, which `/metrics`
/// folds into `daos_tenant_*{tenant="..."}` label families. In the
/// snapshot scalars, `avg_rss_bytes` carries the fleet's *current* total
/// RSS and `peak_rss_bytes` the summed per-process peaks.
pub struct FleetPublisher {
    publisher: Publisher,
    config: String,
    workload: String,
    machine: String,
    publish_every: u64,
    seq: u64,
}

/// Per-tenant aggregates as `tenant.<name>.*` registry counters.
fn tenant_counters(reg: &mut Registry, tenants: &[TenantStats]) {
    for t in tenants {
        let mut add = |field: &str, v: u64| {
            reg.counter_add(&format!("tenant.{}.{field}", t.name), v);
        };
        add("nr_processes", t.nr_processes as u64);
        add("rss_bytes", t.total_rss);
        add("peak_rss_bytes", t.peak_rss);
        add("interference_ns", t.interference_ns);
        add("major_faults", t.major_faults);
        add("swapouts", t.swapouts);
    }
}

impl FleetPublisher {
    /// Observer publishing through `publisher` under the given fleet
    /// identity, once per `publish_every` ticks (min 1).
    pub fn new(
        publisher: Publisher,
        config: &str,
        workload: &str,
        machine: &str,
        publish_every: u64,
    ) -> FleetPublisher {
        FleetPublisher {
            publisher,
            config: config.to_string(),
            workload: workload.to_string(),
            machine: machine.to_string(),
            publish_every: publish_every.max(1),
            seq: 0,
        }
    }

    fn build(&mut self, p: &FleetProgress, finished: bool) -> ObsSnapshot {
        self.seq += 1;
        let mut registry = Registry::new();
        registry.counter_add("fleet.nr_processes", p.nr_processes as u64);
        registry.counter_add("fleet.monitor_work_ns", p.monitor_work_ns);
        registry.counter_add("fleet.dropped_events", p.dropped_events);
        tenant_counters(&mut registry, &p.tenants);
        let total_rss: u64 = p.tenants.iter().map(|t| t.total_rss).sum();
        let total_peak: u64 = p.tenants.iter().map(|t| t.peak_rss).sum();
        ObsSnapshot {
            seq: self.seq,
            config: self.config.clone(),
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            epoch: p.tick,
            nr_epochs: p.nr_ticks,
            now_ns: p.now_ns,
            wss_bytes: 0,
            peak_rss_bytes: total_peak,
            avg_rss_bytes: total_rss,
            last_window: None,
            schemes: Vec::new(),
            overhead: None,
            registry,
            dropped_events: p.dropped_events,
            finished,
        }
    }

    /// Publish the end-of-run snapshot from the [`FleetSummary`] and
    /// mark the publisher finished.
    pub fn finalize(&mut self, summary: &FleetSummary) {
        self.seq += 1;
        let mut registry = Registry::new();
        registry.counter_add("fleet.nr_processes", summary.nr_processes as u64);
        registry.counter_add("fleet.nr_shards", summary.nr_shards as u64);
        registry.counter_add("fleet.nr_workers", summary.nr_workers as u64);
        registry.counter_add("fleet.ticks", summary.ticks);
        registry.counter_add("fleet.monitor_work_ns", summary.monitor_work_ns);
        registry.counter_add("fleet.monitor_total_checks", summary.monitor_total_checks);
        registry.counter_add(
            "fleet.overhead_per_process_ns",
            summary.overhead_per_process_ns(),
        );
        registry.counter_add("fleet.effective_max_regions", summary.effective_max_regions as u64);
        registry.counter_add("fleet.steals", summary.steals);
        registry.counter_add("fleet.dropped_events", summary.total_dropped());
        tenant_counters(&mut registry, &summary.tenants);
        let snap = ObsSnapshot {
            seq: self.seq,
            config: self.config.clone(),
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            epoch: summary.ticks.saturating_sub(1),
            nr_epochs: summary.ticks,
            now_ns: summary.runtime_ns,
            wss_bytes: 0,
            peak_rss_bytes: summary.total_peak_rss,
            avg_rss_bytes: summary.total_avg_rss,
            last_window: None,
            schemes: Vec::new(),
            overhead: None,
            registry,
            dropped_events: summary.total_dropped(),
            finished: true,
        };
        self.publisher.publish(snap);
        self.publisher.finish();
    }
}

impl FleetObserver for FleetPublisher {
    fn on_tick(&mut self, p: &FleetProgress) {
        let due = p.tick % self.publish_every == 0 || p.tick + 1 == p.nr_ticks;
        if !due {
            return;
        }
        let snap = self.build(p, false);
        self.publisher.publish(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_trace::{Collector, Event};

    fn ev(at: u64) -> TimedEvent {
        TimedEvent { at, event: Event::RegionSplit { before: at, after: at + 1 } }
    }

    #[test]
    fn publish_swaps_and_old_readers_keep_their_view() {
        let p = Publisher::new();
        let before = p.snapshot();
        assert_eq!(before.seq, 0);
        p.publish(ObsSnapshot { seq: 1, wss_bytes: 42, ..Default::default() });
        let after = p.snapshot();
        assert_eq!((after.seq, after.wss_bytes), (1, 42));
        // The Arc held from before the swap still shows the old state.
        assert_eq!(before.seq, 0);
    }

    #[test]
    fn ring_sync_copies_only_the_new_suffix_and_counts_misses() {
        let p = Publisher::with_tail_capacity(4);
        let mut c = Collector::builder().ring_capacity(8).build().unwrap();
        for at in 0..3 {
            c.record(at, ev(at).event);
        }
        p.sync_ring(c.ring());
        let (evs, cursor) = p.events_since(0);
        assert_eq!(evs.len(), 3);
        assert_eq!(cursor, 3);
        // No new events: sync is a no-op, cursor unchanged.
        p.sync_ring(c.ring());
        let (evs, cursor2) = p.events_since(cursor);
        assert!(evs.is_empty());
        assert_eq!(cursor2, 3);
        // Three more events: only those arrive; tail cap 4 evicts 2.
        for at in 3..6 {
            c.record(at, ev(at).event);
        }
        p.sync_ring(c.ring());
        let (evs, cursor3) = p.events_since(cursor);
        assert_eq!(evs.iter().map(|e| e.at).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(cursor3, 6);
        assert_eq!(p.missed_events(), 2, "tail evictions are accounted");
        // A stale cursor below the tail window clamps to what survives.
        let (evs, _) = p.events_since(0);
        assert_eq!(evs.len(), 4);
    }

    #[test]
    fn ring_overwrites_between_syncs_are_missed_not_duplicated() {
        let p = Publisher::new();
        let mut c = Collector::builder().ring_capacity(2).build().unwrap();
        for at in 0..5 {
            c.record(at, ev(at).event);
        }
        p.sync_ring(c.ring());
        let (evs, _) = p.events_since(0);
        assert_eq!(evs.iter().map(|e| e.at).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(p.missed_events(), 3, "events the ring overwrote are counted, once");
    }

    #[test]
    fn finish_flag_flips_once() {
        let p = Publisher::new();
        assert!(!p.is_finished());
        p.finish();
        assert!(p.is_finished());
        let clone = p.clone();
        assert!(clone.is_finished(), "clones share state");
    }
}
