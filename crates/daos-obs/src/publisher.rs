//! The shared-state publisher: the simulation thread periodically swaps
//! a fresh [`ObsSnapshot`] behind an `Arc` and appends the trace ring's
//! newest events to a bounded tail; server threads and the in-process
//! dashboard read both without ever blocking the sim loop for more than
//! a pointer swap.
//!
//! Since the history/alert subsystem, every publish also: flattens the
//! snapshot (scalars, registry counters/gauges, histogram percentiles)
//! into the bounded [`MetricHistory`] behind `/query`, evaluates the
//! installed [`AlertEngine`] rules against the freshest samples, pushes
//! each state transition onto the `/events` tail as an
//! `AlertTransition` trace event, and mirrors rule states into the
//! `alert.<rule>.*` registry keys `/metrics` folds into
//! `daos_alert_state{rule=…}`.

use crate::alert::{self, AlertEngine, AlertRule, AlertState, AlertStatus};
use crate::history::{Agg, MetricHistory, QueryResult};
use crate::prom;
use crate::snapshot::ObsSnapshot;
use daos::{FleetObserver, FleetProgress, FleetSummary, RunObserver, RunProgress, RunResult, TenantStats};
use daos_trace::{AlertStateTag, Event, Registry, Ring, TimedEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default bound on the live event tail (events). 8Ki timed events is a
/// few hundred KiB — enough for a dashboard's "recent activity" view
/// without letting a slow subscriber pin the whole run in memory.
pub const DEFAULT_TAIL_CAPACITY: usize = 8 * 1024;

/// Bounded live tail of the trace ring, with global sequence numbers so
/// each `/events` subscriber keeps its own cursor.
struct Tail {
    events: VecDeque<TimedEvent>,
    /// Global sequence number of `events.front()`.
    first_seq: u64,
    /// Ring events accounted for so far (`Ring::total_pushed` at the
    /// last sync).
    seen: u64,
    /// Events lost to subscribers: ring overwrites between syncs plus
    /// tail evictions.
    missed: u64,
    cap: usize,
}

/// Extra samples recorded into the history on every publish (the obs
/// server injects its own counters here, so rules can watch e.g. the
/// 503 rate without a scrape round-trip).
type AuxSource = Box<dyn Fn(&mut Vec<(String, f64)>) + Send + Sync>;

/// The retention + alerting state, advanced on every publish.
struct ObsState {
    history: MetricHistory,
    alerts: AlertEngine,
    aux: Option<AuxSource>,
}

struct Shared {
    snap: RwLock<Arc<ObsSnapshot>>,
    tail: Mutex<Tail>,
    obs: Mutex<ObsState>,
    finished: AtomicBool,
}

/// Map an engine state to its trace-event tag (trace sits below obs in
/// the crate DAG, so the enum is mirrored, not shared).
fn state_tag(s: AlertState) -> AlertStateTag {
    match s {
        AlertState::Ok => AlertStateTag::Ok,
        AlertState::Pending => AlertStateTag::Pending,
        AlertState::Firing => AlertStateTag::Firing,
        AlertState::Resolved => AlertStateTag::Resolved,
    }
}

/// Handle to the shared observability state. Clones are cheap and all
/// refer to the same state; the sim side calls [`publish`](Self::publish)
/// / [`sync_ring`](Self::sync_ring), readers call
/// [`snapshot`](Self::snapshot) / [`events_since`](Self::events_since).
#[derive(Clone)]
pub struct Publisher {
    shared: Arc<Shared>,
}

impl Default for Publisher {
    fn default() -> Self {
        Self::new()
    }
}

impl Publisher {
    /// A publisher with an empty snapshot and the default tail bound.
    pub fn new() -> Publisher {
        Self::with_tail_capacity(DEFAULT_TAIL_CAPACITY)
    }

    /// A publisher whose event tail holds at most `cap` events.
    pub fn with_tail_capacity(cap: usize) -> Publisher {
        Publisher {
            shared: Arc::new(Shared {
                snap: RwLock::new(Arc::new(ObsSnapshot::default())),
                tail: Mutex::new(Tail {
                    events: VecDeque::new(),
                    first_seq: 0,
                    seen: 0,
                    missed: 0,
                    cap: cap.max(1),
                }),
                obs: Mutex::new(ObsState {
                    history: MetricHistory::new(),
                    alerts: AlertEngine::new(),
                    aux: None,
                }),
                finished: AtomicBool::new(false),
            }),
        }
    }

    /// Swap in a new snapshot (the Arc-swap: readers holding the old
    /// `Arc` keep a consistent view, new readers see the new one), after
    /// recording it into the metric history and evaluating alert rules.
    pub fn publish(&self, snap: ObsSnapshot) {
        let transitions = self.record_and_evaluate(&snap);
        for t in &transitions {
            let event = Event::AlertTransition {
                rule: t.rule,
                from: state_tag(t.from),
                to: state_tag(t.to),
                value: t.value,
            };
            // Into the thread-local ring for offline JSONL export —
            // `sync_ring` skips the variant, so the direct tail push
            // below stays the single `/events` delivery path.
            daos_trace::trace!(t.at, AlertTransition {
                rule: t.rule,
                from: state_tag(t.from),
                to: state_tag(t.to),
                value: t.value,
            });
            self.push_tail(TimedEvent { at: t.at, event });
        }
        // A panicking publisher poisons the lock; the snapshot is a
        // whole-Arc swap, so the stored value is always consistent and
        // poison recovery is safe.
        *self
            .shared
            .snap
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Arc::new(snap);
    }

    /// Flatten `snap` into history samples, record them, and run the
    /// alert engine over the freshest values.
    fn record_and_evaluate(&self, snap: &ObsSnapshot) -> Vec<alert::Transition> {
        let (missed, tail_len) = {
            let tail = self
                .shared
                .tail
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (tail.missed, tail.events.len())
        };
        let mut samples: Vec<(String, f64)> = vec![
            ("daos_obs_seq".into(), snap.seq as f64),
            ("daos_obs_epoch".into(), snap.epoch as f64),
            ("daos_obs_nr_epochs".into(), snap.nr_epochs as f64),
            ("daos_obs_wss_bytes".into(), snap.wss_bytes as f64),
            ("daos_obs_peak_rss_bytes".into(), snap.peak_rss_bytes as f64),
            ("daos_obs_avg_rss_bytes".into(), snap.avg_rss_bytes as f64),
            ("daos_obs_dropped_events".into(), snap.dropped_events as f64),
            ("daos_obs_finished".into(), if snap.finished { 1.0 } else { 0.0 }),
            ("daos_obs_events_missed_total".into(), missed as f64),
            ("daos_obs_tail_len".into(), tail_len as f64),
        ];
        if let Some(overhead) = &snap.overhead {
            samples.push((
                "daos_obs_monitor_share_permille".into(),
                overhead.cpu_share(snap.now_ns) * 1000.0,
            ));
        }
        samples.extend(prom::flatten_registry(&snap.registry));
        let mut obs = self
            .shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ObsState { history, alerts, aux } = &mut *obs;
        if let Some(aux) = aux {
            aux(&mut samples);
        }
        history.record(snap.seq, snap.now_ns, &samples);
        alerts.evaluate(snap.now_ns, |metric| history.latest(metric).map(|(_, v)| v))
    }

    /// Append one event directly to the tail (the alert-transition
    /// path; ring-emitted events go through [`sync_ring`](Self::sync_ring)).
    fn push_tail(&self, ev: TimedEvent) {
        let mut tail = self
            .shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if tail.events.len() == tail.cap {
            tail.events.pop_front();
            tail.first_seq += 1;
            tail.missed += 1;
        }
        tail.events.push_back(ev);
    }

    /// Install alert rules (appended to any already installed).
    pub fn install_rules(&self, rules: Vec<AlertRule>) {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .alerts
            .install(rules);
    }

    /// Install [`alert::default_rules`] unless rules are already
    /// installed — idempotent, so wiring it into every observer
    /// constructor can't double the rule set.
    pub fn install_default_rules(&self) {
        let mut obs = self
            .shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if obs.alerts.is_empty() {
            obs.alerts.install(alert::default_rules());
        }
    }

    /// Point-in-time view of every installed rule (the `/alerts` body).
    pub fn alert_statuses(&self) -> Vec<AlertStatus> {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .alerts
            .statuses()
    }

    /// The alert states as registry keys (`alert.<rule>.state` gauges,
    /// `alert.<rule>.transitions_total` counters) for merging into the
    /// `/metrics` exposition.
    pub fn alert_registry(&self) -> Registry {
        let mut reg = Registry::new();
        for s in self.alert_statuses() {
            reg.gauge_set(&format!("alert.{}.state", s.rule.name), s.state.as_gauge());
            reg.counter_add(
                &format!("alert.{}.transitions_total", s.rule.name),
                s.transitions,
            );
        }
        reg
    }

    /// Answer a `/query`: see [`MetricHistory::query`].
    pub fn query(&self, metric: &str, since: u64, step: u64, agg: Agg) -> Option<QueryResult> {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .history
            .query(metric, since, step, agg)
    }

    /// History accounting for `/statusz`:
    /// `(series, samples recorded, series dropped at the cap)`.
    pub fn history_stats(&self) -> (usize, u64, u64) {
        let obs = self
            .shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (
            obs.history.series_count(),
            obs.history.samples_recorded(),
            obs.history.dropped_series(),
        )
    }

    /// Register the extra per-publish sample source (replacing any
    /// previous one). The obs server injects its own counters here.
    pub fn set_aux_source(&self, f: impl Fn(&mut Vec<(String, f64)>) + Send + Sync + 'static) {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .aux = Some(Box::new(f));
    }

    /// The current snapshot (cheap: one `Arc` clone under a read lock).
    pub fn snapshot(&self) -> Arc<ObsSnapshot> {
        self.shared
            .snap
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Pull the ring's events-since-last-sync into the shared tail. Only
    /// the new suffix is copied, so the cost is proportional to emission
    /// rate, not ring size.
    pub fn sync_ring(&self, ring: &Ring) {
        // Tail bookkeeping is updated field-by-field, but every exit
        // path leaves it internally consistent (worst case: events the
        // poisoned sync already counted re-sync as missed), so poison
        // recovery beats taking the whole server down.
        let mut tail = self
            .shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let total = ring.total_pushed();
        let new = total.saturating_sub(tail.seen);
        if new == 0 {
            return;
        }
        // Events the ring already overwrote before we got here are gone.
        let take = (new as usize).min(ring.len());
        tail.missed += new - take as u64;
        for ev in ring.tail(take) {
            // Alert transitions reach the tail directly in `publish`;
            // copying the ring's mirror of them would double-deliver
            // on `/events`.
            if matches!(ev.event, Event::AlertTransition { .. }) {
                continue;
            }
            if tail.events.len() == tail.cap {
                tail.events.pop_front();
                tail.first_seq += 1;
                tail.missed += 1;
            }
            tail.events.push_back(ev);
        }
        tail.seen = total;
    }

    /// Events with global sequence numbers `>= cursor`, plus the cursor
    /// to pass next time. A subscriber starting at 0 gets the whole
    /// surviving tail.
    pub fn events_since(&self, cursor: u64) -> (Vec<TimedEvent>, u64) {
        let tail = self
            .shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = tail.first_seq + tail.events.len() as u64;
        let start = cursor.max(tail.first_seq);
        let skip = (start - tail.first_seq) as usize;
        (tail.events.iter().skip(skip).copied().collect(), next)
    }

    /// Number of events currently buffered in the tail (the `/statusz`
    /// view of how full the bounded tail is).
    pub fn tail_len(&self) -> usize {
        self.shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .len()
    }

    /// Events that never reached the tail (ring overwrites between syncs
    /// plus tail evictions).
    pub fn missed_events(&self) -> u64 {
        self.shared
            .tail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .missed
    }

    /// Mark the run complete: `/events` streams terminate once drained
    /// and dashboards render a final DONE frame.
    pub fn finish(&self) {
        // ordering: Release pairs with the Acquire load in
        // `is_finished`: a streamer that observes the flag also sees
        // every event published before `finish` was called.
        self.shared.finished.store(true, Ordering::Release);
    }

    /// Whether [`finish`](Self::finish) was called.
    pub fn is_finished(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `finish`.
        self.shared.finished.load(Ordering::Acquire)
    }
}

/// A [`RunObserver`] that publishes an [`ObsSnapshot`] every
/// `publish_every` epochs (and on the final epoch), reading the metrics
/// registry and ring accounting from the thread-local trace collector.
pub struct EpochPublisher {
    publisher: Publisher,
    config: String,
    workload: String,
    machine: String,
    publish_every: u64,
    seq: u64,
}

impl EpochPublisher {
    /// Observer publishing through `publisher` under the given run
    /// identity, once per `publish_every` epochs (min 1).
    pub fn new(
        publisher: Publisher,
        config: &str,
        workload: &str,
        machine: &str,
        publish_every: u64,
    ) -> EpochPublisher {
        publisher.install_default_rules();
        EpochPublisher {
            publisher,
            config: config.to_string(),
            workload: workload.to_string(),
            machine: machine.to_string(),
            publish_every: publish_every.max(1),
            seq: 0,
        }
    }

    fn build(&mut self, p: &RunProgress<'_>, finished: bool) -> ObsSnapshot {
        self.seq += 1;
        let registry = daos_trace::registry_snapshot().unwrap_or_default();
        let dropped = daos_trace::ring_status().map_or(0, |(_, dropped, _)| dropped);
        ObsSnapshot {
            seq: self.seq,
            config: self.config.clone(),
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            epoch: p.epoch,
            nr_epochs: p.nr_epochs,
            now_ns: p.now_ns,
            wss_bytes: p.last_window.map_or(0, |w| w.hot_bytes_estimate()),
            peak_rss_bytes: p.stats.peak_rss_bytes,
            avg_rss_bytes: p.stats.avg_rss_bytes(p.now_ns),
            last_window: p.last_window.cloned(),
            schemes: p.scheme_stats.to_vec(),
            overhead: p.overhead,
            registry,
            dropped_events: dropped,
            finished,
        }
    }

    /// Publish the end-of-run snapshot from the final [`RunResult`] and
    /// mark the publisher finished. Call after `run_observed` returns,
    /// with the run's collector still installed (so the registry snapshot
    /// covers the whole run).
    pub fn finalize(&mut self, result: &RunResult) {
        self.seq += 1;
        let registry = daos_trace::registry_snapshot().unwrap_or_default();
        let dropped = daos_trace::ring_status().map_or(0, |(_, dropped, _)| dropped);
        let mut snap = (*self.publisher.snapshot()).clone();
        snap.seq = self.seq;
        snap.config = result.config.clone();
        snap.workload = result.workload.clone();
        snap.machine = result.machine.clone();
        snap.now_ns = result.runtime_ns;
        snap.peak_rss_bytes = result.peak_rss;
        snap.avg_rss_bytes = result.avg_rss;
        snap.schemes = result.scheme_stats.clone();
        snap.overhead = result.overhead;
        snap.registry = registry;
        snap.dropped_events = dropped;
        snap.finished = true;
        self.publisher.publish(snap);
        self.publisher.finish();
    }
}

impl RunObserver for EpochPublisher {
    fn on_epoch(&mut self, p: &RunProgress<'_>) {
        let due = p.epoch % self.publish_every == 0 || p.epoch + 1 == p.nr_epochs;
        if !due {
            return;
        }
        let snap = self.build(p, false);
        daos_trace::with_collector(|c| self.publisher.sync_ring(c.ring()));
        self.publisher.publish(snap);
    }
}

/// Convenience for tests and tooling: a registry snapshot of the
/// currently installed collector, or an empty registry.
pub fn current_registry() -> Registry {
    daos_trace::registry_snapshot().unwrap_or_default()
}

/// A [`FleetObserver`] that publishes **one snapshot per fleet** every
/// `publish_every` ticks: fleet totals as `fleet.*` counters and
/// per-tenant aggregates as `tenant.<name>.*` counters, which `/metrics`
/// folds into `daos_tenant_*{tenant="..."}` label families. In the
/// snapshot scalars, `avg_rss_bytes` carries the fleet's *current* total
/// RSS and `peak_rss_bytes` the summed per-process peaks.
pub struct FleetPublisher {
    publisher: Publisher,
    config: String,
    workload: String,
    machine: String,
    publish_every: u64,
    seq: u64,
}

/// Per-tenant aggregates as `tenant.<name>.*` registry counters.
fn tenant_counters(reg: &mut Registry, tenants: &[TenantStats]) {
    for t in tenants {
        let mut add = |field: &str, v: u64| {
            reg.counter_add(&format!("tenant.{}.{field}", t.name), v);
        };
        add("nr_processes", t.nr_processes as u64);
        add("rss_bytes", t.total_rss);
        add("peak_rss_bytes", t.peak_rss);
        add("interference_ns", t.interference_ns);
        add("major_faults", t.major_faults);
        add("swapouts", t.swapouts);
    }
}

impl FleetPublisher {
    /// Observer publishing through `publisher` under the given fleet
    /// identity, once per `publish_every` ticks (min 1).
    pub fn new(
        publisher: Publisher,
        config: &str,
        workload: &str,
        machine: &str,
        publish_every: u64,
    ) -> FleetPublisher {
        publisher.install_default_rules();
        FleetPublisher {
            publisher,
            config: config.to_string(),
            workload: workload.to_string(),
            machine: machine.to_string(),
            publish_every: publish_every.max(1),
            seq: 0,
        }
    }

    fn build(&mut self, p: &FleetProgress, finished: bool) -> ObsSnapshot {
        self.seq += 1;
        let mut registry = Registry::new();
        registry.counter_add("fleet.nr_processes", p.nr_processes as u64);
        registry.counter_add("fleet.monitor_work_ns", p.monitor_work_ns);
        registry.counter_add("fleet.dropped_events", p.dropped_events);
        tenant_counters(&mut registry, &p.tenants);
        let total_rss: u64 = p.tenants.iter().map(|t| t.total_rss).sum();
        let total_peak: u64 = p.tenants.iter().map(|t| t.peak_rss).sum();
        ObsSnapshot {
            seq: self.seq,
            config: self.config.clone(),
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            epoch: p.tick,
            nr_epochs: p.nr_ticks,
            now_ns: p.now_ns,
            wss_bytes: 0,
            peak_rss_bytes: total_peak,
            avg_rss_bytes: total_rss,
            last_window: None,
            schemes: Vec::new(),
            overhead: None,
            registry,
            dropped_events: p.dropped_events,
            finished,
        }
    }

    /// Publish the end-of-run snapshot from the [`FleetSummary`] and
    /// mark the publisher finished.
    pub fn finalize(&mut self, summary: &FleetSummary) {
        self.seq += 1;
        let mut registry = Registry::new();
        registry.counter_add("fleet.nr_processes", summary.nr_processes as u64);
        registry.counter_add("fleet.nr_shards", summary.nr_shards as u64);
        registry.counter_add("fleet.nr_workers", summary.nr_workers as u64);
        registry.counter_add("fleet.ticks", summary.ticks);
        registry.counter_add("fleet.monitor_work_ns", summary.monitor_work_ns);
        registry.counter_add("fleet.monitor_total_checks", summary.monitor_total_checks);
        registry.counter_add(
            "fleet.overhead_per_process_ns",
            summary.overhead_per_process_ns(),
        );
        registry.counter_add("fleet.effective_max_regions", summary.effective_max_regions as u64);
        registry.counter_add("fleet.steals", summary.steals);
        registry.counter_add("fleet.dropped_events", summary.total_dropped());
        tenant_counters(&mut registry, &summary.tenants);
        let snap = ObsSnapshot {
            seq: self.seq,
            config: self.config.clone(),
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            epoch: summary.ticks.saturating_sub(1),
            nr_epochs: summary.ticks,
            now_ns: summary.runtime_ns,
            wss_bytes: 0,
            peak_rss_bytes: summary.total_peak_rss,
            avg_rss_bytes: summary.total_avg_rss,
            last_window: None,
            schemes: Vec::new(),
            overhead: None,
            registry,
            dropped_events: summary.total_dropped(),
            finished: true,
        };
        self.publisher.publish(snap);
        self.publisher.finish();
    }
}

impl FleetObserver for FleetPublisher {
    fn on_tick(&mut self, p: &FleetProgress) {
        let due = p.tick % self.publish_every == 0 || p.tick + 1 == p.nr_ticks;
        if !due {
            return;
        }
        let snap = self.build(p, false);
        self.publisher.publish(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_trace::{Collector, Event};

    fn ev(at: u64) -> TimedEvent {
        TimedEvent { at, event: Event::RegionSplit { before: at, after: at + 1 } }
    }

    #[test]
    fn publish_swaps_and_old_readers_keep_their_view() {
        let p = Publisher::new();
        let before = p.snapshot();
        assert_eq!(before.seq, 0);
        p.publish(ObsSnapshot { seq: 1, wss_bytes: 42, ..Default::default() });
        let after = p.snapshot();
        assert_eq!((after.seq, after.wss_bytes), (1, 42));
        // The Arc held from before the swap still shows the old state.
        assert_eq!(before.seq, 0);
    }

    #[test]
    fn ring_sync_copies_only_the_new_suffix_and_counts_misses() {
        let p = Publisher::with_tail_capacity(4);
        let mut c = Collector::builder().ring_capacity(8).build().unwrap();
        for at in 0..3 {
            c.record(at, ev(at).event);
        }
        p.sync_ring(c.ring());
        let (evs, cursor) = p.events_since(0);
        assert_eq!(evs.len(), 3);
        assert_eq!(cursor, 3);
        // No new events: sync is a no-op, cursor unchanged.
        p.sync_ring(c.ring());
        let (evs, cursor2) = p.events_since(cursor);
        assert!(evs.is_empty());
        assert_eq!(cursor2, 3);
        // Three more events: only those arrive; tail cap 4 evicts 2.
        for at in 3..6 {
            c.record(at, ev(at).event);
        }
        p.sync_ring(c.ring());
        let (evs, cursor3) = p.events_since(cursor);
        assert_eq!(evs.iter().map(|e| e.at).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(cursor3, 6);
        assert_eq!(p.missed_events(), 2, "tail evictions are accounted");
        // A stale cursor below the tail window clamps to what survives.
        let (evs, _) = p.events_since(0);
        assert_eq!(evs.len(), 4);
    }

    #[test]
    fn ring_overwrites_between_syncs_are_missed_not_duplicated() {
        let p = Publisher::new();
        let mut c = Collector::builder().ring_capacity(2).build().unwrap();
        for at in 0..5 {
            c.record(at, ev(at).event);
        }
        p.sync_ring(c.ring());
        let (evs, _) = p.events_since(0);
        assert_eq!(evs.iter().map(|e| e.at).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(p.missed_events(), 3, "events the ring overwrote are counted, once");
    }

    #[test]
    fn publish_records_history_and_serves_queries() {
        let p = Publisher::new();
        for seq in 1..=5u64 {
            let mut reg = Registry::new();
            reg.counter_add("fleet.nr_processes", 256);
            p.publish(ObsSnapshot {
                seq,
                now_ns: seq * 1_000,
                wss_bytes: seq * 4096,
                registry: reg,
                ..Default::default()
            });
        }
        let q = p.query("daos_obs_wss_bytes", 0, 0, Agg::Last).expect("series recorded");
        assert_eq!(q.points.len(), 5);
        assert_eq!(q.points.last(), Some(&(5_000, 5.0 * 4096.0)));
        let f = p.query("daos_fleet_nr_processes", 0, 0, Agg::Last).unwrap();
        assert!(f.points.iter().all(|&(_, v)| v == 256.0));
        let (series, samples, dropped) = p.history_stats();
        assert!(series >= 2);
        assert!(samples >= 10);
        assert_eq!(dropped, 0);
        // Re-publishing the same seq is deduplicated.
        p.publish(ObsSnapshot { seq: 5, now_ns: 5_000, wss_bytes: 99, ..Default::default() });
        assert_eq!(p.query("daos_obs_wss_bytes", 0, 0, Agg::Last).unwrap().points.len(), 5);
    }

    #[test]
    fn aux_source_samples_are_recorded() {
        let p = Publisher::new();
        p.set_aux_source(|out| out.push(("daos_obs_server_rejected_total".into(), 7.0)));
        p.publish(ObsSnapshot { seq: 1, now_ns: 1_000, ..Default::default() });
        let q = p.query("daos_obs_server_rejected_total", 0, 0, Agg::Last).unwrap();
        assert_eq!(q.points, vec![(1_000, 7.0)]);
    }

    #[test]
    fn alert_transitions_reach_the_tail_and_the_registry() {
        let p = Publisher::new();
        p.install_default_rules();
        p.install_default_rules(); // idempotent
        assert_eq!(p.alert_statuses().len(), 3);
        // Drive the drop-rate rule: dropped_events grows every publish,
        // so its per-second rate > 0 for 2 samples → pending, firing.
        for (seq, dropped) in [(1u64, 0u64), (2, 10), (3, 20), (4, 20), (5, 20)] {
            p.publish(ObsSnapshot {
                seq,
                now_ns: seq * 1_000_000_000,
                dropped_events: dropped,
                ..Default::default()
            });
        }
        let statuses = p.alert_statuses();
        let drop = statuses.iter().find(|s| s.rule.name == "trace_ring_drop_rate").unwrap();
        // 0→10→20→20→20: breach at seq 2 and 3 (pending → firing), clear
        // at 4 (resolved) and 5 (ok) — four transitions.
        assert_eq!(drop.state, AlertState::Ok);
        assert_eq!(drop.transitions, 4);
        let (evs, _) = p.events_since(0);
        let alerts: Vec<&TimedEvent> = evs
            .iter()
            .filter(|e| matches!(e.event, Event::AlertTransition { .. }))
            .collect();
        assert_eq!(alerts.len(), 4, "every transition reaches /events: {evs:?}");
        match alerts[1].event {
            Event::AlertTransition { from, to, .. } => {
                assert_eq!(from, AlertStateTag::Pending);
                assert_eq!(to, AlertStateTag::Firing);
            }
            _ => unreachable!(),
        }
        // The registry view folds into daos_alert_* families.
        let reg = p.alert_registry();
        assert_eq!(reg.counter("alert.trace_ring_drop_rate.transitions_total"), 4);
        let gauges: Vec<(&str, f64)> = reg.gauges().collect();
        assert!(gauges.iter().any(|(k, v)| *k == "alert.trace_ring_drop_rate.state" && *v == 0.0));
    }

    #[test]
    fn sync_ring_skips_alert_transitions() {
        let p = Publisher::new();
        let mut c = Collector::builder().ring_capacity(8).build().unwrap();
        c.record(1, ev(1).event);
        c.record(
            2,
            Event::AlertTransition {
                rule: 0,
                from: AlertStateTag::Ok,
                to: AlertStateTag::Pending,
                value: 1.0,
            },
        );
        c.record(3, ev(3).event);
        p.sync_ring(c.ring());
        let (evs, _) = p.events_since(0);
        assert_eq!(evs.iter().map(|e| e.at).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(p.missed_events(), 0, "skipped mirrors are not 'missed'");
    }

    #[test]
    fn finish_flag_flips_once() {
        let p = Publisher::new();
        assert!(!p.is_finished());
        p.finish();
        assert!(p.is_finished());
        let clone = p.clone();
        assert!(clone.is_finished(), "clones share state");
    }
}
