//! The embedded time-series store behind `/query`: every published
//! [`ObsSnapshot`](crate::ObsSnapshot) is flattened into prometheus-style
//! series names (the same name mangling and label folding `/metrics`
//! uses, so `daos_tenant_rss_bytes{tenant="t3"}` is queryable verbatim)
//! and appended to fixed-capacity ring series with tiered downsampling:
//!
//! - **raw** — the last [`RAW_CAPACITY`] samples, exact;
//! - **t10** — one [`Rollup`] (min/max/mean/last) per 10 raw samples,
//!   the last [`ROLLUP_CAPACITY`] of them;
//! - **t100** — one rollup per 100 raw samples, same capacity.
//!
//! Memory is bounded on both axes: per-series by the ring capacities,
//! across series by [`MAX_SERIES`] (series past the cap are counted in
//! [`MetricHistory::dropped_series`], never stored). With the defaults
//! that is ≤ 512 series × (256 raw points + 2×256 rollups) ≈ a few MiB
//! worst case, and retention spans 256 / 2 560 / 25 600 publishes per
//! tier.
//!
//! A query picks the shallowest tier that still covers `since` and
//! splices newer, finer points on top (rollups never hide the samples
//! recorded after them), so recent data is always exact and old data
//! degrades to rollups instead of vanishing.

use daos_util::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Exact samples kept per series.
pub const RAW_CAPACITY: usize = 256;

/// Rollups kept per downsampling tier.
pub const ROLLUP_CAPACITY: usize = 256;

/// Distinct series the store will hold before dropping new names.
pub const MAX_SERIES: usize = 512;

/// Raw samples folded into one tier-1 rollup.
const T10: u64 = 10;

/// Raw samples folded into one tier-2 rollup.
const T100: u64 = 100;

/// One downsampled bucket: the envelope and endpoints of the raw
/// samples it covers. `at` is the timestamp of the bucket's last
/// sample, so rollup timestamps splice cleanly against finer tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rollup {
    /// Timestamp of the newest sample in the bucket.
    pub at: u64,
    /// Smallest sample value in the bucket.
    pub min: f64,
    /// Largest sample value in the bucket.
    pub max: f64,
    /// Arithmetic mean of the bucket's samples.
    pub mean: f64,
    /// The newest sample value in the bucket.
    pub last: f64,
    /// Samples folded in.
    pub count: u64,
}

/// In-progress rollup accumulator; flushes every `width` raw samples.
#[derive(Debug, Clone, Copy)]
struct Acc {
    width: u64,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    last: f64,
    at: u64,
}

impl Acc {
    fn new(width: u64) -> Acc {
        Acc { width, count: 0, min: 0.0, max: 0.0, sum: 0.0, last: 0.0, at: 0 }
    }

    /// Add one raw sample; returns the finished rollup when the bucket
    /// closes.
    fn push(&mut self, at: u64, value: f64) -> Option<Rollup> {
        if self.count == 0 {
            (self.min, self.max, self.sum) = (value, value, value);
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.sum += value;
        }
        self.count += 1;
        self.last = value;
        self.at = at;
        if self.count < self.width {
            return None;
        }
        let done = Rollup {
            at: self.at,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            last: self.last,
            count: self.count,
        };
        self.count = 0;
        Some(done)
    }
}

/// One metric's retained history across the three tiers.
#[derive(Debug)]
struct Series {
    raw: VecDeque<(u64, f64)>,
    t10: VecDeque<Rollup>,
    t100: VecDeque<Rollup>,
    acc10: Acc,
    acc100: Acc,
    /// Samples ever recorded — lets a query see whether a tier still
    /// holds the whole history (nothing evicted) without timestamps.
    total: u64,
}

impl Series {
    fn new() -> Series {
        Series {
            raw: VecDeque::new(),
            t10: VecDeque::new(),
            t100: VecDeque::new(),
            acc10: Acc::new(T10),
            acc100: Acc::new(T100),
            total: 0,
        }
    }

    fn push(&mut self, at: u64, value: f64, raw_cap: usize, rollup_cap: usize) {
        self.total += 1;
        if self.raw.len() == raw_cap {
            self.raw.pop_front();
        }
        self.raw.push_back((at, value));
        if let Some(r) = self.acc10.push(at, value) {
            if self.t10.len() == rollup_cap {
                self.t10.pop_front();
            }
            self.t10.push_back(r);
        }
        if let Some(r) = self.acc100.push(at, value) {
            if self.t100.len() == rollup_cap {
                self.t100.pop_front();
            }
            self.t100.push_back(r);
        }
    }
}

/// How a query projects each rollup (raw points are their own value
/// under every aggregator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Bucket minimum.
    Min,
    /// Bucket maximum.
    Max,
    /// Bucket mean.
    Mean,
    /// Newest value in the bucket (the default).
    Last,
}

impl Agg {
    /// Parse the `agg=` query parameter.
    pub fn parse(s: &str) -> Option<Agg> {
        match s {
            "min" => Some(Agg::Min),
            "max" => Some(Agg::Max),
            "mean" => Some(Agg::Mean),
            "last" => Some(Agg::Last),
            _ => None,
        }
    }

    /// The parameter spelling (`min` | `max` | `mean` | `last`).
    pub fn name(self) -> &'static str {
        match self {
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Mean => "mean",
            Agg::Last => "last",
        }
    }

    fn project(self, r: &Rollup) -> f64 {
        match self {
            Agg::Min => r.min,
            Agg::Max => r.max,
            Agg::Mean => r.mean,
            Agg::Last => r.last,
        }
    }

    /// Combine already-projected values falling into one `step` bucket.
    fn combine(self, values: &[f64]) -> f64 {
        match self {
            Agg::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Agg::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Agg::Mean => values.iter().sum::<f64>() / values.len() as f64,
            // lint: allow(panic, combine is only called on non-empty step buckets)
            Agg::Last => *values.last().expect("non-empty bucket"),
        }
    }
}

/// One `/query` answer: the series name, the deepest tier consulted,
/// and `(at, value)` points oldest-first.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The queried series name.
    pub metric: String,
    /// Deepest tier the answer drew from (`raw` | `t10` | `t100`).
    pub tier: &'static str,
    /// The aggregator applied to rollups.
    pub agg: Agg,
    /// `(at, value)` points, oldest first, `at >= since`.
    pub points: Vec<(u64, f64)>,
}

impl ToJson for QueryResult {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("metric".into(), Json::Str(self.metric.clone())),
            ("tier".into(), Json::Str(self.tier.into())),
            ("agg".into(), Json::Str(self.agg.name().into())),
            (
                "points".into(),
                Json::Array(
                    self.points
                        .iter()
                        .map(|(at, v)| Json::Array(vec![Json::U64(*at), Json::F64(*v)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The store: one [`Series`] per flattened metric name, bounded in
/// series count and per-series retention.
#[derive(Debug)]
pub struct MetricHistory {
    series: BTreeMap<String, Series>,
    max_series: usize,
    raw_cap: usize,
    rollup_cap: usize,
    /// Publish `seq` last recorded, so re-publishing one snapshot (or a
    /// dashboard poll racing a publish) cannot duplicate samples.
    last_seq: u64,
    dropped_series: u64,
    samples_recorded: u64,
}

impl Default for MetricHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricHistory {
    /// A store with the default bounds.
    pub fn new() -> MetricHistory {
        Self::with_limits(MAX_SERIES, RAW_CAPACITY, ROLLUP_CAPACITY)
    }

    /// A store with explicit bounds (each clamped to ≥ 1).
    pub fn with_limits(max_series: usize, raw_cap: usize, rollup_cap: usize) -> MetricHistory {
        MetricHistory {
            series: BTreeMap::new(),
            max_series: max_series.max(1),
            raw_cap: raw_cap.max(1),
            rollup_cap: rollup_cap.max(1),
            last_seq: 0,
            dropped_series: 0,
            samples_recorded: 0,
        }
    }

    /// Record one publish: `samples` are `(series name, value)` pairs
    /// stamped `at`. A `seq` equal to the previous record's is a
    /// re-publish and is ignored; `seq` 0 (hand-built snapshots) is
    /// always recorded.
    pub fn record(&mut self, seq: u64, at: u64, samples: &[(String, f64)]) {
        if seq != 0 && seq == self.last_seq {
            return;
        }
        self.last_seq = seq;
        for (name, value) in samples {
            if !value.is_finite() {
                continue;
            }
            if !self.series.contains_key(name) {
                if self.series.len() >= self.max_series {
                    self.dropped_series += 1;
                    continue;
                }
                self.series.insert(name.clone(), Series::new());
            }
            // lint: allow(panic, the entry was just inserted above)
            let s = self.series.get_mut(name).expect("series present");
            s.push(at, *value, self.raw_cap, self.rollup_cap);
            self.samples_recorded += 1;
        }
    }

    /// The newest raw value of `metric`, if the series exists — the
    /// alert engine's sample source.
    pub fn latest(&self, metric: &str) -> Option<(u64, f64)> {
        self.series.get(metric)?.raw.back().copied()
    }

    /// Distinct series currently stored.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// New series refused because [`MAX_SERIES`] was reached.
    pub fn dropped_series(&self) -> u64 {
        self.dropped_series
    }

    /// Total samples appended across all series.
    pub fn samples_recorded(&self) -> u64 {
        self.samples_recorded
    }

    /// Sorted series names (the `/query` discovery surface).
    pub fn series_names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Answer one query: points of `metric` with `at >= since`, drawn
    /// from the shallowest tier that still covers `since`, rollups
    /// projected through `agg`, finer points spliced on top, and (with
    /// `step > 0`) re-bucketed to one point per `step` of virtual time.
    /// `None` when the series does not exist.
    pub fn query(&self, metric: &str, since: u64, step: u64, agg: Agg) -> Option<QueryResult> {
        let s = self.series.get(metric)?;
        // A tier "covers" the window when it still holds every sample
        // ever recorded (no eviction yet) or its oldest entry predates
        // `since`. Prefer the shallowest covering tier — exact beats
        // downsampled.
        let raw_covers = s.raw.len() as u64 == s.total
            || s.raw.front().is_some_and(|(at, _)| *at <= since);
        let t10_covers = s.t10.len() as u64 == s.total / T10
            || s.t10.front().is_some_and(|r| r.at <= since)
            || s.t100.is_empty();
        let mut points: Vec<(u64, f64)> = Vec::new();
        let tier = if raw_covers {
            points.extend(s.raw.iter().copied().filter(|(at, _)| *at >= since));
            "raw"
        } else if t10_covers {
            let edge = splice(&mut points, s.t10.iter(), since, 0, agg);
            points.extend(s.raw.iter().copied().filter(|(at, _)| *at > edge && *at >= since));
            "t10"
        } else {
            let edge = splice(&mut points, s.t100.iter(), since, 0, agg);
            let edge = splice(&mut points, s.t10.iter(), since, edge, agg);
            points.extend(s.raw.iter().copied().filter(|(at, _)| *at > edge && *at >= since));
            "t100"
        };
        if step > 0 {
            points = rebucket(&points, step, agg);
        }
        Some(QueryResult { metric: metric.to_string(), tier, agg, points })
    }
}

/// Append `agg`-projected rollups newer than `after` and `>= since`;
/// returns the newest timestamp covered (for the next-finer splice).
fn splice<'a>(
    out: &mut Vec<(u64, f64)>,
    rollups: impl Iterator<Item = &'a Rollup>,
    since: u64,
    after: u64,
    agg: Agg,
) -> u64 {
    let mut edge = after;
    for r in rollups {
        if r.at <= after {
            continue;
        }
        edge = r.at;
        if r.at >= since {
            out.push((r.at, agg.project(r)));
        }
    }
    edge
}

/// Combine points into one sample per `step`-wide time bucket; the
/// output point carries the bucket's newest timestamp.
fn rebucket(points: &[(u64, f64)], step: u64, agg: Agg) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let mut bucket: Option<(u64, u64, Vec<f64>)> = None; // (bucket id, last at, values)
    for &(at, v) in points {
        let id = at / step;
        match &mut bucket {
            Some((bid, last_at, values)) if *bid == id => {
                *last_at = at;
                values.push(v);
            }
            _ => {
                if let Some((_, last_at, values)) = bucket.take() {
                    out.push((last_at, agg.combine(&values)));
                }
                bucket = Some((id, at, vec![v]));
            }
        }
    }
    if let Some((_, last_at, values)) = bucket {
        out.push((last_at, agg.combine(&values)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_util::{prop_assert, proptest};

    fn one(name: &str, v: f64) -> Vec<(String, f64)> {
        vec![(name.to_string(), v)]
    }

    fn fill(h: &mut MetricHistory, n: u64, f: impl Fn(u64) -> f64) {
        for i in 1..=n {
            h.record(i, i * 100, &one("m", f(i)));
        }
    }

    #[test]
    fn raw_tier_answers_recent_queries_exactly() {
        let mut h = MetricHistory::new();
        fill(&mut h, 20, |i| i as f64);
        let r = h.query("m", 500, 0, Agg::Last).unwrap();
        assert_eq!(r.tier, "raw");
        assert_eq!(r.points.first(), Some(&(500, 5.0)));
        assert_eq!(r.points.len(), 16);
        assert!(h.query("nope", 0, 0, Agg::Last).is_none());
    }

    #[test]
    fn repeated_seq_is_deduplicated() {
        let mut h = MetricHistory::new();
        h.record(1, 100, &one("m", 1.0));
        h.record(1, 100, &one("m", 1.0));
        h.record(2, 200, &one("m", 2.0));
        assert_eq!(h.query("m", 0, 0, Agg::Last).unwrap().points.len(), 2);
        assert_eq!(h.latest("m"), Some((200, 2.0)));
    }

    #[test]
    fn rollups_close_every_ten_and_hundred_samples() {
        let mut h = MetricHistory::with_limits(8, 4, 64);
        fill(&mut h, 230, |i| i as f64);
        let s = &h.series["m"];
        assert_eq!(s.raw.len(), 4, "raw ring caps");
        assert_eq!(s.t10.len(), 23);
        assert_eq!(s.t100.len(), 2);
        let r = &s.t10[0];
        assert_eq!((r.min, r.max, r.last, r.count), (1.0, 10.0, 10.0, 10));
        assert!((r.mean - 5.5).abs() < 1e-9);
        // Old windows fall back to the rollup tiers.
        let q = h.query("m", 100, 0, Agg::Mean).unwrap();
        assert_eq!(q.tier, "t10");
        assert!(q.points.windows(2).all(|w| w[0].0 < w[1].0));
        // 23 closed rollups; the last covers samples 221..=230.
        assert_eq!(q.points.len(), 23);
        assert_eq!(q.points.last(), Some(&(23_000, 225.5)));
    }

    #[test]
    fn deep_history_uses_t100_and_splices_finer_tiers() {
        let mut h = MetricHistory::with_limits(8, 16, 8);
        fill(&mut h, 2_037, |i| (i % 7) as f64);
        let q = h.query("m", 0, 0, Agg::Max).unwrap();
        assert_eq!(q.tier, "t100");
        assert!(q.points.windows(2).all(|w| w[0].0 < w[1].0), "{:?}", q.points);
        // 8 t100 rollups (up to sample 2000), then the t10 rollups past
        // them (2010, 2020, 2030), then the raw tail (2031..=2037).
        assert_eq!(q.points.len(), 8 + 3 + 7);
        assert_eq!(q.points.last(), Some(&(203_700, (2_037 % 7) as f64)));
    }

    #[test]
    fn step_rebuckets_points() {
        let mut h = MetricHistory::new();
        fill(&mut h, 40, |i| i as f64);
        let q = h.query("m", 0, 1_000, Agg::Max).unwrap();
        // 40 samples at 100ns spacing → buckets [100,900], [1000,1900],
        // …, [4000] — five of them.
        assert_eq!(q.points.len(), 5);
        assert_eq!(q.points[0], (900, 9.0), "bucket carries its max and last at");
        let mean = h.query("m", 0, 1_000, Agg::Mean).unwrap();
        assert!((mean.points[0].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn series_cap_drops_new_names_not_old_data() {
        let mut h = MetricHistory::with_limits(2, 8, 8);
        h.record(1, 100, &[("a".into(), 1.0), ("b".into(), 2.0), ("c".into(), 3.0)]);
        assert_eq!(h.series_count(), 2);
        assert_eq!(h.dropped_series(), 1);
        h.record(2, 200, &one("a", 4.0));
        assert_eq!(h.latest("a"), Some((200, 4.0)));
        assert!(h.latest("c").is_none());
    }

    #[test]
    fn non_finite_samples_are_refused() {
        let mut h = MetricHistory::new();
        h.record(1, 100, &[("m".into(), f64::NAN), ("m".into(), f64::INFINITY)]);
        assert_eq!(h.series_count(), 0);
    }

    proptest! {
        cases = 64;

        // Satellite: rollup envelope discipline — min ≤ mean ≤ max on
        // every rollup of both tiers, and each tier's envelope nests
        // inside the raw samples' global envelope.
        fn rollup_envelope_holds_across_tiers(
            n in 1u64..600,
            scale in 1u64..1000,
            jitter in 0u64..97,
        ) {
            let mut h = MetricHistory::with_limits(4, 32, 64);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in 1..=n {
                let v = ((i * scale + jitter) % 1013) as f64;
                lo = lo.min(v);
                hi = hi.max(v);
                h.record(i, i * 10, &[("m".to_string(), v)]);
            }
            let s = &h.series["m"];
            for r in s.t10.iter().chain(s.t100.iter()) {
                prop_assert!(r.min <= r.mean + 1e-9 && r.mean <= r.max + 1e-9);
                prop_assert!(r.min >= lo && r.max <= hi);
                prop_assert!(r.last >= r.min && r.last <= r.max);
            }
        }

        // Satellite: a query over a downsampled window never fabricates
        // values outside the raw envelope, under every aggregator.
        fn query_never_leaves_the_raw_envelope(
            n in 101u64..900,
            scale in 1u64..1000,
            since in 0u64..5_000,
            step in 0u64..400,
        ) {
            let mut h = MetricHistory::with_limits(4, 16, 16);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in 1..=n {
                let v = ((i * scale) % 769) as f64;
                lo = lo.min(v);
                hi = hi.max(v);
                h.record(i, i * 10, &[("m".to_string(), v)]);
            }
            for agg in [Agg::Min, Agg::Max, Agg::Mean, Agg::Last] {
                let q = h.query("m", since, step, agg).unwrap();
                for (at, v) in &q.points {
                    prop_assert!(*at >= since);
                    prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
                }
                let ats: Vec<u64> = q.points.iter().map(|p| p.0).collect();
                prop_assert!(ats.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
