//! `obs-get ADDR PATH` — fetch one observability endpoint and print the
//! body. The curl stand-in used by `scripts/verify.sh`'s live-endpoint
//! smoke: exits 0 only on HTTP 200 with a non-empty body, and when PATH
//! is `/metrics` additionally requires the body to parse as strict
//! Prometheus text exposition.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let (Some(addr), Some(path), None) = (args.next(), args.next(), args.next()) else {
        return Err("usage: obs-get ADDR PATH (e.g. obs-get 127.0.0.1:9118 /metrics)".into());
    };
    let addr: SocketAddr = addr.parse().map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let resp = daos_obs::http::http_get(addr, &path, Duration::from_secs(10))
        .map_err(|e| format!("GET {path} from {addr} failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET {path}: status {} (want 200)", resp.status));
    }
    if resp.body.is_empty() {
        return Err(format!("GET {path}: empty body"));
    }
    if path.starts_with("/metrics") {
        daos_obs::prom::parse_exposition(&resp.body)
            .map_err(|e| format!("GET {path}: body is not valid Prometheus text: {e}"))?;
    }
    Ok(resp.body)
}

fn main() -> ExitCode {
    match run() {
        Ok(body) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obs-get: {msg}");
            ExitCode::FAILURE
        }
    }
}
