//! The observability endpoint: an HTTP/1.1 server over a [`Publisher`],
//! built on a **bounded worker pool** (`daos_util::pool`, the same pool
//! that drives the fleet engine) instead of a thread per connection.
//! Routes:
//!
//! - `GET /metrics` — Prometheus text exposition of the latest snapshot,
//!   with the server's own per-endpoint telemetry merged in as
//!   `daos_obs_http_*{endpoint=...}` and `daos_obs_server_*` families
//! - `GET /snapshot` — the full [`ObsSnapshot`] as compact JSON
//! - `GET /events` — chunked live JSONL tail of the trace ring; streams
//!   until the run finishes, then drains and terminates
//! - `GET /healthz` — liveness probe (`ok`)
//! - `GET /statusz` — compact JSON view of the server's own state
//!   (in-flight, accepted/rejected, per-endpoint p50/p99)
//! - `GET /query?metric=…[&since=…][&step=…][&agg=min|max|mean|last]` —
//!   one retained series from the metric history as JSON points
//! - `GET /alerts` — every installed alert rule's state as JSON
//!
//! `HEAD` works everywhere (headers only); malformed requests get a
//! `400`; other methods get a `405`.
//!
//! ## Serving model
//!
//! Accepted connections join a shared queue; `workers` pool tasks
//! ("pumps") take turns serving one request per connection pass, so a
//! fixed number of threads multiplexes every keep-alive connection.
//! A pump peeks each connection with a short timeout: data ready means
//! one full request is served (and the connection requeued), idle
//! connections are requeued until [`ObsConfig::keepalive_idle`] expires.
//! When [`ObsConfig::max_connections`] connections are already open, the
//! accept loop answers `503` with `Retry-After` and closes — saturation
//! is explicit backpressure, never an unbounded thread spawn. A live
//! `/events` stream pins its pump until the run finishes or the client
//! goes away (write errors exit the stream promptly).

use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, write_response_with,
    Request, ResponseOpts,
};
use crate::history::Agg;
use crate::prom;
use crate::publisher::Publisher;
use daos_trace::{Histogram, Registry};
use daos_util::json::{Json, ToJson};
use daos_util::pool::WorkerPool;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often `/events` polls the publisher for fresh events.
const EVENTS_POLL: Duration = Duration::from_millis(50);

/// How long a pump waits on one idle connection's socket for the next
/// request before requeueing it and moving on.
const PEEK_TIMEOUT: Duration = Duration::from_millis(2);

/// How long an idle pump parks on the connection queue before
/// re-checking the stop flag.
const PUMP_IDLE: Duration = Duration::from_millis(50);

/// How long the accept loop waits for a rejected connection's request
/// before answering `503` — reading the request first keeps the
/// response from racing the client's write (a close with unread input
/// turns into a RST that can discard the 503 before the client sees
/// it).
const REJECT_DRAIN: Duration = Duration::from_millis(100);

/// Tuning for the obs server's worker pool and admission policy.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Pool workers serving requests; `0` picks
    /// `default_parallelism` clamped to `[2, 8]`.
    pub workers: usize,
    /// Open-connection bound; the accept loop answers `503` beyond it.
    pub max_connections: usize,
    /// Socket read timeout once a request has started arriving.
    pub read_timeout: Duration,
    /// Socket write timeout (responses and `/events` chunks).
    pub write_timeout: Duration,
    /// How long an idle keep-alive connection is kept before closing.
    pub keepalive_idle: Duration,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            workers: 0,
            max_connections: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keepalive_idle: Duration::from_secs(10),
        }
    }
}

impl ObsConfig {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            WorkerPool::default_parallelism().clamp(2, 8)
        } else {
            self.workers
        }
    }
}

/// The endpoints the server distinguishes in its self-telemetry; the
/// label value in `daos_obs_http_*{endpoint=...}` families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `/healthz`.
    Healthz,
    /// `/metrics`.
    Metrics,
    /// `/snapshot`.
    Snapshot,
    /// `/events`.
    Events,
    /// `/statusz`.
    Statusz,
    /// `/query`.
    Query,
    /// `/alerts`.
    Alerts,
    /// Anything else (404s and non-GET/HEAD methods).
    Other,
}

const NR_ENDPOINTS: usize = 8;

impl Endpoint {
    /// Every endpoint, in telemetry order.
    pub const ALL: [Endpoint; NR_ENDPOINTS] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Snapshot,
        Endpoint::Events,
        Endpoint::Statusz,
        Endpoint::Query,
        Endpoint::Alerts,
        Endpoint::Other,
    ];

    /// The `endpoint` label value (and `obs.http.<key>.*` registry
    /// segment).
    pub fn key(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Snapshot => "snapshot",
            Endpoint::Events => "events",
            Endpoint::Statusz => "statusz",
            Endpoint::Query => "query",
            Endpoint::Alerts => "alerts",
            Endpoint::Other => "other",
        }
    }

    fn of(path: &str) -> Endpoint {
        match path {
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            "/snapshot" => Endpoint::Snapshot,
            "/events" => Endpoint::Events,
            "/statusz" => Endpoint::Statusz,
            "/query" => Endpoint::Query,
            "/alerts" => Endpoint::Alerts,
            _ => Endpoint::Other,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry state stays internally consistent under panic (each
    // histogram/counter update is self-contained), so poison recovery
    // beats taking the server down.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    request_ns: Mutex<Histogram>,
    response_bytes: Mutex<Histogram>,
}

/// The server's self-telemetry: lock-free counters plus mutexed log2
/// histograms per endpoint, materialized into a [`Registry`] on demand
/// so `/metrics` can self-report without the handlers sharing a lock on
/// the hot path.
struct ServerStats {
    endpoints: [EndpointStats; NR_ENDPOINTS],
    accepted: AtomicU64,
    rejected: AtomicU64,
    bad_requests: AtomicU64,
    keepalive_reuse: AtomicU64,
    in_flight: AtomicU64,
    workers: usize,
}

impl ServerStats {
    fn new(workers: usize) -> ServerStats {
        ServerStats {
            endpoints: std::array::from_fn(|_| EndpointStats::default()),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            keepalive_reuse: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            workers,
        }
    }

    fn record(&self, ep: Endpoint, started: Instant, bytes: usize) {
        let s = &self.endpoints[ep as usize];
        // ordering: Relaxed — monotonic telemetry counter; readers only
        // ever observe it through point-in-time registry snapshots.
        s.requests.fetch_add(1, Ordering::Relaxed);
        lock(&s.request_ns).record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        lock(&s.response_bytes).record(bytes as u64);
    }

    /// Materialize the telemetry as `obs.http.<endpoint>.*` /
    /// `obs.server.*` registry keys (the `/metrics` fold input).
    fn to_registry(&self) -> Registry {
        let mut reg = Registry::new();
        for ep in Endpoint::ALL {
            let s = &self.endpoints[ep as usize];
            // ordering: Relaxed — telemetry read; exactness across
            // concurrent requests is not required for a scrape.
            let requests = s.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue;
            }
            reg.counter_add(&format!("obs.http.{}.requests_total", ep.key()), requests);
            reg.hist_insert(&format!("obs.http.{}.request_ns", ep.key()), &lock(&s.request_ns));
            reg.hist_insert(
                &format!("obs.http.{}.response_bytes", ep.key()),
                &lock(&s.response_bytes),
            );
        }
        // ordering: Relaxed — monotonic telemetry counter scrape.
        reg.counter_add("obs.server.accepted_total", self.accepted.load(Ordering::Relaxed));
        // ordering: Relaxed — monotonic telemetry counter scrape.
        reg.counter_add("obs.server.rejected_total", self.rejected.load(Ordering::Relaxed));
        reg.counter_add(
            "obs.server.bad_requests_total",
            // ordering: Relaxed — monotonic telemetry counter scrape.
            self.bad_requests.load(Ordering::Relaxed),
        );
        reg.counter_add(
            "obs.server.keepalive_reuse_total",
            // ordering: Relaxed — monotonic telemetry counter scrape.
            self.keepalive_reuse.load(Ordering::Relaxed),
        );
        // ordering: Relaxed — advisory point-in-time gauge.
        reg.gauge_set("obs.server.in_flight", self.in_flight.load(Ordering::Relaxed) as f64);
        reg.gauge_set("obs.server.workers", self.workers as f64);
        reg
    }
}

/// One accepted connection moving through the queue between pump turns.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// Requests already answered on this connection (keep-alive reuse).
    served: u64,
    idle_since: Instant,
}

struct Inner {
    publisher: Publisher,
    cfg: ObsConfig,
    stats: Arc<ServerStats>,
    stop: AtomicBool,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
}

impl Inner {
    fn close(&self, conn: Conn) {
        drop(conn);
        // ordering: Relaxed — in_flight is an advisory admission gauge;
        // a slightly stale value only shifts the 503 boundary by one.
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    fn requeue(&self, conn: Conn) {
        lock(&self.queue).push_back(conn);
        self.queue_cv.notify_one();
    }

    /// The self-telemetry registry, plus the live queue-depth gauge,
    /// the publisher's event-tail accounting, and the alert states.
    fn telemetry(&self) -> Registry {
        let mut reg = self.stats.to_registry();
        reg.gauge_set("obs.server.queued_connections", lock(&self.queue).len() as f64);
        reg.counter_add("obs.events_missed_total", self.publisher.missed_events());
        reg.gauge_set("obs.tail_len", self.publisher.tail_len() as f64);
        reg.merge(&self.publisher.alert_registry());
        reg
    }

    /// The `/statusz` body: the server's own state as compact JSON.
    fn statusz(&self) -> String {
        let (history_series, history_samples, history_dropped) =
            self.publisher.history_stats();
        let mut endpoints = Vec::new();
        for ep in Endpoint::ALL {
            let s = &self.stats.endpoints[ep as usize];
            // ordering: Relaxed — telemetry read for a status page.
            let requests = s.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue;
            }
            let h = lock(&s.request_ns);
            endpoints.push((
                ep.key().to_string(),
                Json::Object(vec![
                    ("requests_total".into(), Json::U64(requests)),
                    ("p50_ns".into(), Json::U64(h.percentile(50.0))),
                    ("p99_ns".into(), Json::U64(h.percentile(99.0))),
                ]),
            ));
        }
        Json::Object(vec![
            ("workers".into(), Json::U64(self.stats.workers as u64)),
            ("max_connections".into(), Json::U64(self.cfg.max_connections as u64)),
            // ordering: Relaxed — advisory point-in-time telemetry read.
            ("in_flight".into(), Json::U64(self.stats.in_flight.load(Ordering::Relaxed))),
            ("queued_connections".into(), Json::U64(lock(&self.queue).len() as u64)),
            // ordering: Relaxed — advisory point-in-time telemetry read.
            ("accepted_total".into(), Json::U64(self.stats.accepted.load(Ordering::Relaxed))),
            // ordering: Relaxed — advisory point-in-time telemetry read.
            ("rejected_total".into(), Json::U64(self.stats.rejected.load(Ordering::Relaxed))),
            (
                "bad_requests_total".into(),
                // ordering: Relaxed — advisory point-in-time telemetry read.
                Json::U64(self.stats.bad_requests.load(Ordering::Relaxed)),
            ),
            (
                "keepalive_reuse_total".into(),
                // ordering: Relaxed — advisory point-in-time telemetry read.
                Json::U64(self.stats.keepalive_reuse.load(Ordering::Relaxed)),
            ),
            ("tail_events".into(), Json::U64(self.publisher.tail_len() as u64)),
            ("finished".into(), Json::Bool(self.publisher.is_finished())),
            ("history_series".into(), Json::U64(history_series as u64)),
            ("history_samples".into(), Json::U64(history_samples)),
            ("history_dropped_series".into(), Json::U64(history_dropped)),
            ("endpoints".into(), Json::Object(endpoints)),
        ])
        .to_string_compact()
    }
}

/// A running observability server: a bounded worker pool multiplexing
/// keep-alive connections, with explicit 503 backpressure and
/// per-endpoint self-telemetry. Binding spawns the accept loop on a
/// background thread; dropping (or [`shutdown`](Self::shutdown)) stops
/// it and joins everything.
pub struct ObsServer {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `publisher` with the default [`ObsConfig`].
    pub fn bind(addr: &str, publisher: Publisher) -> io::Result<ObsServer> {
        Self::bind_with(addr, publisher, ObsConfig::default())
    }

    /// Bind with explicit tuning. The actually bound address is
    /// [`addr`](Self::addr).
    pub fn bind_with(
        addr: &str,
        publisher: Publisher,
        cfg: ObsConfig,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.effective_workers();
        let stats = Arc::new(ServerStats::new(workers));
        // Feed the server's own admission counters into the metric
        // history on every publish, so rate rules (e.g. the default
        // `obs_http_503_rate`) can watch the 503 gate. Captures only the
        // stats `Arc` — no cycle through `Inner`.
        {
            let stats = stats.clone();
            publisher.set_aux_source(move |out| {
                out.push((
                    "daos_obs_server_accepted_total".into(),
                    // ordering: Relaxed — telemetry counter read.
                    stats.accepted.load(Ordering::Relaxed) as f64,
                ));
                out.push((
                    "daos_obs_server_rejected_total".into(),
                    // ordering: Relaxed — telemetry counter read.
                    stats.rejected.load(Ordering::Relaxed) as f64,
                ));
                out.push((
                    "daos_obs_server_bad_requests_total".into(),
                    // ordering: Relaxed — telemetry counter read.
                    stats.bad_requests.load(Ordering::Relaxed) as f64,
                ));
            });
        }
        let inner = Arc::new(Inner {
            publisher,
            stats,
            cfg,
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        });
        // One long-lived pump per pool worker; work stealing spreads
        // them across the workers, and any surplus pumps simply exit at
        // shutdown — correctness never depends on the spread, only
        // concurrency does.
        let pool = WorkerPool::new(workers);
        for _ in 0..workers {
            let inner = inner.clone();
            pool.submit(move || pump(&inner));
        }
        let accept_inner = inner.clone();
        let accept_thread = thread::Builder::new()
            .name("daos-obs-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(ObsServer { addr, inner, accept_thread: Some(accept_thread), pool: Some(pool) })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every pump, and join the accept loop and
    /// the worker pool. Live `/events` streams notice the flag within
    /// one poll interval.
    pub fn shutdown(&mut self) {
        // ordering: Release pairs with the Acquire loads in the accept
        // loop, the pumps, and the event streamers; the flag is the only
        // state they synchronize on.
        self.inner.stop.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Dropping the pool joins the pump workers (they exit on the
        // stop flag; in-progress turns finish their current request).
        self.pool = None;
        // Close connections still parked in the queue so keep-alive
        // clients see EOF now instead of a read timeout later.
        lock(&self.inner.queue).clear();
    }

    /// The self-telemetry as a [`Registry`] (`obs.http.*` /
    /// `obs.server.*` keys) — what `/metrics` merges into the snapshot
    /// exposition.
    pub fn telemetry(&self) -> Registry {
        self.inner.telemetry()
    }

    /// Requests served on `ep` so far.
    pub fn requests_total(&self, ep: Endpoint) -> u64 {
        // ordering: Relaxed — telemetry counter read.
        self.inner.stats.endpoints[ep as usize].requests.load(Ordering::Relaxed)
    }

    /// Connections admitted past the 503 gate.
    pub fn accepted_total(&self) -> u64 {
        // ordering: Relaxed — telemetry counter read.
        self.inner.stats.accepted.load(Ordering::Relaxed)
    }

    /// Connections answered `503` at the admission gate.
    pub fn rejected_total(&self) -> u64 {
        // ordering: Relaxed — telemetry counter read.
        self.inner.stats.rejected.load(Ordering::Relaxed)
    }

    /// Requests answered `400` (malformed request line).
    pub fn bad_requests_total(&self) -> u64 {
        // ordering: Relaxed — telemetry counter read.
        self.inner.stats.bad_requests.load(Ordering::Relaxed)
    }

    /// Requests served on an already-used keep-alive connection.
    pub fn keepalive_reuse_total(&self) -> u64 {
        // ordering: Relaxed — telemetry counter read.
        self.inner.stats.keepalive_reuse.load(Ordering::Relaxed)
    }

    /// Open connections right now (served + queued).
    pub fn in_flight(&self) -> u64 {
        // ordering: Relaxed — advisory gauge read.
        self.inner.stats.in_flight.load(Ordering::Relaxed)
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    for conn in listener.incoming() {
        // ordering: Acquire pairs with the Release store in `shutdown`.
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // ordering: Relaxed — in_flight is an advisory admission gauge;
        // racing a close only shifts the 503 boundary by one connection.
        if inner.stats.in_flight.load(Ordering::Relaxed) >= inner.cfg.max_connections as u64 {
            // ordering: Relaxed — monotonic telemetry counter.
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_read_timeout(Some(REJECT_DRAIN));
            let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
            let _ = stream.set_nodelay(true);
            let _ = read_request(&mut BufReader::new(&stream));
            let _ = write_response_with(
                &mut (&stream),
                503,
                "text/plain",
                "obs server saturated\n",
                ResponseOpts { retry_after: Some(1), ..Default::default() },
            );
            continue;
        }
        if stream.set_write_timeout(Some(inner.cfg.write_timeout)).is_err() {
            continue;
        }
        // Chunked `/events` frames and pipelined keep-alive turns are
        // many small writes; Nagle + delayed ACK would serialize them at
        // ~40ms each.
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else { continue };
        // ordering: Relaxed — monotonic telemetry counter.
        inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — advisory admission gauge; over-admitting
        // by a racing accept is acceptable backpressure slack.
        inner.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        inner.requeue(Conn {
            stream,
            reader: BufReader::new(read_half),
            served: 0,
            idle_since: Instant::now(),
        });
    }
}

/// One pool worker's serve loop: pop a connection, give it one turn,
/// repeat until shutdown.
fn pump(inner: &Inner) {
    loop {
        let mut q = lock(&inner.queue);
        let conn = loop {
            // ordering: Acquire pairs with the Release store in
            // `shutdown`.
            if inner.stop.load(Ordering::Acquire) {
                return;
            }
            if let Some(c) = q.pop_front() {
                break c;
            }
            q = inner
                .queue_cv
                .wait_timeout(q, PUMP_IDLE)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        };
        drop(q);
        serve_turn(conn, inner);
    }
}

/// Give one connection one turn: serve a request if bytes are ready,
/// requeue if idle, close on EOF/expiry/error.
fn serve_turn(mut conn: Conn, inner: &Inner) {
    // Pipelined bytes already buffered count as ready; otherwise peek
    // the socket briefly so one idle connection can't hold the pump.
    if conn.reader.buffer().is_empty() {
        let _ = conn.stream.set_read_timeout(Some(PEEK_TIMEOUT));
        let mut probe = [0u8; 1];
        match conn.stream.peek(&mut probe) {
            Ok(0) => return inner.close(conn), // clean EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if conn.idle_since.elapsed() >= inner.cfg.keepalive_idle {
                    return inner.close(conn);
                }
                return inner.requeue(conn);
            }
            Err(_) => return inner.close(conn),
        }
    }
    // A request has started arriving: block for the rest of it under the
    // full read timeout.
    let _ = conn.stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let started = Instant::now();
    let req = match read_request(&mut conn.reader) {
        Ok(Some(req)) => req,
        Ok(None) => return inner.close(conn),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // ordering: Relaxed — monotonic telemetry counter.
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            // Framing is untrustworthy after a parse error: answer and
            // close rather than hunt for the next request boundary.
            let _ = write_response_with(
                &mut conn.stream,
                400,
                "text/plain",
                "bad request\n",
                ResponseOpts::default(),
            );
            return inner.close(conn);
        }
        Err(_) => return inner.close(conn),
    };
    if conn.served > 0 {
        // ordering: Relaxed — monotonic telemetry counter.
        inner.stats.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
    }
    match route(&mut conn, &req, inner, started) {
        Ok(true) => {
            conn.served += 1;
            conn.idle_since = Instant::now();
            inner.requeue(conn);
        }
        Ok(false) | Err(_) => inner.close(conn),
    }
}

/// Serve one request; `Ok(true)` keeps the connection alive.
fn route(conn: &mut Conn, req: &Request, inner: &Inner, started: Instant) -> io::Result<bool> {
    // Stats are recorded *before* the response write throughout: once a
    // client has read its response, the server has provably counted the
    // request — the equality pin the load tests and obs_bench rely on.
    // (`/metrics` renders its body first, so a scrape still reports the
    // totals from before itself.)
    let head = req.method == "HEAD";
    if req.method != "GET" && !head {
        let body = "only GET and HEAD are supported\n";
        inner.stats.record(Endpoint::Other, started, body.len());
        write_response_with(
            &mut conn.stream,
            405,
            "text/plain",
            body,
            ResponseOpts { keep_alive: req.keep_alive, ..Default::default() },
        )?;
        return Ok(req.keep_alive);
    }
    let path = req.path.split('?').next().unwrap_or("");
    let ep = Endpoint::of(path);
    let (status, ctype, body) = match ep {
        Endpoint::Healthz => (200, "text/plain", "ok\n".to_string()),
        Endpoint::Metrics => {
            let body =
                prom::render_with(&inner.publisher.snapshot(), Some(&inner.telemetry()));
            (200, "text/plain; version=0.0.4", body)
        }
        Endpoint::Snapshot => (
            200,
            "application/json",
            inner.publisher.snapshot().to_json().to_string_compact(),
        ),
        Endpoint::Statusz => (200, "application/json", inner.statusz()),
        Endpoint::Query => {
            let (status, body) = query_response(&inner.publisher, &req.path);
            let ctype = if status == 200 { "application/json" } else { "text/plain" };
            (status, ctype, body)
        }
        Endpoint::Alerts => {
            let statuses: Vec<Json> =
                inner.publisher.alert_statuses().iter().map(|s| s.to_json()).collect();
            (200, "application/json", Json::Array(statuses).to_string_compact())
        }
        Endpoint::Events => {
            if head {
                inner.stats.record(Endpoint::Events, started, 0);
                write_response_with(
                    &mut conn.stream,
                    200,
                    "application/jsonl",
                    "",
                    ResponseOpts { keep_alive: req.keep_alive, head_only: true, retry_after: None },
                )?;
                return Ok(req.keep_alive);
            }
            // Record before the terminal chunk so the count lands ahead
            // of the client seeing the stream complete.
            let written = match stream_events(&mut conn.stream, inner) {
                Ok(n) => n,
                Err(e) => {
                    inner.stats.record(Endpoint::Events, started, 0);
                    return Err(e);
                }
            };
            inner.stats.record(Endpoint::Events, started, written);
            finish_chunked(&mut conn.stream)?;
            // The chunked stream announced `Connection: close`.
            return Ok(false);
        }
        Endpoint::Other => (404, "text/plain", "unknown path\n".to_string()),
    };
    inner.stats.record(ep, started, if head { 0 } else { body.len() });
    write_response_with(
        &mut conn.stream,
        status,
        ctype,
        &body,
        ResponseOpts { keep_alive: req.keep_alive, head_only: head, retry_after: None },
    )?;
    Ok(req.keep_alive)
}

/// Minimal `%XX` percent-decoding for query parameter values — labelled
/// metric names contain `{`, `"`, and `=`, which clients must escape to
/// keep the `k=v&` split unambiguous. Malformed escapes pass through
/// verbatim.
fn percent_decode(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'%' && i + 2 < b.len() {
            if let (Some(hi), Some(lo)) =
                ((b[i + 1] as char).to_digit(16), (b[i + 2] as char).to_digit(16))
            {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(b[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Answer `GET /query`: parse the parameters out of the raw request path
/// and run them against the publisher's metric history. Returns
/// `(status, body)` — `400` for malformed parameters, `404` for a metric
/// the history has never seen.
fn query_response(publisher: &Publisher, raw_path: &str) -> (u16, String) {
    let qs = raw_path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let mut metric = None;
    let mut since = 0u64;
    let mut step = 0u64;
    let mut agg = Agg::Last;
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let v = percent_decode(v);
        match k {
            "metric" => metric = Some(v),
            "since" => match v.parse() {
                Ok(n) => since = n,
                Err(_) => return (400, "bad since: expected u64 nanoseconds\n".into()),
            },
            "step" => match v.parse() {
                Ok(n) => step = n,
                Err(_) => return (400, "bad step: expected u64 nanoseconds\n".into()),
            },
            "agg" => match Agg::parse(&v) {
                Some(a) => agg = a,
                None => return (400, "bad agg: expected min|max|mean|last\n".into()),
            },
            _ => return (400, format!("unknown parameter: {k}\n")),
        }
    }
    let Some(metric) = metric else {
        return (400, "missing required parameter: metric\n".into());
    };
    match publisher.query(&metric, since, step, agg) {
        Some(result) => (200, result.to_json().to_string_compact()),
        None => (404, format!("unknown metric: {metric}\n")),
    }
}

/// Stream the live event tail as chunked JSONL: one event object per
/// line, new lines as the publisher syncs them, terminating once the run
/// is finished (after a final drain) or the server shuts down. A write
/// error (stalled or vanished client) exits promptly — the socket's
/// write timeout bounds every chunk — freeing the pump for other
/// connections. Returns the body bytes written.
fn stream_events(stream: &mut TcpStream, inner: &Inner) -> io::Result<usize> {
    start_chunked(stream, "application/jsonl")?;
    let mut cursor = 0u64;
    let mut written = 0usize;
    loop {
        let finished = inner.publisher.is_finished();
        let (events, next) = inner.publisher.events_since(cursor);
        if !events.is_empty() {
            let mut batch = String::new();
            for ev in &events {
                batch.push_str(&ev.to_json().to_string_compact());
                batch.push('\n');
            }
            write_chunk(stream, &batch)?;
            written += batch.len();
            cursor = next;
        }
        // Checking `finished` before the drain guarantees the final
        // events published before the flag flipped were sent. The caller
        // writes the terminal chunk (after recording stats).
        // ordering: Acquire pairs with the Release store in `shutdown`.
        if finished || inner.stop.load(Ordering::Acquire) {
            return Ok(written);
        }
        thread::sleep(EVENTS_POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{http_get, HttpClient};
    use crate::snapshot::ObsSnapshot;
    use daos_trace::{Collector, Event};
    use daos_util::json::FromJson;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(10);

    fn server_with_state() -> (ObsServer, Publisher) {
        let publisher = Publisher::new();
        publisher.publish(ObsSnapshot {
            seq: 3,
            config: "rec".into(),
            epoch: 9,
            nr_epochs: 10,
            wss_bytes: 1 << 20,
            ..Default::default()
        });
        let server = ObsServer::bind("127.0.0.1:0", publisher.clone()).unwrap();
        (server, publisher)
    }

    #[test]
    fn healthz_metrics_and_snapshot_respond() {
        let (server, _publisher) = server_with_state();
        let addr = server.addr();

        let health = http_get(addr, "/healthz", T).unwrap();
        assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

        let metrics = http_get(addr, "/metrics", T).unwrap();
        assert_eq!(metrics.status, 200);
        let samples = prom::parse_exposition(&metrics.body).unwrap();
        assert!(samples.iter().any(|s| s.name == "daos_obs_seq" && s.value == 3.0));
        // The server observes itself: the healthz hit above shows up.
        assert!(
            samples.iter().any(|s| {
                s.name == "daos_obs_http_requests_total"
                    && s.labels == vec![("endpoint".to_string(), "healthz".to_string())]
                    && s.value == 1.0
            }),
            "self-telemetry folds into /metrics: {}",
            metrics.body
        );

        let snap = http_get(addr, "/snapshot", T).unwrap();
        assert_eq!(snap.status, 200);
        let parsed =
            ObsSnapshot::from_json(&daos_util::json::parse(&snap.body).unwrap()).unwrap();
        assert_eq!((parsed.seq, parsed.epoch, parsed.wss_bytes), (3, 9, 1 << 20));

        assert_eq!(http_get(addr, "/nope", T).unwrap().status, 404);
    }

    #[test]
    fn statusz_reports_server_state() {
        let (server, _publisher) = server_with_state();
        let _ = http_get(server.addr(), "/healthz", T).unwrap();
        let resp = http_get(server.addr(), "/statusz", T).unwrap();
        assert_eq!(resp.status, 200);
        let v = daos_util::json::parse(&resp.body).unwrap();
        assert_eq!(v.field::<u64>("rejected_total").unwrap(), 0);
        assert!(v.field::<u64>("accepted_total").unwrap() >= 2);
        assert!(v.field::<u64>("workers").unwrap() >= 2);
        let endpoints = v.get("endpoints").unwrap();
        let healthz = endpoints.get("healthz").unwrap();
        assert_eq!(healthz.field::<u64>("requests_total").unwrap(), 1);
    }

    #[test]
    fn head_and_bad_requests_are_answered() {
        let (server, _publisher) = server_with_state();
        let mut client = HttpClient::connect(server.addr(), T).unwrap();
        let head = client.request("HEAD", "/metrics").unwrap();
        assert_eq!(head.status, 200);
        assert!(head.body.is_empty());
        assert!(
            head.header("content-length").unwrap().parse::<usize>().unwrap() > 0,
            "HEAD announces the length it would have sent"
        );
        // A keep-alive HEAD leaves the connection usable.
        let next = client.get("/healthz").unwrap();
        assert_eq!((next.status, next.body.as_str()), (200, "ok\n"));
        assert_eq!(client.request("POST", "/metrics").unwrap().status, 405);

        // A malformed request line gets 400, not a silent close.
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.set_read_timeout(Some(T)).unwrap();
        raw.write_all(b"utter nonsense\r\n\r\n").unwrap();
        let mut resp = String::new();
        raw.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400 Bad Request"), "{resp}");
        assert_eq!(server.bad_requests_total(), 1);
    }

    #[test]
    fn events_stream_drains_tail_then_terminates_on_finish() {
        let (server, publisher) = server_with_state();
        let mut c = Collector::builder().ring_capacity(16).build().unwrap();
        for at in 0..4u64 {
            c.record(at * 100, Event::RegionSplit { before: at, after: at + 1 });
        }
        publisher.sync_ring(c.ring());
        publisher.finish();

        let resp = http_get(server.addr(), "/events", T).unwrap();
        assert_eq!(resp.status, 200);
        let lines: Vec<&str> = resp.body.lines().collect();
        assert_eq!(lines.len(), 4, "all synced events stream out: {:?}", resp.body);
        for line in lines {
            let ev = daos_trace::TimedEvent::from_json(
                &daos_util::json::parse(line).unwrap(),
            )
            .unwrap();
            assert!(matches!(ev.event, Event::RegionSplit { .. }));
        }
    }

    #[test]
    fn query_serves_history_and_rejects_bad_params() {
        let (server, publisher) = server_with_state();
        for seq in 4..10u64 {
            publisher.publish(ObsSnapshot {
                seq,
                now_ns: seq * 1_000,
                wss_bytes: seq * 10,
                ..Default::default()
            });
        }
        let addr = server.addr();

        let resp = http_get(addr, "/query?metric=daos_obs_wss_bytes&agg=last", T).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = daos_util::json::parse(&resp.body).unwrap();
        assert_eq!(v.field::<String>("metric").unwrap(), "daos_obs_wss_bytes");
        assert_eq!(v.field::<String>("tier").unwrap(), "raw");
        let Some(Json::Array(points)) = v.get("points") else {
            panic!("points missing: {}", resp.body);
        };
        assert!(!points.is_empty());
        let Some(Json::Array(last)) = points.last() else { panic!() };
        assert_eq!((last[0].clone(), last[1].clone()), (Json::U64(9_000), Json::F64(90.0)));

        // `%XX` escapes in the metric name decode before lookup.
        let escaped = http_get(addr, "/query?metric=daos%5Fobs%5Fseq", T).unwrap();
        assert_eq!(escaped.status, 200, "{}", escaped.body);

        assert_eq!(http_get(addr, "/query", T).unwrap().status, 400);
        assert_eq!(http_get(addr, "/query?metric=daos_obs_seq&agg=median", T).unwrap().status, 400);
        assert_eq!(http_get(addr, "/query?metric=daos_obs_seq&since=abc", T).unwrap().status, 400);
        assert_eq!(http_get(addr, "/query?metric=never_recorded", T).unwrap().status, 404);
    }

    #[test]
    fn alerts_endpoint_and_metrics_expose_rule_state() {
        let (server, publisher) = server_with_state();
        publisher.install_default_rules();
        let addr = server.addr();

        let resp = http_get(addr, "/alerts", T).unwrap();
        assert_eq!(resp.status, 200);
        let Json::Array(rules) = daos_util::json::parse(&resp.body).unwrap() else {
            panic!("not an array: {}", resp.body);
        };
        assert!(!rules.is_empty());
        assert!(resp.body.contains("\"rule\":\"trace_ring_drop_rate\""), "{}", resp.body);
        assert!(resp.body.contains("\"state\":\"ok\""), "{}", resp.body);

        // The alert states and tail accounting fold into /metrics.
        let metrics = http_get(addr, "/metrics", T).unwrap();
        let samples = prom::parse_exposition(&metrics.body).unwrap();
        assert!(
            samples.iter().any(|s| {
                s.name == "daos_alert_state"
                    && s.labels
                        == vec![("rule".to_string(), "trace_ring_drop_rate".to_string())]
            }),
            "{}",
            metrics.body
        );
        assert!(samples.iter().any(|s| s.name == "daos_obs_events_missed_total"));
        assert!(samples.iter().any(|s| s.name == "daos_obs_tail_len"));
    }

    #[test]
    fn server_counters_feed_the_history_via_the_aux_source() {
        let (server, publisher) = server_with_state();
        let _ = http_get(server.addr(), "/healthz", T).unwrap();
        // The aux source samples at publish time, after the hit above.
        publisher.publish(ObsSnapshot { seq: 4, now_ns: 4_000, ..Default::default() });
        let resp =
            http_get(server.addr(), "/query?metric=daos_obs_server_accepted_total", T).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = daos_util::json::parse(&resp.body).unwrap();
        let Some(Json::Array(points)) = v.get("points") else { panic!("{}", resp.body) };
        let Some(Json::Array(last)) = points.last() else { panic!() };
        assert!(matches!(last[1], Json::F64(n) if n >= 1.0), "{}", resp.body);
    }

    #[test]
    fn shutdown_stops_the_accept_loop() {
        let (mut server, _publisher) = server_with_state();
        let addr = server.addr();
        server.shutdown();
        // Idempotent, and the port no longer serves.
        server.shutdown();
        assert!(http_get(addr, "/healthz", Duration::from_millis(500)).is_err());
    }
}
