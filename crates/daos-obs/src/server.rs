//! The observability endpoint: a tiny thread-per-connection HTTP/1.1
//! server over a [`Publisher`]. Routes:
//!
//! - `GET /metrics` — Prometheus text exposition of the latest snapshot
//! - `GET /snapshot` — the full [`ObsSnapshot`] as compact JSON
//! - `GET /events` — chunked live JSONL tail of the trace ring; streams
//!   until the run finishes, then drains and terminates
//! - `GET /healthz` — liveness probe (`ok`)

use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, write_response, Request,
};
use crate::prom;
use crate::publisher::Publisher;
use daos_util::json::ToJson;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How often `/events` polls the publisher for fresh events.
const EVENTS_POLL: Duration = Duration::from_millis(50);

/// A running observability server. Binding spawns the accept loop on a
/// background thread; dropping (or [`shutdown`](Self::shutdown)) stops
/// it. Connection handlers are detached and bounded by the routes they
/// serve — every route except a live `/events` stream responds once and
/// closes.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `publisher`. The actually bound address is
    /// [`addr`](Self::addr).
    pub fn bind(addr: &str, publisher: Publisher) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let accept_thread = thread::Builder::new()
            .name("daos-obs-accept".into())
            .spawn(move || accept_loop(listener, publisher, flag))?;
        Ok(ObsServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. Live
    /// `/events` streams notice the flag within one poll interval.
    pub fn shutdown(&mut self) {
        // ordering: Release pairs with the Acquire loads in the accept
        // loop and the event streamers; the flag is the only shared
        // state, so no stronger ordering is needed.
        self.stop.store(true, Ordering::Release);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, publisher: Publisher, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        // ordering: Acquire pairs with the Release store in `shutdown`.
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let publisher = publisher.clone();
        let stop = stop.clone();
        let _ = thread::Builder::new().name("daos-obs-conn".into()).spawn(move || {
            // Handler errors mean the client went away; nothing to do.
            let _ = handle_connection(stream, &publisher, &stop);
        });
    }
}

fn handle_connection(
    stream: TcpStream,
    publisher: &Publisher,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let Some(req) = read_request(&mut reader)? else { return Ok(()) };
    let mut stream = stream;
    route(&mut stream, &req, publisher, stop)
}

fn route(
    stream: &mut TcpStream,
    req: &Request,
    publisher: &Publisher,
    stop: &AtomicBool,
) -> io::Result<()> {
    if req.method != "GET" {
        return write_response(stream, 405, "text/plain", "only GET is supported\n");
    }
    let path = req.path.split('?').next().unwrap_or("");
    match path {
        "/healthz" => write_response(stream, 200, "text/plain", "ok\n"),
        "/metrics" => {
            let body = prom::render(&publisher.snapshot());
            write_response(stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/snapshot" => {
            let body = publisher.snapshot().to_json().to_string_compact();
            write_response(stream, 200, "application/json", &body)
        }
        "/events" => stream_events(stream, publisher, stop),
        _ => write_response(stream, 404, "text/plain", "unknown path\n"),
    }
}

/// Stream the live event tail as chunked JSONL: one event object per
/// line, new lines as the publisher syncs them, terminating once the run
/// is finished (after a final drain) or the server shuts down.
fn stream_events(
    stream: &mut TcpStream,
    publisher: &Publisher,
    stop: &AtomicBool,
) -> io::Result<()> {
    start_chunked(stream, "application/jsonl")?;
    let mut cursor = 0u64;
    loop {
        let finished = publisher.is_finished();
        let (events, next) = publisher.events_since(cursor);
        if !events.is_empty() {
            let mut batch = String::new();
            for ev in &events {
                batch.push_str(&ev.to_json().to_string_compact());
                batch.push('\n');
            }
            write_chunk(stream, &batch)?;
            cursor = next;
        }
        // Checking `finished` before the drain guarantees the final
        // events published before the flag flipped were sent.
        // ordering: Acquire pairs with the Release store in `shutdown`.
        if finished || stop.load(Ordering::Acquire) {
            return finish_chunked(stream);
        }
        thread::sleep(EVENTS_POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_get;
    use crate::snapshot::ObsSnapshot;
    use daos_trace::{Collector, Event};
    use daos_util::json::FromJson;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(10);

    fn server_with_state() -> (ObsServer, Publisher) {
        let publisher = Publisher::new();
        publisher.publish(ObsSnapshot {
            seq: 3,
            config: "rec".into(),
            epoch: 9,
            nr_epochs: 10,
            wss_bytes: 1 << 20,
            ..Default::default()
        });
        let server = ObsServer::bind("127.0.0.1:0", publisher.clone()).unwrap();
        (server, publisher)
    }

    #[test]
    fn healthz_metrics_and_snapshot_respond() {
        let (server, _publisher) = server_with_state();
        let addr = server.addr();

        let health = http_get(addr, "/healthz", T).unwrap();
        assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

        let metrics = http_get(addr, "/metrics", T).unwrap();
        assert_eq!(metrics.status, 200);
        let samples = prom::parse_exposition(&metrics.body).unwrap();
        assert!(samples.iter().any(|s| s.name == "daos_obs_seq" && s.value == 3.0));

        let snap = http_get(addr, "/snapshot", T).unwrap();
        assert_eq!(snap.status, 200);
        let parsed =
            ObsSnapshot::from_json(&daos_util::json::parse(&snap.body).unwrap()).unwrap();
        assert_eq!((parsed.seq, parsed.epoch, parsed.wss_bytes), (3, 9, 1 << 20));

        assert_eq!(http_get(addr, "/nope", T).unwrap().status, 404);
    }

    #[test]
    fn events_stream_drains_tail_then_terminates_on_finish() {
        let (server, publisher) = server_with_state();
        let mut c = Collector::builder().ring_capacity(16).build().unwrap();
        for at in 0..4u64 {
            c.record(at * 100, Event::RegionSplit { before: at, after: at + 1 });
        }
        publisher.sync_ring(c.ring());
        publisher.finish();

        let resp = http_get(server.addr(), "/events", T).unwrap();
        assert_eq!(resp.status, 200);
        let lines: Vec<&str> = resp.body.lines().collect();
        assert_eq!(lines.len(), 4, "all synced events stream out: {:?}", resp.body);
        for line in lines {
            let ev = daos_trace::TimedEvent::from_json(
                &daos_util::json::parse(line).unwrap(),
            )
            .unwrap();
            assert!(matches!(ev.event, Event::RegionSplit { .. }));
        }
    }

    #[test]
    fn shutdown_stops_the_accept_loop() {
        let (mut server, _publisher) = server_with_state();
        let addr = server.addr();
        server.shutdown();
        // Idempotent, and the port no longer serves.
        server.shutdown();
        assert!(http_get(addr, "/healthz", Duration::from_millis(500)).is_err());
    }
}
