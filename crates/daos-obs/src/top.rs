//! The `daos top` frame renderer: a pure function from a sequence of
//! [`ObsSnapshot`]s to text frames (the CLI wraps it in ANSI
//! clear-and-home for live refresh, or prints frames plainly with
//! `--plain`). Shows run progress, a WSS sparkline over the recent
//! publish history, the hottest monitored regions, per-scheme
//! quota/throttle state, and span p50/p95 from the log2 histograms.

use crate::snapshot::ObsSnapshot;
use daos_trace::{keys, Phase};
use std::collections::VecDeque;

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` (oldest first) as a fixed-height sparkline scaled to
/// the window's own maximum. All-zero input renders as all-low.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| {
            let idx = ((v as u128 * (SPARKS.len() as u128 - 1)) + max as u128 / 2) / max as u128;
            SPARKS[idx as usize]
        })
        .collect()
}

/// `1.5G`, `23.4M`, `512K`, `17B` — compact byte counts for table cells.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [(&str, u64); 4] =
        [("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10), ("B", 1)];
    for (suffix, scale) in UNITS {
        if b >= scale {
            let whole = b / scale;
            return if scale > 1 && whole < 100 {
                format!("{}.{}{}", whole, (b % scale) * 10 / scale, suffix)
            } else {
                format!("{whole}{suffix}")
            };
        }
    }
    "0B".into()
}

/// Compact durations: `1.2s`, `34ms`, `560us`, `789ns`.
pub fn fmt_ns(ns: u64) -> String {
    const UNITS: [(&str, u64); 3] = [("s", 1_000_000_000), ("ms", 1_000_000), ("us", 1_000)];
    for (suffix, scale) in UNITS {
        if ns >= scale {
            let whole = ns / scale;
            return if whole < 100 {
                format!("{}.{}{}", whole, (ns % scale) * 10 / scale, suffix)
            } else {
                format!("{whole}{suffix}")
            };
        }
    }
    format!("{ns}ns")
}

/// Stateful frame renderer: remembers the WSS of each snapshot it has
/// seen (by publish `seq`, so repeated polls of one snapshot don't
/// stutter the sparkline).
pub struct Dashboard {
    wss_history: VecDeque<u64>,
    last_seq: u64,
    /// Hottest regions shown per frame.
    pub top_regions: usize,
    /// Sparkline width (publish intervals of history).
    pub spark_width: usize,
}

impl Default for Dashboard {
    fn default() -> Self {
        Dashboard { wss_history: VecDeque::new(), last_seq: 0, top_regions: 8, spark_width: 48 }
    }
}

impl Dashboard {
    /// A dashboard with the default layout.
    pub fn new() -> Dashboard {
        Dashboard::default()
    }

    /// Seed the WSS sparkline from an already-recorded series (oldest
    /// first) — `daos top ADDR` pulls
    /// `/query?metric=daos_obs_wss_bytes&agg=last` so the first frame
    /// shows history instead of a single dot. Keeps the newest
    /// `spark_width` values; later [`frame`](Self::frame) calls append
    /// as usual.
    pub fn backfill(&mut self, values: &[u64]) {
        for &v in values {
            self.wss_history.push_back(v);
        }
        while self.wss_history.len() > self.spark_width {
            self.wss_history.pop_front();
        }
    }

    /// Render one frame. Feeding the same snapshot (same `seq`) again
    /// re-renders without extending the sparkline history.
    pub fn frame(&mut self, snap: &ObsSnapshot) -> String {
        if snap.seq != self.last_seq {
            self.last_seq = snap.seq;
            self.wss_history.push_back(snap.wss_bytes);
            while self.wss_history.len() > self.spark_width {
                self.wss_history.pop_front();
            }
        }
        let mut out = String::new();
        self.header(&mut out, snap);
        self.wss(&mut out, snap);
        self.regions(&mut out, snap);
        self.schemes(&mut out, snap);
        self.spans(&mut out, snap);
        out
    }

    fn header(&self, out: &mut String, snap: &ObsSnapshot) {
        let state = if snap.finished { "DONE" } else { "LIVE" };
        out.push_str(&format!(
            "daos top — {} | workload {} | machine {} | {}\n",
            none_if_empty(&snap.config),
            none_if_empty(&snap.workload),
            none_if_empty(&snap.machine),
            state,
        ));
        let total = snap.nr_epochs.max(1);
        let done = if snap.finished { total } else { (snap.epoch + 1).min(total) };
        let width = 32usize;
        let filled = (done as u128 * width as u128 / total as u128) as usize;
        out.push_str(&format!(
            "epoch {:>4}/{:<4} [{}{}] t={} | rss peak {} avg {}\n",
            done,
            total,
            "#".repeat(filled),
            "-".repeat(width - filled),
            fmt_ns(snap.now_ns),
            fmt_bytes(snap.peak_rss_bytes),
            fmt_bytes(snap.avg_rss_bytes),
        ));
        if snap.dropped_events > 0 {
            out.push_str(&format!("trace ring dropped {} events\n", snap.dropped_events));
        }
    }

    fn wss(&self, out: &mut String, snap: &ObsSnapshot) {
        let history: Vec<u64> = self.wss_history.iter().copied().collect();
        out.push_str(&format!(
            "\nwss {:>8}  {}\n",
            fmt_bytes(snap.wss_bytes),
            sparkline(&history),
        ));
    }

    fn regions(&self, out: &mut String, snap: &ObsSnapshot) {
        let Some(window) = &snap.last_window else {
            out.push_str("\nregions: no aggregation window published yet\n");
            return;
        };
        let mut hottest: Vec<_> = window.regions.iter().collect();
        hottest.sort_by(|a, b| {
            b.nr_accesses.cmp(&a.nr_accesses).then(a.range.start.cmp(&b.range.start))
        });
        out.push_str(&format!(
            "\nhottest regions ({} of {}, window @{})\n",
            hottest.len().min(self.top_regions),
            window.regions.len(),
            fmt_ns(window.at),
        ));
        out.push_str("  #  start              size     heat  age\n");
        for (i, r) in hottest.iter().take(self.top_regions).enumerate() {
            let heat = bar(r.nr_accesses as u64, window.max_nr_accesses.max(1) as u64, 5);
            out.push_str(&format!(
                "  {:<2} {:#016x} {:>8}  {:<5} {:>3}\n",
                i,
                r.range.start,
                fmt_bytes(r.range.len()),
                heat,
                r.age,
            ));
        }
    }

    fn schemes(&self, out: &mut String, snap: &ObsSnapshot) {
        if snap.schemes.is_empty() {
            out.push_str("\nschemes: none active\n");
            return;
        }
        out.push_str("\nscheme  tried      applied     quota-skips\n");
        for (i, s) in snap.schemes.iter().enumerate() {
            out.push_str(&format!(
                "  {:<4} {:>4}/{:>7} {:>4}/{:>7} {:>6}{}\n",
                i,
                s.nr_tried,
                fmt_bytes(s.sz_tried),
                s.nr_applied,
                fmt_bytes(s.sz_applied),
                s.nr_quota_skips,
                if s.nr_quota_skips > 0 { "  [throttled]" } else { "" },
            ));
        }
    }

    fn spans(&self, out: &mut String, snap: &ObsSnapshot) {
        let mut rows = Vec::new();
        for phase in Phase::ALL {
            if let Some((_, h)) =
                snap.registry.hists().find(|(k, _)| *k == keys::span(phase))
            {
                if h.count() > 0 {
                    rows.push((phase, h.percentile(50.0), h.percentile(95.0), h.count()));
                }
            }
        }
        if rows.is_empty() {
            out.push_str("\nspans: no span histograms (tracing disabled?)\n");
            return;
        }
        out.push_str("\nphase         p50       p95     count\n");
        for (phase, p50, p95, count) in rows {
            out.push_str(&format!(
                "  {:<12}{:>7}{:>10}{:>9}\n",
                phase.key_name(),
                fmt_ns(p50),
                fmt_ns(p95),
                count,
            ));
        }
    }
}

fn none_if_empty(s: &str) -> &str {
    if s.is_empty() {
        "(unnamed)"
    } else {
        s
    }
}

fn bar(value: u64, max: u64, width: usize) -> String {
    let filled = (value as u128 * width as u128 / max.max(1) as u128) as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::addr::AddrRange;
    use daos_monitor::{Aggregation, RegionInfo};
    use daos_schemes::SchemeStats;
    use daos_trace::Registry;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(17), "17B");
        assert_eq!(fmt_bytes(1536), "1.5K");
        assert_eq!(fmt_bytes(23 << 20 | 400 << 10), "23.3M");
        assert_eq!(fmt_bytes(512 << 10), "512K");
        assert_eq!(fmt_ns(789), "789ns");
        assert_eq!(fmt_ns(560_000), "560us");
        assert_eq!(fmt_ns(34_000_000), "34.0ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.2s");
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let line = sparkline(&[0, 50, 100]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }

    fn busy_snapshot(seq: u64, wss: u64) -> ObsSnapshot {
        let mut reg = Registry::new();
        for v in [100u64, 200, 400, 800] {
            reg.hist_record(&keys::span(Phase::Sample), v);
        }
        ObsSnapshot {
            seq,
            config: "rec".into(),
            workload: "w".into(),
            machine: "m".into(),
            epoch: seq.saturating_sub(1),
            nr_epochs: 10,
            now_ns: seq * 1_000_000,
            wss_bytes: wss,
            last_window: Some(Aggregation {
                at: seq * 1_000_000,
                regions: vec![
                    RegionInfo { range: AddrRange::new(0x1000, 0x3000), nr_accesses: 9, age: 2 },
                    RegionInfo { range: AddrRange::new(0x3000, 0x9000), nr_accesses: 1, age: 7 },
                ],
                max_nr_accesses: 10,
                aggregation_interval: 100_000_000,
            }),
            schemes: vec![SchemeStats {
                nr_tried: 4,
                sz_tried: 1 << 20,
                nr_applied: 2,
                sz_applied: 1 << 19,
                nr_quota_skips: 1,
            }],
            registry: reg,
            ..Default::default()
        }
    }

    #[test]
    fn frame_shows_every_section_and_history_grows_per_seq() {
        let mut dash = Dashboard::new();
        let frame1 = dash.frame(&busy_snapshot(1, 1 << 20));
        assert!(frame1.contains("daos top — rec"), "{frame1}");
        assert!(frame1.contains("LIVE"));
        assert!(frame1.contains("hottest regions (2 of 2"));
        assert!(frame1.contains("[throttled]"));
        assert!(frame1.contains("sample"));
        assert!(frame1.contains("wss"));
        // Same seq re-rendered: sparkline history does not grow.
        dash.frame(&busy_snapshot(1, 1 << 20));
        assert_eq!(dash.wss_history.len(), 1);
        dash.frame(&busy_snapshot(2, 2 << 20));
        assert_eq!(dash.wss_history.len(), 2);
        // Hottest region is listed before the colder one.
        let hot = frame1.find("0x00000000001000").unwrap();
        let cold = frame1.find("0x00000000003000").unwrap();
        assert!(hot < cold);
    }

    #[test]
    fn backfill_seeds_the_sparkline_and_clamps_to_width() {
        let mut dash = Dashboard::new();
        dash.spark_width = 4;
        dash.backfill(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(dash.wss_history, [3, 4, 5, 6]);
        // The next live frame appends after the backfilled history.
        dash.frame(&busy_snapshot(1, 7));
        assert_eq!(dash.wss_history, [4, 5, 6, 7]);
    }

    #[test]
    fn empty_snapshot_renders_placeholders_not_panics() {
        let mut dash = Dashboard::new();
        let frame = dash.frame(&ObsSnapshot::default());
        assert!(frame.contains("no aggregation window"));
        assert!(frame.contains("schemes: none active"));
        assert!(frame.contains("no span histograms"));
    }

    #[test]
    fn finished_snapshot_shows_done_and_full_bar() {
        let mut dash = Dashboard::new();
        let mut snap = busy_snapshot(10, 1 << 20);
        snap.finished = true;
        let frame = dash.frame(&snap);
        assert!(frame.contains("DONE"));
        assert!(frame.contains("epoch   10/10"));
        assert!(frame.contains(&"#".repeat(32)), "progress bar is full: {frame}");
    }
}
