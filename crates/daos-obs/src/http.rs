//! Just enough HTTP/1.1 on `std::net` for the observability plane: a
//! request parser (method, path, keep-alive negotiation), response
//! writers with `Content-Length` or chunked framing, and two blocking
//! clients — one-shot [`http_get`] (used by `daos top ADDR`, the
//! integration tests, and the `obs-get` smoke helper) and the
//! persistent [`HttpClient`] that keeps one connection open across
//! requests (used by the `obs_bench` load generator and the keep-alive
//! tests) — no external dependencies anywhere.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed request head. Only the headers the server acts on are
/// interpreted (`Connection`); the rest are read and discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET`, `HEAD`, ...).
    pub method: String,
    /// Request target path including any query string.
    pub path: String,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to `true` unless `Connection: close`, HTTP/1.0 to
    /// `false` unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Read one request head from `reader`. Returns `None` on a clean EOF
/// before any bytes (client closed an idle connection). Malformed
/// request lines surface as [`io::ErrorKind::InvalidData`] so the
/// server can answer `400 Bad Request` instead of silently closing.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut words = line.split_whitespace();
    let (method, path, version) = match (words.next(), words.next(), words.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    // Keep-alive is the HTTP/1.1 default; 1.0 must opt in.
    let mut keep_alive = version != "HTTP/1.0";
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
    };
    let mut request = request;
    // Drain headers up to the blank line; `Connection` is the only one
    // the server interprets.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            request.keep_alive = keep_alive;
            return Ok(Some(request));
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("connection:") {
            keep_alive = match v.trim() {
                "close" => false,
                "keep-alive" => true,
                _ => keep_alive,
            };
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// How a response should be framed and delivered.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResponseOpts {
    /// Announce `Connection: keep-alive` instead of `close`.
    pub keep_alive: bool,
    /// Write the head only (a `HEAD` answer): full headers, including
    /// the `Content-Length` the body *would* have, but no body bytes.
    pub head_only: bool,
    /// Emit a `Retry-After: N` header (the 503 backpressure answer).
    pub retry_after: Option<u32>,
}

/// Write a complete response with a `Content-Length` body under `opts`.
/// Returns the number of body bytes actually written (0 for
/// `head_only`), which the server's response-size telemetry records.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    opts: ResponseOpts,
) -> io::Result<usize> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
    );
    if let Some(secs) = opts.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str(if opts.keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    // One write for head + body: two writes on a non-NODELAY socket can
    // hit the Nagle/delayed-ACK stall and cost tens of ms per response.
    let written = if opts.head_only {
        0
    } else {
        head.push_str(body);
        body.len()
    };
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(written)
}

/// Write a complete `Connection: close` response with a
/// `Content-Length` body (the one-shot shape every pre-keep-alive
/// caller used; kept as the simple front door).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, body, ResponseOpts::default())
        .map(|_| ())
}

/// Start a chunked response; follow with [`write_chunk`] calls and a
/// final [`finish_chunked`]. Chunked streams always announce
/// `Connection: close` — the `/events` tail ends with the connection.
pub fn start_chunked(stream: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Write one non-empty chunk (empty input is skipped: a zero-length
/// chunk would terminate the stream).
pub fn write_chunk(stream: &mut impl Write, data: &str) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n{}\r\n", data.len(), data)?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(stream: &mut impl Write) -> io::Result<()> {
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

/// A fetched response: status code, headers, and decoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body with `Content-Length` or chunked framing removed.
    pub body: String,
}

impl Response {
    /// The first header named `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Read one response (status line, headers, framed body) from `reader`.
/// With `head_only` the body is not read even if `Content-Length` says
/// one would follow (the `HEAD` client side). For chunked bodies a
/// read timeout mid-stream keeps what already arrived (the `/events`
/// client behaviour).
fn read_response(reader: &mut impl BufRead, head_only: bool) -> io::Result<Response> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line: {status_line:?}"))
        })?;

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "transfer-encoding" {
                chunked = value == "chunked";
            }
            headers.push((name, value));
        }
    }

    let mut body = String::new();
    if head_only {
        // A HEAD answer carries headers only; nothing more to read.
    } else if chunked {
        // Tolerate timeouts mid-stream: keep what we have.
        if let Err(e) = read_chunked(reader, &mut body) {
            if !matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                return Err(e);
            }
        }
    } else if let Some(len) = content_length {
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        body = String::from_utf8_lossy(&buf).into_owned();
    } else {
        reader.read_to_string(&mut body)?;
    }
    Ok(Response { status, headers, body })
}

/// Blocking `GET {path}` against `addr` with per-operation `timeout`,
/// one connection per call (`Connection: close`). Decodes both
/// `Content-Length` and chunked bodies; for chunked streams that
/// outlive the timeout (e.g. `/events` on a live run), returns whatever
/// arrived before the socket timed out.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    write!(writer, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    writer.flush()?;
    read_response(&mut BufReader::new(stream), false)
}

/// A persistent keep-alive connection issuing sequential requests: the
/// client side of the server's worker-pool keep-alive path, used by the
/// `obs_bench` load generator and the storm tests. Every request
/// announces `Connection: keep-alive`; the connection stays usable as
/// long as the server honours it.
pub struct HttpClient {
    addr: SocketAddr,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connect to `addr` with `timeout` applying to the connect and to
    /// every subsequent read/write.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient { addr, writer, reader: BufReader::new(stream) })
    }

    /// Issue `{method} {path}` on the persistent connection and read
    /// the full response. `HEAD` responses are read as headers-only.
    pub fn request(&mut self, method: &str, path: &str) -> io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr
        )?;
        self.writer.flush()?;
        read_response(&mut self.reader, method == "HEAD")
    }

    /// Issue `GET {path}` on the persistent connection.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path)
    }
}

fn read_chunked(reader: &mut impl BufRead, body: &mut String) -> io::Result<()> {
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Ok(());
        }
        let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad chunk size: {size_line:?}"))
        })?;
        if size == 0 {
            let mut trailer = String::new();
            let _ = reader.read_line(&mut trailer);
            return Ok(());
        }
        let mut buf = vec![0u8; size];
        reader.read_exact(&mut buf)?;
        body.push_str(&String::from_utf8_lossy(&buf));
        let mut crlf = String::new();
        reader.read_line(&mut crlf)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_line_parses_and_headers_are_drained() {
        let raw = "GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(
            req,
            Request { method: "GET".into(), path: "/metrics".into(), keep_alive: true }
        );
        assert!(read_request(&mut Cursor::new("")).unwrap().is_none(), "EOF is a clean close");
        let err = read_request(&mut Cursor::new("nonsense\r\n\r\n")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "malformed lines are 400 material");
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_connection() {
        let parse = |raw: &str| read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert!(parse("GET / HTTP/1.1\r\n\r\n").keep_alive, "1.1 defaults to keep-alive");
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").keep_alive, "1.0 defaults to close");
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(parse("HEAD / HTTP/1.1\r\nConnection: Upgrade\r\n\r\n").keep_alive);
    }

    #[test]
    fn response_opts_control_framing() {
        let mut buf = Vec::new();
        let n = write_response_with(
            &mut buf,
            503,
            "text/plain",
            "busy\n",
            ResponseOpts { keep_alive: false, head_only: false, retry_after: Some(1) },
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n, 5);
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("busy\n"));

        let mut buf = Vec::new();
        let n = write_response_with(
            &mut buf,
            200,
            "text/plain",
            "would-be body",
            ResponseOpts { keep_alive: true, head_only: true, retry_after: None },
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n, 0, "HEAD writes no body bytes");
        assert!(text.contains("Content-Length: 13\r\n"), "HEAD still announces the length");
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body follows the head");
    }

    #[test]
    fn responses_roundtrip_through_the_client_decoder() {
        // Serve a fixed-length and a chunked body over a real socket pair
        // so http_get exercises its full path.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let req = read_request(&mut BufReader::new(s.try_clone().unwrap()))
                    .unwrap()
                    .unwrap();
                if req.path == "/plain" {
                    write_response(&mut s, 200, "text/plain", "hello daos").unwrap();
                } else {
                    start_chunked(&mut s, "application/jsonl").unwrap();
                    write_chunk(&mut s, "{\"a\":1}\n").unwrap();
                    write_chunk(&mut s, "").unwrap();
                    write_chunk(&mut s, "{\"b\":2}\n").unwrap();
                    finish_chunked(&mut s).unwrap();
                }
            }
        });
        let t = Duration::from_secs(5);
        let plain = http_get(addr, "/plain", t).unwrap();
        assert_eq!((plain.status, plain.body.as_str()), (200, "hello daos"));
        assert_eq!(plain.header("content-length"), Some("10"));
        let chunked = http_get(addr, "/chunked", t).unwrap();
        assert_eq!(chunked.body, "{\"a\":1}\n{\"b\":2}\n");
        server.join().unwrap();
    }

    #[test]
    fn persistent_client_reuses_one_connection() {
        // A tiny keep-alive server: one accepted connection, many
        // requests answered on it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut served = 0u32;
            while let Some(req) = read_request(&mut reader).unwrap() {
                served += 1;
                let body = format!("#{served} {} {}", req.method, req.path);
                write_response_with(
                    &mut writer,
                    200,
                    "text/plain",
                    &body,
                    ResponseOpts {
                        keep_alive: req.keep_alive,
                        head_only: req.method == "HEAD",
                        retry_after: None,
                    },
                )
                .unwrap();
                if !req.keep_alive {
                    break;
                }
            }
            served
        });
        let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
        for i in 1..=5 {
            let resp = client.get("/x").unwrap();
            assert_eq!((resp.status, resp.body.as_str()), (200, format!("#{i} GET /x").as_str()));
        }
        let head = client.request("HEAD", "/x").unwrap();
        assert_eq!(head.status, 200);
        assert!(head.body.is_empty(), "HEAD bodies are empty");
        assert_eq!(head.header("content-length"), Some("10"), "#6 HEAD /x is 10 bytes");
        drop(client);
        assert_eq!(server.join().unwrap(), 6, "one connection served every request");
    }
}
