//! Just enough HTTP/1.1 on `std::net` for the observability plane: a
//! request-line parser and response writers for the server side, and a
//! blocking `GET` client (with chunked-transfer decoding) used by
//! `daos top ADDR`, the integration tests, and the `obs-get` smoke
//! helper — no external dependencies anywhere.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed request head. Headers beyond the request line are read and
/// discarded — the observability endpoints key on method + path only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET`, `HEAD`, ...).
    pub method: String,
    /// Request target path including any query string.
    pub path: String,
}

/// Read one request head from `reader`. Returns `None` on a clean EOF
/// before any bytes (client closed an idle connection).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut words = line.split_whitespace();
    let (method, path) = match (words.next(), words.next(), words.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    let request = Request { method: method.to_string(), path: path.to_string() };
    // Drain headers up to the blank line; we don't interpret them.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            return Ok(Some(request));
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    }
}

/// Write a complete response with a `Content-Length` body.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status,
        status_text(status),
        content_type,
        body.len(),
        body
    )?;
    stream.flush()
}

/// Start a chunked response; follow with [`write_chunk`] calls and a
/// final [`finish_chunked`].
pub fn start_chunked(stream: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Write one non-empty chunk (empty input is skipped: a zero-length
/// chunk would terminate the stream).
pub fn write_chunk(stream: &mut impl Write, data: &str) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n{}\r\n", data.len(), data)?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(stream: &mut impl Write) -> io::Result<()> {
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

/// A fetched response: status code and decoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body with `Content-Length` or chunked framing removed.
    pub body: String,
}

/// Blocking `GET {path}` against `addr` with per-operation `timeout`.
/// Decodes both `Content-Length` and chunked bodies; for chunked streams
/// that outlive the timeout (e.g. `/events` on a live run), returns
/// whatever arrived before the socket timed out.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    write!(writer, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line: {status_line:?}"))
        })?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().ok();
        } else if let Some(v) = lower.strip_prefix("transfer-encoding:") {
            chunked = v.trim() == "chunked";
        }
    }

    let mut body = String::new();
    if chunked {
        // Tolerate timeouts mid-stream: keep what we have.
        if let Err(e) = read_chunked(&mut reader, &mut body) {
            if !matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                return Err(e);
            }
        }
    } else if let Some(len) = content_length {
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        body = String::from_utf8_lossy(&buf).into_owned();
    } else {
        reader.read_to_string(&mut body)?;
    }
    Ok(Response { status, body })
}

fn read_chunked(reader: &mut impl BufRead, body: &mut String) -> io::Result<()> {
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Ok(());
        }
        let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad chunk size: {size_line:?}"))
        })?;
        if size == 0 {
            let mut trailer = String::new();
            let _ = reader.read_line(&mut trailer);
            return Ok(());
        }
        let mut buf = vec![0u8; size];
        reader.read_exact(&mut buf)?;
        body.push_str(&String::from_utf8_lossy(&buf));
        let mut crlf = String::new();
        reader.read_line(&mut crlf)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_line_parses_and_headers_are_drained() {
        let raw = "GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req, Request { method: "GET".into(), path: "/metrics".into() });
        assert!(read_request(&mut Cursor::new("")).unwrap().is_none(), "EOF is a clean close");
        assert!(read_request(&mut Cursor::new("nonsense\r\n\r\n")).is_err());
    }

    #[test]
    fn responses_roundtrip_through_the_client_decoder() {
        // Serve a fixed-length and a chunked body over a real socket pair
        // so http_get exercises its full path.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let req = read_request(&mut BufReader::new(s.try_clone().unwrap()))
                    .unwrap()
                    .unwrap();
                if req.path == "/plain" {
                    write_response(&mut s, 200, "text/plain", "hello daos").unwrap();
                } else {
                    start_chunked(&mut s, "application/jsonl").unwrap();
                    write_chunk(&mut s, "{\"a\":1}\n").unwrap();
                    write_chunk(&mut s, "").unwrap();
                    write_chunk(&mut s, "{\"b\":2}\n").unwrap();
                    finish_chunked(&mut s).unwrap();
                }
            }
        });
        let t = Duration::from_secs(5);
        let plain = http_get(addr, "/plain", t).unwrap();
        assert_eq!((plain.status, plain.body.as_str()), (200, "hello daos"));
        let chunked = http_get(addr, "/chunked", t).unwrap();
        assert_eq!(chunked.body, "{\"a\":1}\n{\"b\":2}\n");
        server.join().unwrap();
    }
}
