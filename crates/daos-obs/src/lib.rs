//! # daos-obs — the live observability plane
//!
//! Everything needed to watch a DAOS simulation while it runs, built on
//! `std` only (per the workspace's hermetic zero-dependency rule):
//!
//! - [`snapshot::ObsSnapshot`] — one published view of a run: epoch
//!   progress, working-set estimate, the latest aggregation window,
//!   per-scheme stats, monitoring overhead, and a full metrics-registry
//!   snapshot; JSON-round-trippable via `daos-util`.
//! - [`publisher::Publisher`] — the shared state between the simulation
//!   thread and any number of readers. Publishing is an `Arc` swap;
//!   readers clone the `Arc` and always see an internally consistent
//!   snapshot. A bounded event tail with global sequence numbers feeds
//!   live `/events` subscribers.
//! - [`publisher::EpochPublisher`] — the [`daos::RunObserver`] that
//!   builds and publishes snapshots every N epochs from inside the run
//!   loop (and a final one via
//!   [`finalize`](publisher::EpochPublisher::finalize)).
//! - [`server::ObsServer`] — an HTTP/1.1 endpoint on
//!   `std::net::TcpListener` built on a bounded `daos_util::pool`
//!   worker pool multiplexing keep-alive connections, serving
//!   `GET /metrics` (Prometheus text exposition, including the
//!   server's own `daos_obs_http_*{endpoint=...}` telemetry),
//!   `/snapshot` (JSON), `/events` (chunked live JSONL), `/healthz`,
//!   and `/statusz` (the server's own state as JSON). Saturation is
//!   explicit: past [`server::ObsConfig::max_connections`] the accept
//!   loop answers `503` with `Retry-After`.
//! - [`history::MetricHistory`] — the embedded time-series store behind
//!   `GET /query`: every publish is flattened into prometheus-style
//!   series (labels included) and retained in fixed-capacity rings with
//!   tiered raw → 10-sample → 100-sample rollup downsampling.
//! - [`alert::AlertEngine`] — threshold / rate-of-change rules
//!   ([`alert::AlertRule`], builder-validated) evaluated on every
//!   publish with hysteresis; states serve on `GET /alerts`, export as
//!   `daos_alert_state{rule=…}`, and transitions stream on `/events`.
//! - [`top::Dashboard`] — the `daos top` frame renderer (WSS sparkline,
//!   hottest regions, scheme quota state, span p50/p95), backfilling
//!   its sparkline from `/query` when watching a remote server.
//! - [`http::http_get`] / [`http::HttpClient`] — the std-only blocking
//!   clients (one-shot and persistent keep-alive) used by `daos top
//!   ADDR`, the tests, the `obs_bench` load generator, and the
//!   `obs-get` verify helper.
//!
//! The whole plane is opt-in: without `--serve`, `daos run` never
//! constructs a publisher and the run loop's observation hook stays a
//! single untaken branch.

pub mod alert;
pub mod history;
pub mod http;
pub mod prom;
pub mod publisher;
pub mod server;
pub mod snapshot;
pub mod top;

pub use alert::{default_rules, AlertEngine, AlertError, AlertKind, AlertRule, AlertState, AlertStatus};
pub use history::{Agg, MetricHistory, QueryResult};
pub use http::{http_get, HttpClient};
pub use publisher::{EpochPublisher, FleetPublisher, Publisher, DEFAULT_TAIL_CAPACITY};
pub use server::{Endpoint, ObsConfig, ObsServer};
pub use snapshot::ObsSnapshot;
pub use top::Dashboard;
