//! Load-shaped integration tests for the worker-pool obs server: a
//! keep-alive client storm whose client-side request count is
//! equality-pinned to the server's `daos_obs_http_requests_total`
//! self-telemetry, explicit 503 backpressure at saturation, shutdown
//! under live load, and an `/events` streamer that frees its pump when
//! the client vanishes mid-stream.

use daos_obs::http::{http_get, HttpClient};
use daos_obs::{prom, Endpoint, ObsConfig, ObsServer, ObsSnapshot, Publisher};
use std::thread;
use std::time::{Duration, Instant};

const T: Duration = Duration::from_secs(10);

fn serve(cfg: ObsConfig) -> (ObsServer, Publisher) {
    let publisher = Publisher::new();
    publisher.publish(ObsSnapshot { seq: 1, epoch: 4, nr_epochs: 8, ..Default::default() });
    let server = ObsServer::bind_with("127.0.0.1:0", publisher.clone(), cfg).unwrap();
    (server, publisher)
}

/// Poll `cond` until it holds or `deadline` elapses.
fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn keepalive_storm_counts_match_client_side_exactly() {
    const CLIENTS: usize = 12;
    const REQUESTS: usize = 20;
    let (server, _publisher) = serve(ObsConfig { workers: 4, ..Default::default() });
    let addr = server.addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            thread::spawn(move || {
                let mut client = HttpClient::connect(addr, T).unwrap();
                let mut ok = 0usize;
                for _ in 0..REQUESTS {
                    let resp = client.get("/snapshot").unwrap();
                    assert_eq!(resp.status, 200);
                    assert!(!resp.body.is_empty());
                    ok += 1;
                }
                ok
            })
        })
        .collect();
    let client_side: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(client_side, CLIENTS * REQUESTS, "every storm request succeeded");

    // The server's own count is *equal* to the client-side count — no
    // lost or double-counted requests.
    assert_eq!(server.requests_total(Endpoint::Snapshot), client_side as u64);
    // Each connection's 2nd..Nth request is a keep-alive reuse.
    assert_eq!(server.keepalive_reuse_total(), (CLIENTS * (REQUESTS - 1)) as u64);
    assert_eq!(server.rejected_total(), 0, "default bound admits the whole storm");

    // And the same number self-reports through /metrics as the
    // daos_obs_http_* label family.
    let metrics = http_get(addr, "/metrics", T).unwrap();
    assert_eq!(metrics.status, 200);
    let samples = prom::parse_exposition(&metrics.body).unwrap();
    let snapshot_total = samples
        .iter()
        .find(|s| {
            s.name == "daos_obs_http_requests_total"
                && s.labels == vec![("endpoint".to_string(), "snapshot".to_string())]
        })
        .expect("snapshot family present");
    assert_eq!(snapshot_total.value, client_side as f64);
    // The latency histogram family saw the same traffic.
    let hist_count = samples
        .iter()
        .find(|s| {
            s.name == "daos_obs_http_request_ns_count"
                && s.labels == vec![("endpoint".to_string(), "snapshot".to_string())]
        })
        .expect("latency family present");
    assert_eq!(hist_count.value, client_side as f64);
}

#[test]
fn saturation_returns_503_with_retry_after_then_recovers() {
    let (server, _publisher) = serve(ObsConfig {
        workers: 2,
        max_connections: 2,
        ..Default::default()
    });
    let addr = server.addr();

    // Two keep-alive clients occupy the whole admission budget.
    let mut a = HttpClient::connect(addr, T).unwrap();
    let mut b = HttpClient::connect(addr, T).unwrap();
    assert_eq!(a.get("/healthz").unwrap().status, 200);
    assert_eq!(b.get("/healthz").unwrap().status, 200);
    assert_eq!(server.in_flight(), 2);

    // The next connection is answered 503 + Retry-After, not hung.
    let resp = http_get(addr, "/healthz", T).unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(server.rejected_total() >= 1);

    // Still saturated: the held connections keep working the whole time.
    assert_eq!(a.get("/snapshot").unwrap().status, 200);

    // Releasing one admits new clients again once the server reaps it.
    drop(b);
    assert!(
        eventually(T, || matches!(http_get(addr, "/healthz", T), Ok(r) if r.status == 200)),
        "a freed slot re-admits connections"
    );
}

#[test]
fn shutdown_under_live_load_joins_cleanly() {
    let (mut server, _publisher) = serve(ObsConfig { workers: 3, ..Default::default() });
    let addr = server.addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                // Hammer until the server goes away; short timeouts keep
                // the post-shutdown error prompt.
                let timeout = Duration::from_secs(2);
                let mut served = 0usize;
                loop {
                    let Ok(mut client) = HttpClient::connect(addr, timeout) else { break };
                    loop {
                        match client.get("/metrics") {
                            Ok(resp) if resp.status == 200 => served += 1,
                            _ => break,
                        }
                    }
                }
                served
            })
        })
        .collect();

    // Let the storm build, then pull the plug mid-flight.
    assert!(eventually(T, || server.requests_total(Endpoint::Metrics) > 20));
    server.shutdown();
    let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 20, "the storm was really in flight: {total}");
    assert!(http_get(addr, "/healthz", Duration::from_millis(500)).is_err());
}

#[test]
fn events_client_vanishing_mid_stream_frees_the_pump() {
    use daos_trace::{Collector, Event};
    // One worker: if the dead stream pinned it forever, nothing else
    // could ever be served.
    let (server, publisher) = serve(ObsConfig { workers: 1, ..Default::default() });
    let addr = server.addr();

    let mut c = Collector::builder().ring_capacity(64).build().unwrap();
    let mut at = 0u64;
    c.record(at, Event::RegionSplit { before: 0, after: 1 });
    publisher.sync_ring(c.ring());

    // Open a raw /events stream, read the response head, then vanish.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(T)).unwrap();
        raw.write_all(b"GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut head = [0u8; 64];
        let n = raw.read(&mut head).unwrap();
        assert!(n > 0, "stream started");
    } // dropped: client is gone, server doesn't know yet

    assert!(
        eventually(T, || {
            // Fresh events force the streamer to write into the dead
            // socket; the write error closes it and frees the pump.
            at += 1;
            c.record(at, Event::RegionSplit { before: at, after: at + 1 });
            publisher.sync_ring(c.ring());
            server.in_flight() == 0
        }),
        "write error reaps the dead stream"
    );
    // The single worker is live again.
    let resp = http_get(addr, "/healthz", T).unwrap();
    assert_eq!((resp.status, resp.body.as_str()), (200, "ok\n"));
    assert_eq!(server.requests_total(Endpoint::Events), 1, "the dead stream was recorded");
}
