//! End-to-end pin of the observability plane: a real workload run with
//! the collector installed, published through an [`ObsServer`] on an
//! ephemeral port, scraped back over HTTP — and the scraped counters
//! must **equal** the end-of-run `OverheadStats`, not merely resemble
//! them.

use std::time::Duration;

use daos::{run_observed, RunConfig};
use daos_mm::MachineProfile;
use daos_obs::http::http_get;
use daos_obs::prom::{parse_exposition, Sample};
use daos_obs::{EpochPublisher, ObsServer, ObsSnapshot, Publisher};
use daos_util::json::{FromJson, ToJson};
use daos_workloads::by_path;

const TIMEOUT: Duration = Duration::from_secs(10);

fn sample<'a>(samples: &'a [Sample], name: &str) -> &'a Sample {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
}

#[test]
fn live_endpoints_agree_with_the_finished_run() {
    // A short but real monitored run, observed epoch by epoch.
    let machine = MachineProfile::i3_metal();
    let config = RunConfig::rec();
    let mut spec = by_path("parsec3/freqmine").expect("workload exists");
    spec.nr_epochs = 120;

    daos_trace::install(daos_trace::Collector::builder().build().unwrap())
        .expect("no collector leaked from another test in this binary");
    let publisher = Publisher::new();
    let mut server =
        ObsServer::bind("127.0.0.1:0", publisher.clone()).expect("bind ephemeral port");
    let mut obs = EpochPublisher::new(publisher, &config.name, &spec.path_name(), &machine.name, 1);

    let result = run_observed(&machine, &config, &spec, 42, Some(&mut obs)).expect("run");
    obs.finalize(&result);
    let collector = daos_trace::take().expect("collector still installed");
    let overhead = result.overhead.expect("rec config monitors");

    // /healthz answers.
    let health = http_get(server.addr(), "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    // /metrics is valid Prometheus text: every line is # HELP, # TYPE,
    // or `name{labels} value` — parse_exposition rejects anything else.
    let metrics = http_get(server.addr(), "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    let samples = parse_exposition(&metrics.body).expect("exposition parses");
    assert!(!samples.is_empty());

    // The equality pin: the live counters ARE the run's own accounting.
    assert_eq!(sample(&samples, "daos_monitor_work_ns").value, overhead.work_ns as f64);
    assert_eq!(sample(&samples, "daos_obs_epoch").value, (spec.nr_epochs - 1) as f64);
    assert_eq!(sample(&samples, "daos_obs_finished").value, 1.0);
    assert_eq!(
        sample(&samples, "daos_obs_dropped_events").value,
        collector.ring().dropped() as f64
    );

    // /snapshot round-trips through the in-tree JSON codec.
    let snapshot = http_get(server.addr(), "/snapshot", TIMEOUT).expect("snapshot");
    assert_eq!(snapshot.status, 200);
    let json = daos_util::json::parse(&snapshot.body).expect("snapshot body is JSON");
    let snap = ObsSnapshot::from_json(&json).expect("snapshot decodes");
    assert!(snap.finished);
    assert_eq!(snap.workload, spec.path_name());
    assert_eq!(snap.config, config.name);
    assert_eq!(snap.overhead, Some(overhead));
    assert_eq!(snap.to_json().to_string_compact(), json.to_string_compact());

    // /events is a finite JSONL stream once the run has finished, and
    // every line is a decodable event.
    let events = http_get(server.addr(), "/events", TIMEOUT).expect("events");
    assert_eq!(events.status, 200);
    let lines: Vec<&str> = events.body.lines().collect();
    assert!(!lines.is_empty(), "a monitored run publishes events");
    for line in &lines {
        let ev = daos_util::json::parse(line).expect("event line is JSON");
        daos_trace::TimedEvent::from_json(&ev).expect("event line decodes");
    }

    // Unknown paths 404, without wedging the server.
    let missing = http_get(server.addr(), "/nope", TIMEOUT).expect("404 path");
    assert_eq!(missing.status, 404);

    server.shutdown();
}

#[test]
fn serve_free_run_allocates_no_publisher() {
    // The zero-overhead pin from the CLI side: a plain `run()` touches
    // neither collector nor publisher, so global trace state stays off.
    let machine = MachineProfile::i3_metal();
    let mut spec = by_path("parsec3/freqmine").expect("workload exists");
    spec.nr_epochs = 40;
    assert!(!daos_trace::enabled());
    let result = daos::run(&machine, &RunConfig::baseline(), &spec, 7).expect("run");
    assert!(result.runtime_ns > 0);
    assert!(!daos_trace::enabled(), "plain runs must not install a collector");
}
