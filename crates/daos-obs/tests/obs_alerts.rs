//! End-to-end alerting: a deliberately overflowed trace ring drives the
//! default `trace_ring_drop_rate` rule through its full hysteresis
//! cycle (ok → pending → firing → resolved → ok), the transitions
//! stream on `/events` as first-class trace events, `/query` serves the
//! series that crossed the threshold, and `/alerts` reports the rule.

use daos_obs::http::http_get;
use daos_obs::{ObsServer, ObsSnapshot, Publisher};
use daos_trace::{AlertStateTag, Collector, Event, TimedEvent};
use daos_util::json::{FromJson, Json};
use std::time::Duration;

const T: Duration = Duration::from_secs(10);

#[test]
fn ring_overflow_fires_and_resolves_the_drop_rate_alert() {
    let publisher = Publisher::new();
    publisher.install_default_rules();
    let server = ObsServer::bind("127.0.0.1:0", publisher.clone()).unwrap();
    let addr = server.addr();

    // A ring far too small for the workload: everything past 16 drops.
    let mut c = Collector::builder().ring_capacity(16).build().unwrap();
    let publish = |seq: u64, c: &Collector| {
        publisher.sync_ring(c.ring());
        publisher.publish(ObsSnapshot {
            seq,
            now_ns: seq * 1_000_000_000,
            dropped_events: c.ring().dropped(),
            ..Default::default()
        });
    };

    publish(1, &c); // baseline: no drops yet
    for at in 0..40u64 {
        c.record(at, Event::RegionSplit { before: at, after: at + 1 });
    }
    assert!(c.ring().dropped() > 0, "the ring must actually overflow");
    publish(2, &c); // drop rate goes positive -> pending
    for at in 40..64u64 {
        c.record(at, Event::RegionSplit { before: at, after: at + 1 });
    }
    publish(3, &c); // second breached interval -> firing
    publish(4, &c); // drops flat again -> resolved
    publish(5, &c); // still flat -> back to ok
    publisher.finish();

    // /alerts knows the rule and the cycle's transition count.
    let alerts = http_get(addr, "/alerts", T).unwrap();
    assert_eq!(alerts.status, 200);
    assert!(alerts.body.contains("\"rule\":\"trace_ring_drop_rate\""), "{}", alerts.body);
    assert!(alerts.body.contains("\"transitions\":4"), "{}", alerts.body);

    // /events carries the four transitions, in order, exactly once.
    let events = http_get(addr, "/events", T).unwrap();
    assert_eq!(events.status, 200);
    let mut transitions = Vec::new();
    for line in events.body.lines() {
        let ev = TimedEvent::from_json(&daos_util::json::parse(line).unwrap()).unwrap();
        if let Event::AlertTransition { from, to, value, .. } = ev.event {
            transitions.push((from, to, value));
        }
    }
    let cycle: Vec<(AlertStateTag, AlertStateTag)> =
        transitions.iter().map(|(f, t, _)| (*f, *t)).collect();
    assert_eq!(
        cycle,
        vec![
            (AlertStateTag::Ok, AlertStateTag::Pending),
            (AlertStateTag::Pending, AlertStateTag::Firing),
            (AlertStateTag::Firing, AlertStateTag::Resolved),
            (AlertStateTag::Resolved, AlertStateTag::Ok),
        ],
        "{}",
        events.body
    );
    // The firing transition carries the positive drop rate that drove it.
    assert!(transitions[1].2 > 0.0, "{transitions:?}");

    // /query serves the series that crossed: flat, rising, flat again.
    let resp =
        http_get(addr, "/query?metric=daos_obs_dropped_events&agg=last", T).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = daos_util::json::parse(&resp.body).unwrap();
    let Some(Json::Array(points)) = v.get("points") else {
        panic!("points missing: {}", resp.body);
    };
    let values: Vec<f64> = points
        .iter()
        .map(|p| match p {
            Json::Array(pair) => match pair[1] {
                Json::F64(v) => v,
                ref other => panic!("non-f64 value: {other:?}"),
            },
            other => panic!("non-pair point: {other:?}"),
        })
        .collect();
    assert_eq!(values.len(), 5, "{}", resp.body);
    assert_eq!(values[0], 0.0);
    assert!(values[1] > 0.0 && values[2] > values[1], "rising: {values:?}");
    assert_eq!(values[3], values[2], "flat after: {values:?}");
    assert_eq!(values[4], values[3], "flat after: {values:?}");
}
