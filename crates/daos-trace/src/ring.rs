//! Fixed-capacity event ring. When full, the oldest event is overwritten
//! and a drop counter is bumped — tracing never blocks or grows without
//! bound, matching the kernel tracepoint ring-buffer contract.

use crate::event::TimedEvent;
use std::collections::VecDeque;

/// A bounded FIFO of [`TimedEvent`]s with an overwrite-oldest policy.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    /// A ring holding at most `capacity` events (`capacity` ≥ 1 is
    /// enforced by [`crate::CollectorBuilder::build`]).
    pub fn new(capacity: usize) -> Self {
        Ring { buf: VecDeque::with_capacity(capacity.min(1 << 20)), capacity, dropped: 0 }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TimedEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Copy out the surviving events, oldest first.
    pub fn to_vec(&self) -> Vec<TimedEvent> {
        self.buf.iter().copied().collect()
    }

    /// Total events ever pushed (surviving + overwritten). Monotonic, so
    /// a live consumer can use it as a cursor: the surviving events are
    /// exactly sequence numbers `total_pushed() - len() .. total_pushed()`.
    pub fn total_pushed(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Copy out the newest `n` surviving events, oldest first — the tail
    /// API live consumers (the observability publisher) poll so they only
    /// pay for events emitted since their last visit.
    pub fn tail(&self, n: usize) -> Vec<TimedEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(at: u64) -> TimedEvent {
        TimedEvent { at, event: Event::RegionSplit { before: at, after: at + 1 } }
    }

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut r = Ring::new(3);
        for at in 0..5 {
            r.push(ev(at));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ats: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest events are the ones evicted");
    }

    #[test]
    fn tail_and_total_pushed_give_a_stable_cursor() {
        let mut r = Ring::new(4);
        for at in 0..6 {
            r.push(ev(at));
        }
        assert_eq!(r.total_pushed(), 6);
        let ats: Vec<u64> = r.tail(2).iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![4, 5], "tail returns the newest events, oldest first");
        assert_eq!(r.tail(100).len(), 4, "tail clamps to the surviving window");
        assert_eq!(r.tail(0).len(), 0);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut r = Ring::new(8);
        for at in 0..5 {
            r.push(ev(at));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 8);
    }
}
