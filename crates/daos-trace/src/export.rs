//! JSONL export/import of event logs, built on `daos_util::json`. One
//! `TimedEvent` object per line; `#`-prefixed header lines carry run
//! metadata and are skipped on re-parse (the `parse_lines` convention
//! shared with record files).

use crate::collector::Collector;
use crate::event::TimedEvent;
use crate::TraceError;
use daos_util::json::{parse_lines, FromJson, ToJson};

/// Encode events as JSONL, one object per line (trailing newline).
pub fn events_to_jsonl<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Decode a JSONL event log, skipping blank and `#` comment lines.
pub fn events_from_jsonl(text: &str) -> Result<Vec<TimedEvent>, TraceError> {
    let values = parse_lines(text)?;
    values
        .iter()
        .map(|v| TimedEvent::from_json(v).map_err(TraceError::from))
        .collect()
}

/// Render a collector's full state as a self-describing JSONL document:
/// a `#` header with ring occupancy and drop count, the event stream,
/// and a final `#`-prefixed metrics snapshot. The whole document feeds
/// back through [`events_from_jsonl`] unchanged.
pub fn export_collector(c: &Collector) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# daos-trace v1: {} events, {} dropped (ring capacity {})\n",
        c.ring().len(),
        c.ring().dropped(),
        c.ring().capacity(),
    ));
    out.push_str(&events_to_jsonl(c.ring().iter()));
    out.push_str(&format!("# metrics: {}\n", c.registry().to_json().to_string_compact()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActionTag, Event};

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent { at: 0, event: Event::PageFault { pid: 1, addr: 0x7f00_0000, major: true } },
            TimedEvent { at: 100, event: Event::SamplingTick { checks: 40, nr_regions: 20, work_ns: 1600 } },
            TimedEvent {
                at: 200,
                event: Event::SchemeApply { scheme: 0, action: ActionTag::Pageout, bytes: 1 << 21 },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = sample_events();
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let back = events_from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn export_document_reparses() {
        let mut c = Collector::builder().ring_capacity(16).build().unwrap();
        for e in sample_events() {
            c.record(e.at, e.event);
        }
        let doc = export_collector(&c);
        assert!(doc.starts_with("# daos-trace v1: 3 events"));
        let back = events_from_jsonl(&doc).unwrap();
        assert_eq!(back, c.events(), "header/metrics comments must not disturb re-parse");
    }

    #[test]
    fn bad_line_is_a_typed_error() {
        let err = events_from_jsonl("{\"at\":1,\"event\":{\"Nope\":{}}}\n").unwrap_err();
        assert!(err.to_string().contains("unknown event"));
    }
}
