//! JSONL export/import of event logs, built on `daos_util::json`. One
//! `TimedEvent` object per line; `#`-prefixed header lines carry run
//! metadata and are skipped on re-parse (the `parse_lines` convention
//! shared with record files).

use crate::collector::Collector;
use crate::event::TimedEvent;
use crate::metrics::Registry;
use crate::TraceError;
use daos_util::json::{self, parse_lines, FromJson, Json, JsonError, ToJson};

/// Encode events as JSONL, one object per line (trailing newline).
pub fn events_to_jsonl<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Decode a JSONL event log, skipping blank and `#` comment lines.
pub fn events_from_jsonl(text: &str) -> Result<Vec<TimedEvent>, TraceError> {
    let values = parse_lines(text)?;
    values
        .iter()
        .map(|v| TimedEvent::from_json(v).map_err(TraceError::from))
        .collect()
}

/// Render a collector's full state as a self-describing JSONL document:
/// a `#` header with ring occupancy and drop count, the event stream,
/// and a final `#`-prefixed metrics snapshot. The whole document feeds
/// back through [`events_from_jsonl`] unchanged.
pub fn export_collector(c: &Collector) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# daos-trace v1: {} events, {} dropped (ring capacity {})\n",
        c.ring().len(),
        c.ring().dropped(),
        c.ring().capacity(),
    ));
    out.push_str(&events_to_jsonl(c.ring().iter()));
    // The trailer is the registry object with the ring's drop accounting
    // appended as sibling keys, so a consumer holding only the trailer
    // can still tell whether the recording is complete.
    let Json::Object(mut fields) = c.registry().to_json() else {
        // lint: allow(panic, Registry::to_json builds Json::Object unconditionally)
        unreachable!("Registry::to_json is always an object")
    };
    fields.push(("dropped_events".into(), c.ring().dropped().to_json()));
    fields.push(("ring_capacity".into(), (c.ring().capacity() as u64).to_json()));
    out.push_str(&format!("# metrics: {}\n", Json::Object(fields).to_string_compact()));
    out
}

/// A parsed export document: the structured form of what
/// [`export_collector`] wrote, used by `daos report` to analyse a
/// recording offline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// Events surviving in the ring at export time, oldest first.
    pub events: Vec<TimedEvent>,
    /// Events the ring overwrote before export (from the header; 0 in a
    /// complete recording).
    pub dropped: u64,
    /// Ring capacity the recording ran with (from the header).
    pub ring_capacity: u64,
    /// The exporter's metrics trailer, if present. This is the *live*
    /// registry — on a drop-free recording it equals a
    /// [`Collector::replay`] of `events`, and `report summary` uses that
    /// comparison as a corruption check.
    pub metrics: Option<Registry>,
}

impl TraceDoc {
    /// True when the ring never overwrote an event — every emitted event
    /// is present and derived views are exact.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }
}

/// Parse a full export document: the `# daos-trace v1:` header, the
/// event stream, and the `# metrics:` trailer. Header and trailer are
/// optional (a bare JSONL event log parses with zeroed accounting and no
/// metrics) so hand-trimmed traces remain readable.
pub fn parse_export(text: &str) -> Result<TraceDoc, TraceError> {
    let mut doc = TraceDoc { events: Vec::new(), dropped: 0, ring_capacity: 0, metrics: None };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# daos-trace v1:") {
            let (dropped, capacity) = parse_header_counts(rest)
                .ok_or_else(|| bad_line(lineno, "malformed header"))?;
            doc.dropped = dropped;
            doc.ring_capacity = capacity;
        } else if let Some(rest) = line.strip_prefix("# metrics:") {
            let v = json::parse(rest.trim()).map_err(TraceError::from)?;
            doc.metrics = Some(Registry::from_json(&v)?);
        } else if line.starts_with('#') {
            continue;
        } else {
            let v = json::parse(line).map_err(TraceError::from)?;
            doc.events.push(TimedEvent::from_json(&v)?);
        }
    }
    Ok(doc)
}

/// Pull `(dropped, ring_capacity)` out of the header tail
/// `" N events, D dropped (ring capacity C)"`.
fn parse_header_counts(rest: &str) -> Option<(u64, u64)> {
    let (_, after_events) = rest.split_once(" events, ")?;
    let (dropped, after_dropped) = after_events.split_once(" dropped")?;
    let capacity = after_dropped
        .trim()
        .strip_prefix("(ring capacity ")?
        .strip_suffix(')')?;
    Some((dropped.trim().parse().ok()?, capacity.parse().ok()?))
}

fn bad_line(lineno: usize, what: &str) -> TraceError {
    TraceError::Json(JsonError::msg(format!("line {}: {what}", lineno + 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActionTag, Event};

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent { at: 0, event: Event::PageFault { pid: 1, addr: 0x7f00_0000, major: true } },
            TimedEvent { at: 100, event: Event::SamplingTick { checks: 40, nr_regions: 20, work_ns: 1600 } },
            TimedEvent {
                at: 200,
                event: Event::SchemeApply { scheme: 0, action: ActionTag::Pageout, bytes: 1 << 21 },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = sample_events();
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let back = events_from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn export_document_reparses() {
        let mut c = Collector::builder().ring_capacity(16).build().unwrap();
        for e in sample_events() {
            c.record(e.at, e.event);
        }
        let doc = export_collector(&c);
        assert!(doc.starts_with("# daos-trace v1: 3 events"));
        let back = events_from_jsonl(&doc).unwrap();
        assert_eq!(back, c.events(), "header/metrics comments must not disturb re-parse");
    }

    #[test]
    fn bad_line_is_a_typed_error() {
        let err = events_from_jsonl("{\"at\":1,\"event\":{\"Nope\":{}}}\n").unwrap_err();
        assert!(err.to_string().contains("unknown event"));
    }

    #[test]
    fn parse_export_recovers_events_metrics_and_accounting() {
        let mut c = Collector::builder().ring_capacity(2).build().unwrap();
        for e in sample_events() {
            c.record(e.at, e.event); // capacity 2 < 3 events → 1 drop
        }
        let doc = parse_export(&export_collector(&c)).unwrap();
        assert_eq!(doc.events, c.events());
        assert_eq!(doc.dropped, 1);
        assert_eq!(doc.ring_capacity, 2);
        assert!(!doc.is_complete());
        assert_eq!(doc.metrics.as_ref(), Some(c.registry()));
    }

    #[test]
    fn parse_export_replay_matches_trailer_when_complete() {
        let mut c = Collector::builder().ring_capacity(16).build().unwrap();
        for e in sample_events() {
            c.record(e.at, e.event);
        }
        let doc = parse_export(&export_collector(&c)).unwrap();
        assert!(doc.is_complete());
        let replayed = Collector::replay(&doc.events);
        assert_eq!(Some(replayed.registry()), doc.metrics.as_ref());
    }

    #[test]
    fn parse_export_accepts_bare_jsonl() {
        let text = events_to_jsonl(&sample_events());
        let doc = parse_export(&text).unwrap();
        assert_eq!(doc.events.len(), 3);
        assert_eq!((doc.dropped, doc.ring_capacity), (0, 0));
        assert!(doc.metrics.is_none());
    }

    #[test]
    fn parse_export_rejects_garbled_header() {
        let err = parse_export("# daos-trace v1: what even is this\n").unwrap_err();
        assert!(err.to_string().contains("malformed header"), "{err}");
    }
}
