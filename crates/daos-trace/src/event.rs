//! The event taxonomy: one typed variant per tracepoint, grouped by the
//! layer that emits it. Events are plain `Copy` data — no strings, no
//! allocation on the emit path — and encode to JSON as the workspace's
//! usual `{"Variant": {fields...}}` tagged objects.

use daos_util::json::{self, FromJson, Json, JsonError, ToJson};
use daos_util::json_enum;

/// Virtual nanoseconds (mirrors `daos_mm::Ns` without depending on it —
/// `daos-trace` sits below every simulation crate).
pub type Ns = u64;

/// Process identifier (mirrors `daos_mm::Pid`).
pub type Pid = u32;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Memory-management core: faults, reclaim, THP, swap.
    Mm,
    /// Access monitor: sampling ticks, region split/merge, aggregation.
    Monitor,
    /// Operation schemes engine: applies, quotas, watermarks.
    Schemes,
    /// Auto-tuner: samples, refits, final step.
    Tuner,
    /// Observability plane: alert-rule state transitions.
    Obs,
}

json_enum!(Layer { Mm, Monitor, Schemes, Tuner, Obs });

/// Alert-rule state tag carried by [`Event::AlertTransition`]. Mirrors
/// `daos_obs::alert::AlertState` variant-for-variant (trace sits below
/// the obs crate in the crate DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertStateTag {
    /// Signal within bounds.
    Ok,
    /// Breached, not yet for the rule's `for_samples`.
    Pending,
    /// Breached long enough; the alert is active.
    Firing,
    /// Was firing; the breach just cleared.
    Resolved,
}

json_enum!(AlertStateTag { Ok, Pending, Firing, Resolved });

/// DAMOS action tag carried by [`Event::SchemeApply`]. Mirrors
/// `daos_schemes::Action` variant-for-variant; the schemes crate maps
/// into this when emitting (trace sits below it in the crate DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionTag {
    /// Count only (`stat`).
    Stat,
    /// Reclaim the region (`pageout`).
    Pageout,
    /// Promote to huge pages (`hugepage`).
    Hugepage,
    /// Demote huge pages (`nohugepage`).
    Nohugepage,
    /// Deactivate toward the LRU tail (`cold`).
    Cold,
    /// Pre-fault / swap in (`willneed`).
    Willneed,
    /// Move to the active LRU (`lru_prio`).
    LruPrio,
    /// Move to the inactive LRU (`lru_deprio`).
    LruDeprio,
}

json_enum!(ActionTag {
    Stat, Pageout, Hugepage, Nohugepage, Cold, Willneed, LruPrio, LruDeprio
});

/// Which tuner phase produced a [`Event::TunerSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePhase {
    /// Stratified sweep over the full parameter range.
    Global,
    /// Refinement around the current best.
    Local,
}

json_enum!(SamplePhase { Global, Local });

/// One of the five monitoring-pipeline phases a span can cover. Spans
/// carry **virtual** durations (the simulated CPU cost the phase
/// charged), so `report profile` is exactly as deterministic as the run
/// it profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Young-bit evaluation + next-sample preparation of one tick.
    Sample,
    /// Merge-with-aging, snapshot delivery and counter reset at an
    /// aggregation boundary.
    Aggregate,
    /// Adaptive region split after an aggregation boundary.
    SplitMerge,
    /// One schemes-engine pass over an aggregation window.
    SchemeApply,
    /// One complete auto-tuning procedure (sampling + fit + peak).
    TunerStep,
}

json_enum!(Phase { Sample, Aggregate, SplitMerge, SchemeApply, TunerStep });

impl Phase {
    /// All phases, in pipeline order (stable for reports).
    pub const ALL: [Phase; 5] =
        [Phase::Sample, Phase::Aggregate, Phase::SplitMerge, Phase::SchemeApply, Phase::TunerStep];

    /// The dotted-key fragment used for this phase's registry metrics
    /// (`span.sample_ns`, `span.scheme_apply_ns`, ...).
    pub fn key_name(&self) -> &'static str {
        match self {
            Phase::Sample => "sample",
            Phase::Aggregate => "aggregate",
            Phase::SplitMerge => "split_merge",
            Phase::SchemeApply => "scheme_apply",
            Phase::TunerStep => "tuner_step",
        }
    }

    /// The layer whose pipeline this phase belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            Phase::Sample | Phase::Aggregate | Phase::SplitMerge => Layer::Monitor,
            Phase::SchemeApply => Layer::Schemes,
            Phase::TunerStep => Layer::Tuner,
        }
    }
}

/// Defines [`Event`] plus its name/encode/decode plumbing in one place
/// so adding a tracepoint is a one-line change.
macro_rules! events {
    ($($(#[$meta:meta])* $variant:ident { $($field:ident : $ty:ty),* $(,)? }),+ $(,)?) => {
        /// A typed tracepoint event. See [`Layer`] for the grouping.
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub enum Event {
            $($(#[$meta])* $variant { $($field: $ty),* },)+
        }

        impl Event {
            /// The variant name (also the JSON tag).
            pub fn name(&self) -> &'static str {
                match self {
                    $(Event::$variant { .. } => stringify!($variant),)+
                }
            }
        }

        impl ToJson for Event {
            fn to_json(&self) -> Json {
                match self {
                    $(Event::$variant { $($field),* } => json::tagged(
                        stringify!($variant),
                        Json::Object(vec![
                            $((stringify!($field).to_string(), $field.to_json()),)*
                        ]),
                    ),)+
                }
            }
        }

        impl FromJson for Event {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let (tag, payload) = json::untag(v)?;
                match tag {
                    $(stringify!($variant) => Ok(Event::$variant {
                        $($field: payload.field(stringify!($field))?,)*
                    }),)+
                    other => Err(JsonError::msg(format!("unknown event '{other}'"))),
                }
            }
        }
    };
}

events! {
    // ---- mm ----
    /// A page fault was serviced (`major` = swap-in was required).
    PageFault { pid: Pid, addr: u64, major: bool },
    /// One pressure-reclaim batch (second-chance LRU scan).
    Reclaim { freed_pages: u64, scanned: u64, cost_ns: Ns },
    /// A resident page was unmapped to swap.
    SwapOut { pid: Pid, addr: u64 },
    /// A swapped page was brought back by a major fault.
    SwapIn { pid: Pid, addr: u64 },
    /// Huge-page promotion over a range (`chunks` 2 MiB chunks collapsed).
    ThpPromote { pid: Pid, chunks: u64 },
    /// Huge-page demotion (split); `freed_bytes` of bloat returned.
    ThpDemote { pid: Pid, freed_bytes: u64 },

    // ---- monitor ----
    /// One sampling tick: `checks` young-bit checks over `nr_regions`
    /// regions, costing `work_ns` of kernel time.
    SamplingTick { checks: u64, nr_regions: u64, work_ns: Ns },
    /// Adaptive split pass changed the region count.
    RegionSplit { before: u64, after: u64 },
    /// Merge pass (with aging) changed the region count.
    RegionMerge { before: u64, after: u64 },
    /// One region of an aggregation snapshot. A full window is the run
    /// of `RegionSnapshot` events since the previous [`Self::Aggregation`],
    /// committed by the `Aggregation` event that follows them — together
    /// they make the JSONL trace a faithful replay source for the
    /// Fig. 6 heatmap / WSS tooling.
    RegionSnapshot { start: u64, end: u64, nr_accesses: u64, age: u64 },
    /// An aggregation window closed with `nr_regions` snapshot regions
    /// (the commit marker for the preceding `RegionSnapshot` run).
    Aggregation { nr_regions: u64, window_ns: Ns, max_nr_accesses: u64 },

    // ---- schemes ----
    /// A scheme's predicate matched a region (counted as "tried").
    SchemeMatch { scheme: u32, bytes: u64 },
    /// A scheme action was applied to `bytes` of a matched region.
    SchemeApply { scheme: u32, action: ActionTag, bytes: u64 },
    /// A matched region was skipped because the quota was exhausted.
    QuotaThrottle { scheme: u32, skipped_bytes: u64 },
    /// The watermark state machine changed activation.
    WatermarkTransition { scheme: u32, active: bool, metric_permille: u64 },

    // ---- tuner ----
    /// One objective evaluation at `x`.
    TunerSample { x: f64, score: f64, phase: SamplePhase },
    /// The surrogate polynomial was refit over `nr_samples` points.
    TunerRefit { degree: u64, nr_samples: u64 },
    /// The tuner committed its final answer.
    TunerStep { best_x: f64, best_score: f64 },

    // ---- spans (cross-layer; see [`Phase`]) ----
    /// A pipeline phase began (paired with the next `SpanExit` of the
    /// same phase; emitted by [`span!`](crate::span)).
    SpanEnter { phase: Phase },
    /// A pipeline phase finished after `dur_ns` of virtual work.
    SpanExit { phase: Phase, dur_ns: Ns },

    // ---- obs ----
    /// An alert rule changed state (`rule` is its index in the installed
    /// rule set; `value` is the signal that drove the change).
    AlertTransition { rule: u32, from: AlertStateTag, to: AlertStateTag, value: f64 },
}

impl Event {
    /// The layer that emits this event.
    pub fn layer(&self) -> Layer {
        use Event::*;
        match self {
            PageFault { .. } | Reclaim { .. } | SwapOut { .. } | SwapIn { .. }
            | ThpPromote { .. } | ThpDemote { .. } => Layer::Mm,
            SamplingTick { .. } | RegionSplit { .. } | RegionMerge { .. }
            | RegionSnapshot { .. } | Aggregation { .. } => Layer::Monitor,
            SchemeMatch { .. } | SchemeApply { .. } | QuotaThrottle { .. }
            | WatermarkTransition { .. } => Layer::Schemes,
            TunerSample { .. } | TunerRefit { .. } | TunerStep { .. } => Layer::Tuner,
            SpanEnter { phase } | SpanExit { phase, .. } => phase.layer(),
            AlertTransition { .. } => Layer::Obs,
        }
    }
}

/// An [`Event`] stamped with the virtual time it was emitted at. This is
/// what the ring buffer stores and the JSONL exporter writes, one object
/// per line: `{"at":12345,"event":{"PageFault":{...}}}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Virtual time of emission (tuner events use the sample ordinal).
    pub at: Ns,
    /// The event payload.
    pub event: Event,
}

daos_util::json_struct!(TimedEvent { at, event });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches_json_tag() {
        let e = Event::RegionSplit { before: 10, after: 20 };
        let v = e.to_json();
        let (tag, _) = json::untag(&v).unwrap();
        assert_eq!(tag, e.name());
    }

    #[test]
    fn layer_covers_all_variants() {
        let samples = [
            (Event::PageFault { pid: 1, addr: 0x1000, major: true }, Layer::Mm),
            (Event::SamplingTick { checks: 7, nr_regions: 3, work_ns: 9 }, Layer::Monitor),
            (
                Event::SchemeApply { scheme: 0, action: ActionTag::Pageout, bytes: 4096 },
                Layer::Schemes,
            ),
            (
                Event::TunerSample { x: 0.5, score: 1.25, phase: SamplePhase::Local },
                Layer::Tuner,
            ),
            (
                Event::RegionSnapshot { start: 0, end: 4096, nr_accesses: 3, age: 1 },
                Layer::Monitor,
            ),
            (Event::SpanEnter { phase: Phase::Sample }, Layer::Monitor),
            (Event::SpanExit { phase: Phase::SchemeApply, dur_ns: 9 }, Layer::Schemes),
            (Event::SpanExit { phase: Phase::TunerStep, dur_ns: 9 }, Layer::Tuner),
            (
                Event::AlertTransition {
                    rule: 0,
                    from: AlertStateTag::Pending,
                    to: AlertStateTag::Firing,
                    value: 2.5,
                },
                Layer::Obs,
            ),
        ];
        for (e, l) in samples {
            assert_eq!(e.layer(), l);
        }
    }

    #[test]
    fn timed_event_roundtrips_exactly() {
        let te = TimedEvent {
            at: u64::MAX,
            event: Event::PageFault { pid: 7, addr: u64::MAX - 1, major: false },
        };
        let text = te.to_json().to_string_compact();
        let back = TimedEvent::from_json(&daos_util::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, te, "u64 fields must survive the text roundtrip exactly");
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let v = json::tagged("NotAnEvent", Json::Object(vec![]));
        assert!(Event::from_json(&v).is_err());
    }
}
