//! The metrics registry: named counters (monotonic `u64`), gauges
//! (last-write-wins `f64`), and log2-bucketed histograms. The registry is
//! the single source of truth the stats structs (`OverheadStats`,
//! `SchemeStats`) re-derive from when a collector is installed.

use daos_util::json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// Log2-bucketed histogram of `u64` samples. Bucket `0` holds zeros;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Exact `count`, `sum`,
/// `min` and `max` are kept alongside the buckets so derived stats (mean,
/// peak) do not suffer bucket quantisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// The bucket index for `v`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`: bucket-wise addition with the exact
    /// `count`/`sum`/`min`/`max` sidecars combined. Merging an empty
    /// histogram is a no-op (the empty-`min` sentinel never leaks).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(bucket_index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect()
    }

    /// The `p`-th percentile (0–100) of the distribution, estimated from
    /// the log2 buckets: the sample of the matching rank is placed at
    /// the midpoint of its bucket's `[2^(i-1), 2^i)` range, then clamped
    /// to the exact `[min, max]` — so the estimate is within a factor of
    /// ~1.5 of the true sample and p0/p100 are exact. Returns 0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (self.count - 1) as f64).round() as u64;
        if rank == 0 {
            return self.min();
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                let estimate = if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    lo + lo / 2
                };
                return estimate.clamp(self.min(), self.max);
            }
        }
        self.max
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".into(), self.count.to_json()),
            ("sum".into(), self.sum.to_json()),
            ("min".into(), self.min().to_json()),
            ("max".into(), self.max.to_json()),
            ("buckets".into(), self.nonzero_buckets().to_json()),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let count: u64 = v.field("count")?;
        if count == 0 {
            return Ok(Histogram::default());
        }
        let mut h = Histogram {
            buckets: [0; 65],
            count,
            sum: v.field("sum")?,
            min: v.field("min")?,
            max: v.field("max")?,
        };
        for (i, c) in v.field::<Vec<(u64, u64)>>("buckets")? {
            let i = usize::try_from(i)
                .ok()
                .filter(|&i| i < h.buckets.len())
                .ok_or_else(|| JsonError::msg(format!("histogram bucket index {i} out of range")))?;
            h.buckets[i] = c;
        }
        Ok(h)
    }
}

/// Named metrics, keyed by dotted-path strings (`"monitor.work_ns"`).
/// Keys are created on first write; reads of absent counters return 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter `name`.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(n),
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Set the gauge `name`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Record `v` into the histogram `name`.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        match self.hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                self.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Fold a whole pre-aggregated histogram into `name`, merging with
    /// any existing series — how subsystems that aggregate off-registry
    /// (e.g. the obs server's per-endpoint telemetry, held in atomics
    /// and mutexed histograms) materialize a `Registry` on demand.
    pub fn hist_insert(&mut self, name: &str, h: &Histogram) {
        match self.hists.get_mut(name) {
            Some(mine) => mine.merge(h),
            None => {
                self.hists.insert(name.to_string(), h.clone());
            }
        }
    }

    /// Counter value (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever written.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if ever written.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Merge `other` into `self`: counters add, gauges are last-write-
    /// wins (`other` wins), histograms fold bucket-wise. Used by the obs
    /// plane to combine a run's registry snapshot with the HTTP server's
    /// self-telemetry into one `/metrics` exposition.
    pub fn merge(&mut self, other: &Registry) {
        for (key, value) in other.counters() {
            self.counter_add(key, value);
        }
        for (key, value) in other.gauges() {
            self.gauge_set(key, value);
        }
        for (key, h) in other.hists() {
            match self.hists.get_mut(key) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(key.to_string(), h.clone());
                }
            }
        }
    }

    /// True when no metric key has ever been written — the pin the
    /// disabled-collector test relies on.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by key.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("counters".into(), self.counters.to_json()),
            ("gauges".into(), self.gauges.to_json()),
            ("histograms".into(), self.hists.to_json()),
        ])
    }
}

impl FromJson for Registry {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // Unknown sibling keys (the exporter's `dropped_events` /
        // `ring_capacity` trailer fields) are deliberately ignored.
        Ok(Registry {
            counters: v.field("counters")?,
            gauges: v.field("gauges")?,
            hists: v.field("histograms")?,
        })
    }
}

/// Well-known registry keys written by the collector's event mirror.
/// `OverheadStats::from_registry` / `SchemeStats::from_registry` read
/// these — keep them in one place so producer and consumer cannot drift.
pub mod keys {
    /// Histogram of young-bit checks per sampling tick (count = ticks,
    /// sum = total checks, max = the Fig. 7 bound witness).
    pub const MONITOR_CHECKS_PER_TICK: &str = "monitor.checks_per_tick";
    /// Total monitor kernel work in virtual ns.
    pub const MONITOR_WORK_NS: &str = "monitor.work_ns";
    /// Aggregation windows closed.
    pub const MONITOR_AGGREGATIONS: &str = "monitor.aggregations";
    /// Adaptive split passes that changed the region count.
    pub const MONITOR_SPLITS: &str = "monitor.splits";
    /// Merge passes that changed the region count.
    pub const MONITOR_MERGES: &str = "monitor.merges";
    /// Watermark activation flips across all schemes.
    pub const SCHEMES_WMARK_TRANSITIONS: &str = "schemes.watermark_transitions";

    /// Per-scheme counter key, e.g. `scheme.0.nr_applied`.
    pub fn scheme(idx: u32, field: &str) -> String {
        format!("scheme.{idx}.{field}")
    }

    /// Per-phase span-duration histogram key, e.g. `span.sample_ns`
    /// (written by the collector on every `SpanExit`).
    pub fn span(phase: crate::event::Phase) -> String {
        format!("span.{}_ns", phase.key_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_keeps_exact_extremes() {
        let mut h = Histogram::default();
        for v in [5, 0, 1000, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1008);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (2, 1), (3, 1), (10, 1)]);
    }

    #[test]
    fn registry_defaults_and_writes() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.counter("absent"), 0);
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", 1.5);
        r.hist_record("h", 9);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.gauge("g"), Some(1.5));
        assert_eq!(r.hist("h").unwrap().count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn scheme_key_shape() {
        assert_eq!(keys::scheme(2, "nr_tried"), "scheme.2.nr_tried");
        assert_eq!(keys::span(crate::Phase::SchemeApply), "span.scheme_apply_ns");
    }

    #[test]
    fn percentiles_from_log2_buckets() {
        assert_eq!(Histogram::default().percentile(50.0), 0);
        let mut h = Histogram::default();
        for v in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 1000, 1000] {
            h.record(v);
        }
        // p0/p100 hit the exact extreme ranks; p50 lands in bucket
        // [64,128) → midpoint 96, clamped into [100, 1000].
        assert_eq!(h.percentile(0.0), 100);
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.percentile(50.0), 100);
        // p90 of 11 samples is rank 9 → the first 1000 outlier's bucket
        // [512,1024) → midpoint 768.
        assert_eq!(h.percentile(90.0), 768);
        let mut zeros = Histogram::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(95.0), 0);
    }

    #[test]
    fn registries_merge_counters_gauges_and_histograms() {
        let mut a = Registry::new();
        a.counter_add("c.x", 5);
        a.gauge_set("g.x", 1.0);
        a.hist_record("h.x", 8);
        let mut b = Registry::new();
        b.counter_add("c.x", 7);
        b.counter_add("c.y", 1);
        b.gauge_set("g.x", 2.0);
        b.hist_record("h.x", 100);
        b.hist_record("h.y", 3);
        a.merge(&b);
        assert_eq!(a.counter("c.x"), 12);
        assert_eq!(a.counter("c.y"), 1);
        assert_eq!(a.gauge("g.x"), Some(2.0), "gauges are last-write-wins");
        let h = a.hist("h.x").unwrap();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (2, 108, 8, 100));
        assert_eq!(a.hist("h.y").unwrap().count(), 1);
        // Merging an empty histogram keeps the empty-min sentinel intact.
        let mut h = Histogram::default();
        h.merge(&Histogram::default());
        assert_eq!(h, Histogram::default());
        h.record(4);
        let mut full = Histogram::default();
        full.record(9);
        full.merge(&h);
        assert_eq!((full.count(), full.min(), full.max()), (2, 4, 9));
    }

    #[test]
    fn histogram_json_roundtrip() {
        let mut h = Histogram::default();
        for v in [0u64, 7, 7, 900, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        let empty = Histogram::from_json(&Histogram::default().to_json()).unwrap();
        assert_eq!(empty, Histogram::default(), "empty min sentinel survives");
    }

    #[test]
    fn registry_json_roundtrip_ignores_trailer_extras() {
        let mut r = Registry::new();
        r.counter_add("a.b", 5);
        r.gauge_set("g", -1.5);
        r.hist_record("h", 300);
        let Json::Object(mut fields) = r.to_json() else { panic!("object") };
        fields.push(("dropped_events".into(), 7u64.to_json()));
        let back = Registry::from_json(&Json::Object(fields)).unwrap();
        assert_eq!(back, r);
    }
}
