//! The metrics registry: named counters (monotonic `u64`), gauges
//! (last-write-wins `f64`), and log2-bucketed histograms. The registry is
//! the single source of truth the stats structs (`OverheadStats`,
//! `SchemeStats`) re-derive from when a collector is installed.

use daos_util::json::{Json, ToJson};
use std::collections::BTreeMap;

/// Log2-bucketed histogram of `u64` samples. Bucket `0` holds zeros;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Exact `count`, `sum`,
/// `min` and `max` are kept alongside the buckets so derived stats (mean,
/// peak) do not suffer bucket quantisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// The bucket index for `v`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(bucket_index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect()
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".into(), self.count.to_json()),
            ("sum".into(), self.sum.to_json()),
            ("min".into(), self.min().to_json()),
            ("max".into(), self.max.to_json()),
            ("buckets".into(), self.nonzero_buckets().to_json()),
        ])
    }
}

/// Named metrics, keyed by dotted-path strings (`"monitor.work_ns"`).
/// Keys are created on first write; reads of absent counters return 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter `name`.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(n),
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Set the gauge `name`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Record `v` into the histogram `name`.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        match self.hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                self.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Counter value (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever written.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if ever written.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// True when no metric key has ever been written — the pin the
    /// disabled-collector test relies on.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("counters".into(), self.counters.to_json()),
            ("gauges".into(), self.gauges.to_json()),
            ("histograms".into(), self.hists.to_json()),
        ])
    }
}

/// Well-known registry keys written by the collector's event mirror.
/// `OverheadStats::from_registry` / `SchemeStats::from_registry` read
/// these — keep them in one place so producer and consumer cannot drift.
pub mod keys {
    /// Histogram of young-bit checks per sampling tick (count = ticks,
    /// sum = total checks, max = the Fig. 7 bound witness).
    pub const MONITOR_CHECKS_PER_TICK: &str = "monitor.checks_per_tick";
    /// Total monitor kernel work in virtual ns.
    pub const MONITOR_WORK_NS: &str = "monitor.work_ns";
    /// Aggregation windows closed.
    pub const MONITOR_AGGREGATIONS: &str = "monitor.aggregations";
    /// Adaptive split passes that changed the region count.
    pub const MONITOR_SPLITS: &str = "monitor.splits";
    /// Merge passes that changed the region count.
    pub const MONITOR_MERGES: &str = "monitor.merges";
    /// Watermark activation flips across all schemes.
    pub const SCHEMES_WMARK_TRANSITIONS: &str = "schemes.watermark_transitions";

    /// Per-scheme counter key, e.g. `scheme.0.nr_applied`.
    pub fn scheme(idx: u32, field: &str) -> String {
        format!("scheme.{idx}.{field}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_keeps_exact_extremes() {
        let mut h = Histogram::default();
        for v in [5, 0, 1000, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1008);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (2, 1), (3, 1), (10, 1)]);
    }

    #[test]
    fn registry_defaults_and_writes() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.counter("absent"), 0);
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", 1.5);
        r.hist_record("h", 9);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.gauge("g"), Some(1.5));
        assert_eq!(r.hist("h").unwrap().count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn scheme_key_shape() {
        assert_eq!(keys::scheme(2, "nr_tried"), "scheme.2.nr_tried");
    }
}
