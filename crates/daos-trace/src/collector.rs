//! The collector: a ring buffer plus a metrics registry behind a
//! thread-local install point. Instrumented crates emit through the
//! [`trace!`](crate::trace) macro, which checks a single thread-local
//! flag first — with no collector installed (or an installed collector
//! built with `.enabled(false)`) the event expression is never even
//! evaluated, so hot paths pay one branch.
//!
//! The install point is thread-local on purpose: a simulation run is
//! single-threaded, while `cargo test` runs many tests concurrently —
//! per-thread collectors isolate them without locks on the emit path.

use crate::event::{Event, Ns, TimedEvent};
use crate::metrics::{keys, Registry};
use crate::ring::Ring;
use crate::TraceError;
use std::cell::{Cell, RefCell};

/// Default ring capacity (events). 64Ki timed events ≈ 2 MiB; enough to
/// hold every monitor/schemes event of a full paper-length run while
/// bounding mm fault storms.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// An event sink: bounded ring of typed events + metrics registry.
/// Build with [`Collector::builder`], activate with [`install`], and
/// reclaim with [`take`] when the traced section is done.
#[derive(Debug)]
pub struct Collector {
    ring: Ring,
    registry: Registry,
    enabled: bool,
}

/// Builder for [`Collector`]; validation happens at [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct CollectorBuilder {
    ring_capacity: usize,
    enabled: bool,
}

impl Default for CollectorBuilder {
    fn default() -> Self {
        CollectorBuilder { ring_capacity: DEFAULT_RING_CAPACITY, enabled: true }
    }
}

impl CollectorBuilder {
    /// Ring capacity in events (must be ≥ 1).
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Start enabled (default) or disabled. A disabled collector can be
    /// installed to pin the zero-overhead path in tests.
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Validate and construct the collector.
    pub fn build(self) -> Result<Collector, TraceError> {
        if self.ring_capacity == 0 {
            return Err(TraceError::InvalidCapacity(self.ring_capacity));
        }
        Ok(Collector {
            ring: Ring::new(self.ring_capacity),
            registry: Registry::new(),
            enabled: self.enabled,
        })
    }
}

impl Collector {
    /// Start building a collector.
    pub fn builder() -> CollectorBuilder {
        CollectorBuilder::default()
    }

    /// The event ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Whether this collector records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Surviving events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.ring.to_vec()
    }

    /// Record one event: push to the ring and mirror into the registry.
    /// (Callers normally go through [`trace!`](crate::trace) instead.)
    pub fn record(&mut self, at: Ns, event: Event) {
        if !self.enabled {
            return;
        }
        self.mirror(&event);
        self.ring.push(TimedEvent { at, event });
    }

    /// Registry mirror for each event kind — the counters/histograms the
    /// stats structs re-derive from. Kept in one match so the event
    /// taxonomy and the metric key space evolve together.
    fn mirror(&mut self, event: &Event) {
        let reg = &mut self.registry;
        match *event {
            Event::PageFault { major, .. } => {
                reg.counter_add(if major { "mm.major_faults" } else { "mm.minor_faults" }, 1);
            }
            Event::Reclaim { freed_pages, scanned, cost_ns } => {
                reg.counter_add("mm.reclaims", 1);
                reg.counter_add("mm.reclaim_freed_pages", freed_pages);
                reg.counter_add("mm.reclaim_scanned_pages", scanned);
                reg.hist_record("mm.reclaim_cost_ns", cost_ns);
            }
            Event::SwapOut { .. } => reg.counter_add("mm.swapouts", 1),
            Event::SwapIn { .. } => reg.counter_add("mm.swapins", 1),
            Event::ThpPromote { chunks, .. } => {
                reg.counter_add("mm.thp_promoted_chunks", chunks)
            }
            Event::ThpDemote { freed_bytes, .. } => {
                reg.counter_add("mm.thp_demoted_bytes", freed_bytes)
            }
            Event::SamplingTick { checks, nr_regions, work_ns } => {
                reg.hist_record(keys::MONITOR_CHECKS_PER_TICK, checks);
                reg.counter_add(keys::MONITOR_WORK_NS, work_ns);
                reg.gauge_set("monitor.nr_regions", nr_regions as f64);
            }
            Event::RegionSplit { .. } => reg.counter_add(keys::MONITOR_SPLITS, 1),
            Event::RegionMerge { .. } => reg.counter_add(keys::MONITOR_MERGES, 1),
            Event::RegionSnapshot { .. } => reg.counter_add("monitor.region_snapshots", 1),
            Event::Aggregation { .. } => reg.counter_add(keys::MONITOR_AGGREGATIONS, 1),
            Event::SchemeMatch { scheme, bytes } => {
                reg.counter_add(&keys::scheme(scheme, "nr_tried"), 1);
                reg.counter_add(&keys::scheme(scheme, "sz_tried"), bytes);
            }
            Event::SchemeApply { scheme, bytes, action: _ } => {
                reg.counter_add(&keys::scheme(scheme, "nr_applied"), 1);
                reg.counter_add(&keys::scheme(scheme, "sz_applied"), bytes);
                reg.hist_record("schemes.apply_bytes", bytes);
            }
            Event::QuotaThrottle { scheme, skipped_bytes } => {
                reg.counter_add(&keys::scheme(scheme, "nr_quota_skips"), 1);
                reg.counter_add(&keys::scheme(scheme, "sz_quota_skipped"), skipped_bytes);
            }
            Event::WatermarkTransition { .. } => {
                reg.counter_add(keys::SCHEMES_WMARK_TRANSITIONS, 1)
            }
            Event::TunerSample { .. } => reg.counter_add("tuner.samples", 1),
            Event::TunerRefit { .. } => reg.counter_add("tuner.refits", 1),
            Event::TunerStep { best_x, best_score } => {
                reg.gauge_set("tuner.best_x", best_x);
                reg.gauge_set("tuner.best_score", best_score);
            }
            // Enter is a pure marker; the duration lands on Exit.
            Event::SpanEnter { .. } => {}
            Event::SpanExit { phase, dur_ns } => {
                reg.hist_record(&keys::span(phase), dur_ns);
            }
            Event::AlertTransition { .. } => reg.counter_add("obs.alert_transitions", 1),
        }
    }

    /// Rebuild a collector (registry included) by replaying an event
    /// stream — the offline counterpart of a live run, used by
    /// `daos report` to derive metrics from a parsed trace. The ring is
    /// sized to hold every replayed event, so nothing is dropped.
    pub fn replay(events: &[TimedEvent]) -> Collector {
        let mut c = Collector::builder()
            .ring_capacity(events.len().max(1))
            .build()
            // lint: allow(panic, capacity is clamped to >= 1 one line up)
            .expect("non-zero capacity");
        for te in events {
            c.record(te.at, te.event);
        }
        c
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// Mirror of "a collector is installed AND enabled", kept in a
    /// separate `Cell` so the `trace!` fast path is one load, no borrow.
    static LIVE: Cell<bool> = const { Cell::new(false) };
}

/// Install `collector` as this thread's event sink. Fails if one is
/// already installed (take it first).
pub fn install(collector: Collector) -> Result<(), TraceError> {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return Err(TraceError::AlreadyInstalled);
        }
        LIVE.with(|l| l.set(collector.enabled));
        *slot = Some(collector);
        Ok(())
    })
}

/// Remove and return this thread's collector, if any.
pub fn take() -> Option<Collector> {
    LIVE.with(|l| l.set(false));
    COLLECTOR.with(|c| c.borrow_mut().take())
}

/// Fast check used by [`trace!`](crate::trace): true only while an
/// enabled collector is installed on this thread.
#[inline]
pub fn enabled() -> bool {
    LIVE.with(|l| l.get())
}

/// Emit one event into the installed collector (no-op without one).
/// Prefer [`trace!`](crate::trace), which skips argument evaluation when
/// tracing is off.
pub fn emit(at: Ns, event: Event) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.record(at, event);
        }
    });
}

/// Run `f` against the installed collector, if any.
pub fn with_collector<R>(f: impl FnOnce(&Collector) -> R) -> Option<R> {
    COLLECTOR.with(|c| c.borrow().as_ref().map(f))
}

/// Clone this thread's registry as an owned, independent snapshot (or
/// `None` when no collector is installed). The install point is
/// thread-local, but the snapshot is a plain value — safe to hand to a
/// publisher thread, and unaffected by metrics recorded after the call.
pub fn registry_snapshot() -> Option<Registry> {
    with_collector(|c| c.registry().clone())
}

/// The installed ring's `(total_pushed, dropped, capacity)` accounting,
/// or `None` when no collector is installed. `total_pushed` is the
/// monotonic cursor live consumers diff against [`Ring::tail`].
pub fn ring_status() -> Option<(u64, u64, usize)> {
    with_collector(|c| (c.ring().total_pushed(), c.ring().dropped(), c.ring().capacity()))
}

/// Emit a typed event if (and only if) an enabled collector is installed
/// on this thread. The variant expression is written without the
/// `Event::` prefix and is **not evaluated** when tracing is off:
///
/// ```
/// daos_trace::trace!(1_000, RegionSplit { before: 10, after: 20 });
/// ```
#[macro_export]
macro_rules! trace {
    ($at:expr, $($event:tt)+) => {
        if $crate::enabled() {
            $crate::emit($at, $crate::Event::$($event)+);
        }
    };
}

/// Wrap one pipeline phase in a [`SpanEnter`](crate::Event::SpanEnter) /
/// [`SpanExit`](crate::Event::SpanExit) pair. The body expression must
/// evaluate to the phase's **virtual** duration in nanoseconds (the
/// simulated CPU cost it charged); it is *always* evaluated — only the
/// events are gated on [`enabled`] — so instrumented code behaves
/// identically with tracing off. The exit is stamped at `at + dur`, and
/// the macro returns the duration:
///
/// ```
/// let dur = daos_trace::span!(1_000, Aggregate, {
///     let regions = 25u64;
///     regions * 40 // virtual ns of aggregation work
/// });
/// assert_eq!(dur, 1_000);
/// ```
#[macro_export]
macro_rules! span {
    ($at:expr, $phase:ident, $body:expr) => {{
        let __at: u64 = $at;
        let __live = $crate::enabled();
        if __live {
            $crate::emit(__at, $crate::Event::SpanEnter { phase: $crate::Phase::$phase });
        }
        let __dur: u64 = $body;
        if __live {
            $crate::emit(
                __at.saturating_add(__dur),
                $crate::Event::SpanExit { phase: $crate::Phase::$phase, dur_ns: __dur },
            );
        }
        __dur
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_zero_capacity() {
        assert!(matches!(
            Collector::builder().ring_capacity(0).build(),
            Err(TraceError::InvalidCapacity(0))
        ));
    }

    #[test]
    fn install_take_cycle() {
        assert!(take().is_none());
        install(Collector::builder().build().unwrap()).unwrap();
        assert!(enabled());
        let err = install(Collector::builder().build().unwrap());
        assert!(matches!(err, Err(TraceError::AlreadyInstalled)));
        let c = take().expect("collector back");
        assert!(!enabled());
        assert!(c.ring().is_empty());
    }

    #[test]
    fn trace_macro_records_and_mirrors() {
        install(Collector::builder().ring_capacity(4).build().unwrap()).unwrap();
        crate::trace!(5, SamplingTick { checks: 12, nr_regions: 6, work_ns: 480 });
        crate::trace!(6, SamplingTick { checks: 20, nr_regions: 6, work_ns: 800 });
        let c = take().unwrap();
        assert_eq!(c.ring().len(), 2);
        let h = c.registry().hist(keys::MONITOR_CHECKS_PER_TICK).unwrap();
        assert_eq!((h.count(), h.sum(), h.max()), (2, 32, 20));
        assert_eq!(c.registry().counter(keys::MONITOR_WORK_NS), 1280);
    }

    #[test]
    fn span_macro_emits_enter_exit_and_histogram() {
        install(Collector::builder().build().unwrap()).unwrap();
        let dur = crate::span!(100, SchemeApply, 40 + 2);
        assert_eq!(dur, 42);
        let c = take().unwrap();
        let events = c.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            (events[0].at, events[0].event),
            (100, Event::SpanEnter { phase: crate::Phase::SchemeApply })
        );
        assert_eq!(
            (events[1].at, events[1].event),
            (142, Event::SpanExit { phase: crate::Phase::SchemeApply, dur_ns: 42 })
        );
        let h = c.registry().hist(&keys::span(crate::Phase::SchemeApply)).unwrap();
        assert_eq!((h.count(), h.sum()), (1, 42));
    }

    #[test]
    fn span_body_runs_even_when_disabled() {
        // No collector installed at all: the body's side effects (the
        // simulated work) must still happen, but nothing is recorded.
        assert!(take().is_none());
        let mut runs = 0;
        let dur = crate::span!(7, TunerStep, {
            runs += 1;
            9
        });
        assert_eq!(runs, 1, "span body is the actual work — it must always run");
        assert_eq!(dur, 9);
    }

    #[test]
    fn replay_rebuilds_the_registry() {
        install(Collector::builder().build().unwrap()).unwrap();
        crate::trace!(5, SamplingTick { checks: 12, nr_regions: 6, work_ns: 480 });
        crate::trace!(9, SchemeMatch { scheme: 0, bytes: 4096 });
        crate::span!(10, Aggregate, 160);
        let live = take().unwrap();
        let replayed = Collector::replay(&live.events());
        assert_eq!(replayed.registry(), live.registry());
        assert_eq!(replayed.events(), live.events());
        assert_eq!(Collector::replay(&[]).events().len(), 0);
    }

    #[test]
    fn registry_snapshot_is_independent_of_later_mutation() {
        install(Collector::builder().build().unwrap()).unwrap();
        crate::trace!(1, SamplingTick { checks: 4, nr_regions: 2, work_ns: 160 });
        let snap = registry_snapshot().expect("collector installed");
        // Mutate the live registry after the snapshot was taken…
        crate::trace!(2, SamplingTick { checks: 8, nr_regions: 2, work_ns: 320 });
        crate::trace!(3, SchemeMatch { scheme: 0, bytes: 4096 });
        let live = take().unwrap();
        // …the snapshot must still show the pre-mutation state.
        assert_eq!(snap.counter(keys::MONITOR_WORK_NS), 160);
        assert_eq!(snap.hist(keys::MONITOR_CHECKS_PER_TICK).unwrap().count(), 1);
        assert_eq!(snap.counter(&keys::scheme(0, "nr_tried")), 0);
        assert_eq!(live.registry().counter(keys::MONITOR_WORK_NS), 480);
        // The snapshot is an owned value: moving it across threads works.
        let moved = std::thread::spawn(move || snap.counter(keys::MONITOR_WORK_NS))
            .join()
            .unwrap();
        assert_eq!(moved, 160);
        assert!(registry_snapshot().is_none(), "no collector, no snapshot");
        assert!(ring_status().is_none());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        install(Collector::builder().enabled(false).build().unwrap()).unwrap();
        assert!(!enabled(), "disabled collector must not arm the fast path");
        let mut evaluated = false;
        crate::trace!(1, PageFault { pid: 1, addr: { evaluated = true; 0x1000 }, major: false });
        let c = take().unwrap();
        assert!(!evaluated, "event arguments must not be evaluated when tracing is off");
        assert_eq!(c.ring().len(), 0);
        assert_eq!(c.ring().dropped(), 0);
        assert!(c.registry().is_empty(), "zero registry mutations on the disabled path");
    }
}
