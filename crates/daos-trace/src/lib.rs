//! Cross-layer telemetry for the DAOS reproduction: typed tracepoints,
//! a metrics registry, and a JSONL exporter — the in-simulation analogue
//! of the kernel's `damon:*` tracepoints.
//!
//! The crate sits at the bottom of the workspace DAG (it depends only on
//! `daos-util`), so every layer — mm, monitor, schemes, tuner — can emit
//! without cycles:
//!
//! ```
//! use daos_trace::{trace, Collector};
//!
//! let collector = Collector::builder().ring_capacity(1024).build().unwrap();
//! daos_trace::install(collector).unwrap();
//!
//! // Instrumented code does this (a no-op while no collector is live):
//! trace!(5_000, RegionSplit { before: 10, after: 20 });
//!
//! let collector = daos_trace::take().unwrap();
//! assert_eq!(collector.ring().len(), 1);
//! let jsonl = daos_trace::events_to_jsonl(collector.ring().iter());
//! let replay = daos_trace::events_from_jsonl(&jsonl).unwrap();
//! assert_eq!(replay, collector.events());
//! ```
//!
//! Design points:
//! - **Disabled means free.** `trace!` checks one thread-local flag; the
//!   event expression is not evaluated unless an enabled collector is
//!   installed, so hot paths (fault handling, sampling ticks) are
//!   unperturbed when tracing is off.
//! - **Bounded.** Events land in a fixed-capacity ring ([`Ring`]) that
//!   overwrites the oldest entry and counts drops — tracing can never
//!   make a run unbounded in memory.
//! - **One source of truth.** Every event is mirrored into the
//!   [`Registry`] (counters / gauges / log2 histograms), and the stats
//!   structs (`OverheadStats`, `SchemeStats`) re-derive from it.
//! - **Replayable.** [`export_collector`] writes a self-describing JSONL
//!   document; [`parse_export`] reads it back as a [`TraceDoc`], and
//!   [`Collector::replay`] rebuilds the registry from the event stream —
//!   the foundation the offline `daos report` tooling stands on.
//! - **Spans.** The [`span!`](crate::span) macro wraps the five pipeline
//!   phases ([`Phase`]) in enter/exit pairs carrying *virtual* durations,
//!   feeding per-phase `span.*_ns` histograms for `report profile`.

pub mod collector;
pub mod event;
pub mod export;
pub mod metrics;
pub mod ring;

pub use collector::{
    emit, enabled, install, registry_snapshot, ring_status, take, with_collector, Collector,
    CollectorBuilder, DEFAULT_RING_CAPACITY,
};
pub use event::{
    ActionTag, AlertStateTag, Event, Layer, Ns, Phase, Pid, SamplePhase, TimedEvent,
};
pub use export::{events_from_jsonl, events_to_jsonl, export_collector, parse_export, TraceDoc};
pub use metrics::{keys, Histogram, Registry};
pub use ring::Ring;

use daos_util::json::JsonError;
use std::fmt;

/// A telemetry error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The requested ring capacity is invalid (must be ≥ 1).
    InvalidCapacity(usize),
    /// A collector is already installed on this thread.
    AlreadyInstalled,
    /// An event log failed to parse.
    Json(JsonError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidCapacity(n) => {
                write!(f, "invalid ring capacity {n} (must be >= 1)")
            }
            TraceError::AlreadyInstalled => {
                write!(f, "a trace collector is already installed on this thread")
            }
            TraceError::Json(e) => write!(f, "trace log: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<JsonError> for TraceError {
    fn from(e: JsonError) -> Self {
        TraceError::Json(e)
    }
}
