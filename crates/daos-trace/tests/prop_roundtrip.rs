//! Property test: every trace event survives a JSONL encode/decode
//! round-trip exactly — including full-width `u64` addresses (the
//! reason `daos_util::json` keeps a dedicated unsigned lane).

use daos_trace::{
    events_from_jsonl, events_to_jsonl, ActionTag, AlertStateTag, Event, Phase, SamplePhase,
    TimedEvent,
};
use daos_util::prop::vec_of;
use daos_util::{prop_assert_eq, proptest};

const ACTIONS: [ActionTag; 8] = [
    ActionTag::Stat,
    ActionTag::Pageout,
    ActionTag::Hugepage,
    ActionTag::Nohugepage,
    ActionTag::Cold,
    ActionTag::Willneed,
    ActionTag::LruPrio,
    ActionTag::LruDeprio,
];

const ALERT_STATES: [AlertStateTag; 4] = [
    AlertStateTag::Ok,
    AlertStateTag::Pending,
    AlertStateTag::Firing,
    AlertStateTag::Resolved,
];

/// Deterministically build one of the 21 event variants from raw draws.
fn build_event(kind: usize, a: u64, b: u64) -> Event {
    let pid = (a % 10_000) as u32;
    let scheme = (a % 8) as u32;
    let action = ACTIONS[(b % 8) as usize];
    let flag = a & 1 == 0;
    let phase = if flag { SamplePhase::Global } else { SamplePhase::Local };
    let span_phase = Phase::ALL[(a % 5) as usize];
    let x = a as f64 * 1e-3;
    let y = b as f64 * 1e-3;
    match kind {
        0 => Event::PageFault { pid, addr: b, major: flag },
        1 => Event::Reclaim { freed_pages: a, scanned: b, cost_ns: a ^ b },
        2 => Event::SwapOut { pid, addr: b },
        3 => Event::SwapIn { pid, addr: b },
        4 => Event::ThpPromote { pid, chunks: b },
        5 => Event::ThpDemote { pid, freed_bytes: b },
        6 => Event::SamplingTick { checks: a, nr_regions: b, work_ns: a.wrapping_mul(40) },
        7 => Event::RegionSplit { before: a, after: b },
        8 => Event::RegionMerge { before: a, after: b },
        9 => Event::Aggregation { nr_regions: a, window_ns: b, max_nr_accesses: a % 1000 },
        17 => Event::RegionSnapshot { start: a, end: a.max(b), nr_accesses: b % 1000, age: a % 64 },
        18 => Event::SpanEnter { phase: span_phase },
        19 => Event::SpanExit { phase: span_phase, dur_ns: b },
        10 => Event::SchemeMatch { scheme, bytes: b },
        11 => Event::SchemeApply { scheme, action, bytes: b },
        12 => Event::QuotaThrottle { scheme, skipped_bytes: b },
        13 => Event::WatermarkTransition { scheme, active: flag, metric_permille: a % 1001 },
        14 => Event::TunerSample { x, score: y, phase },
        15 => Event::TunerRefit { degree: a % 6, nr_samples: b % 1000 },
        16 => Event::TunerStep { best_x: x, best_score: y },
        _ => Event::AlertTransition {
            rule: (a % 16) as u32,
            from: ALERT_STATES[(a % 4) as usize],
            to: ALERT_STATES[(b % 4) as usize],
            value: y,
        },
    }
}

proptest! {
    cases = 256;

    fn single_event_jsonl_roundtrip(
        kind in 0usize..21,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        at in 0u64..u64::MAX,
    ) {
        let te = TimedEvent { at, event: build_event(kind, a, b) };
        let text = events_to_jsonl(std::slice::from_ref(&te));
        let back = events_from_jsonl(&text).map_err(|e| {
            daos_util::prop::TestCaseError::fail(format!("decode failed: {e}\n{text}"))
        })?;
        prop_assert_eq!(back, vec![te]);
    }

    fn event_stream_jsonl_roundtrip(
        batch in vec_of((0usize..21, 0u64..u64::MAX, 0u64..u64::MAX), 0usize..24),
    ) {
        let events: Vec<TimedEvent> = batch
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b))| TimedEvent { at: i as u64, event: build_event(kind, a, b) })
            .collect();
        let text = events_to_jsonl(&events);
        let back = events_from_jsonl(&text).map_err(|e| {
            daos_util::prop::TestCaseError::fail(format!("decode failed: {e}"))
        })?;
        prop_assert_eq!(back, events);
    }
}
