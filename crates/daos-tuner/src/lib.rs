//! # daos-tuner — the Auto-tuning Runtime
//!
//! The user-space component of DAOS (§3.3–3.5 of the paper): given a
//! memory management scheme with an aggressiveness knob, a workload, and
//! a time budget, find the knob value that maximises a user-defined score
//! combining performance and memory efficiency.
//!
//! * [`score`] — the paper's Listing 2 score function (equal weights,
//!   10 % performance SLA) plus custom score support;
//! * [`sampler`] — the 60 % global / 40 % localized sampling plan;
//! * [`polyfit`] — least-squares polynomial trend estimation with the
//!   paper's `degree = nr_samples/3` rule;
//! * [`peaks`] — gradient-based peak search on the fitted curve;
//! * [`tuner`] — the end-to-end driver;
//! * [`patterns`] — the six Fig. 3 score-pattern shapes and a classifier
//!   used by the Fig. 3/4 reproduction.
//!
//! ```
//! use daos_tuner::{tune, TunerConfig};
//! use daos_mm::clock::sec;
//!
//! // A toy objective peaking at aggressiveness 16 (cf. Fig. 5).
//! let cfg = TunerConfig {
//!     time_limit: sec(100),     // budget: 10 samples…
//!     unit_work_time: sec(10),  // …at 10 s per sample
//!     range: (0.0, 60.0),
//!     seed: 42,
//! };
//! let result = tune(&cfg, |x| 25.0 - (x - 16.0).powi(2) / 30.0);
//! assert!((result.best_x - 16.0).abs() < 4.0);
//! ```

pub mod patterns;
pub mod peaks;
pub mod polyfit;
pub mod sampler;
pub mod score;
pub mod tuner;

pub use patterns::{classify, ScorePattern};
pub use peaks::{best_peak, find_peaks, Peak};
pub use polyfit::{paper_degree, Polynomial};
pub use sampler::Sampler;
pub use score::{CustomScore, DefaultScore, ScoreFn, ScoreInputs, WORST_SCORE};
pub use tuner::{tune, TuneResult, TunerConfig};
