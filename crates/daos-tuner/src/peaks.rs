//! Peak finding on the fitted curve (§3.5: "On the fitted curve, the
//! system finds peaks using gradients and finally applies the
//! configuration of the peak having the highest score").

use crate::polyfit::Polynomial;

/// A local maximum of the curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Location (parameter value).
    pub x: f64,
    /// Curve value at the peak.
    pub y: f64,
}

/// Find all local maxima of `poly` on `[lo, hi]` by scanning the gradient
/// for sign changes (+ → −) on a fine grid, refining each bracket by
/// bisection on the derivative. Interval endpoints count as peaks when the
/// curve slopes down into the interval (lo) or up to the end (hi).
pub fn find_peaks(poly: &Polynomial, lo: f64, hi: f64) -> Vec<Peak> {
    const GRID: usize = 512;
    let mut peaks = Vec::new();
    // NaN-safe emptiness check: deliberately NOT `hi <= lo` (NaN must bail).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(hi > lo) {
        return peaks;
    }
    let step = (hi - lo) / GRID as f64;
    let mut prev_x = lo;
    let mut prev_d = poly.deriv(lo);
    if prev_d < 0.0 {
        peaks.push(Peak { x: lo, y: poly.eval(lo) });
    }
    for i in 1..=GRID {
        let x = lo + i as f64 * step;
        let d = poly.deriv(x);
        if prev_d > 0.0 && d <= 0.0 {
            // Bracketed maximum; bisect the derivative root.
            let (mut a, mut b) = (prev_x, x);
            for _ in 0..60 {
                let m = (a + b) / 2.0;
                if poly.deriv(m) > 0.0 {
                    a = m;
                } else {
                    b = m;
                }
            }
            let px = (a + b) / 2.0;
            peaks.push(Peak { x: px, y: poly.eval(px) });
        }
        prev_x = x;
        prev_d = d;
    }
    if poly.deriv(hi) > 0.0 {
        peaks.push(Peak { x: hi, y: poly.eval(hi) });
    }
    peaks
}

/// The highest peak on `[lo, hi]`; falls back to the better endpoint for
/// curves with no interior structure (e.g. constant fits).
pub fn best_peak(poly: &Polynomial, lo: f64, hi: f64) -> Peak {
    let peaks = find_peaks(poly, lo, hi);
    let endpoint_best = {
        let (ylo, yhi) = (poly.eval(lo), poly.eval(hi));
        if yhi > ylo {
            Peak { x: hi, y: yhi }
        } else {
            Peak { x: lo, y: ylo }
        }
    };
    peaks
        .into_iter()
        .fold(endpoint_best, |best, p| {
            if p.y.total_cmp(&best.y).is_gt() {
                p
            } else {
                best
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polyfit::Polynomial;

    fn fit(f: impl Fn(f64) -> f64, lo: f64, hi: f64, n: usize, degree: usize) -> Polynomial {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, f(x))
            })
            .collect();
        Polynomial::fit(&pts, degree).unwrap()
    }

    #[test]
    fn single_interior_peak() {
        let p = fit(|x| 10.0 - (x - 16.0).powi(2) / 10.0, 0.0, 60.0, 40, 2);
        let best = best_peak(&p, 0.0, 60.0);
        assert!((best.x - 16.0).abs() < 0.1, "peak near 16, got {}", best.x);
        assert!((best.y - 10.0).abs() < 0.1);
    }

    #[test]
    fn multiple_peaks_highest_wins() {
        // Quartic with peaks near x=±1.6: y = -(x²-3)² + bump favouring +.
        let f = |x: f64| -(x * x - 3.0).powi(2) + x;
        let p = fit(f, -3.0, 3.0, 60, 4);
        let peaks = find_peaks(&p, -3.0, 3.0);
        assert!(peaks.len() >= 2, "two interior maxima expected: {peaks:?}");
        let best = best_peak(&p, -3.0, 3.0);
        assert!(best.x > 0.0, "right peak is higher");
    }

    #[test]
    fn monotonic_curves_pick_endpoints() {
        let inc = fit(|x| 2.0 * x, 0.0, 10.0, 10, 1);
        assert_eq!(best_peak(&inc, 0.0, 10.0).x, 10.0);
        let dec = fit(|x| -2.0 * x, 0.0, 10.0, 10, 1);
        assert_eq!(best_peak(&dec, 0.0, 10.0).x, 0.0);
    }

    #[test]
    fn constant_curve_falls_back() {
        let p = Polynomial::fit(&[(0.0, 5.0), (10.0, 5.0)], 0).unwrap();
        let best = best_peak(&p, 0.0, 10.0);
        assert_eq!(best.y, 5.0);
    }

    #[test]
    fn empty_interval() {
        let p = Polynomial::fit(&[(0.0, 1.0), (1.0, 2.0)], 1).unwrap();
        assert!(find_peaks(&p, 5.0, 5.0).is_empty());
    }
}
