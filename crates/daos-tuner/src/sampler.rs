//! The sampling planner (§3.5): "the system first randomly picks only 60%
//! of nr_samples samples to explore the global parameter space and picks
//! the remaining 40% samples near the parameters which have shown the
//! highest scores for a localized search around the best points."

use daos_util::rng::SmallRng;

/// Fraction of the budget spent on global exploration.
pub const GLOBAL_FRACTION: f64 = 0.6;
/// Half-width of the localized search window, as a fraction of the range.
pub const LOCAL_WINDOW_FRACTION: f64 = 0.1;

/// Deterministic two-phase sample planner over a closed parameter range.
#[derive(Debug)]
pub struct Sampler {
    lo: f64,
    hi: f64,
    rng: SmallRng,
}

impl Sampler {
    /// Planner over `[lo, hi]` with a deterministic seed.
    pub fn new(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(hi >= lo, "invalid range");
        Self { lo, hi, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Split a total budget into `(global, local)` counts — 60 % / 40 %,
    /// with at least one global sample.
    pub fn split_budget(nr_samples: usize) -> (usize, usize) {
        let global = ((nr_samples as f64 * GLOBAL_FRACTION).round() as usize)
            .clamp(1.min(nr_samples), nr_samples);
        (global, nr_samples - global)
    }

    /// Phase 1: `n` random points exploring the whole range. Draws are
    /// stratified (one uniform draw per equal-width bin) so small budgets
    /// cannot leave a whole flank of the parameter space unsampled — the
    /// trend fit would otherwise extrapolate there unchecked.
    pub fn plan_global(&mut self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let width = (self.hi - self.lo) / n as f64;
        let mut xs: Vec<f64> = (0..n)
            .map(|i| {
                let lo = self.lo + i as f64 * width;
                let hi = lo + width;
                if hi > lo {
                    self.rng.random_range(lo..=hi)
                } else {
                    lo
                }
            })
            .collect();
        // Evaluate in a shuffled order (the paper's "randomly picks").
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.rng.random_range(0..=i));
        }
        xs
    }

    /// Phase 2: `n` points near `best` (within ±10 % of the range width,
    /// clamped to the range).
    pub fn plan_local(&mut self, best: f64, n: usize) -> Vec<f64> {
        let w = (self.hi - self.lo) * LOCAL_WINDOW_FRACTION;
        let lo = (best - w).max(self.lo);
        let hi = (best + w).min(self.hi);
        (0..n)
            .map(|_| if hi > lo { self.rng.random_range(lo..=hi) } else { lo })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_split_is_60_40() {
        assert_eq!(Sampler::split_budget(10), (6, 4)); // the paper's example
        assert_eq!(Sampler::split_budget(5), (3, 2));
        assert_eq!(Sampler::split_budget(1), (1, 0));
        assert_eq!(Sampler::split_budget(0), (0, 0));
    }

    #[test]
    fn global_samples_span_range() {
        let mut s = Sampler::new(0.0, 60.0, 42);
        let xs = s.plan_global(200);
        assert_eq!(xs.len(), 200);
        assert!(xs.iter().all(|&x| (0.0..=60.0).contains(&x)));
        // With 200 draws, both halves must be hit.
        assert!(xs.iter().any(|&x| x < 30.0));
        assert!(xs.iter().any(|&x| x > 30.0));
    }

    #[test]
    fn local_samples_cluster_near_best() {
        let mut s = Sampler::new(0.0, 60.0, 7);
        let xs = s.plan_local(17.0, 100);
        assert!(xs.iter().all(|&x| (11.0..=23.0).contains(&x)), "±10% of 60 = ±6");
    }

    #[test]
    fn local_clamps_at_range_edges() {
        let mut s = Sampler::new(0.0, 60.0, 7);
        let xs = s.plan_local(1.0, 50);
        assert!(xs.iter().all(|&x| (0.0..=7.0).contains(&x)));
        let xs = s.plan_local(60.0, 50);
        assert!(xs.iter().all(|&x| (54.0..=60.0).contains(&x)));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a: Vec<f64> = Sampler::new(0.0, 10.0, 5).plan_global(10);
        let b: Vec<f64> = Sampler::new(0.0, 10.0, 5).plan_global(10);
        assert_eq!(a, b);
        let c: Vec<f64> = Sampler::new(0.0, 10.0, 6).plan_global(10);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_range() {
        let mut s = Sampler::new(5.0, 5.0, 1);
        assert!(s.plan_global(3).iter().all(|&x| x == 5.0));
        assert!(s.plan_local(5.0, 3).iter().all(|&x| x == 5.0));
    }
}
