//! Least-squares polynomial curve fitting (§3.5: "To get the relationship
//! while mitigating the random score noise, we use polynomial curve
//! fitting. The degree is set as nr_samples/3 to avoid over-fitting.").
//!
//! Implemented with the normal equations on x-values normalised to
//! [-1, 1] (for conditioning), solved by Gaussian elimination with
//! partial pivoting.


/// A fitted polynomial over a normalised domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// Coefficients in the *normalised* variable `t`, lowest degree first.
    coeffs: Vec<f64>,
    /// Domain midpoint (for normalisation).
    x_mid: f64,
    /// Domain half-width.
    x_half: f64,
}

impl Polynomial {
    /// Fit a degree-`degree` polynomial to `(x, y)` samples.
    ///
    /// Returns `None` when there are no samples or the system is
    /// degenerate. The effective degree is clamped to `samples.len() - 1`.
    pub fn fit(samples: &[(f64, f64)], degree: usize) -> Option<Polynomial> {
        if samples.is_empty() {
            return None;
        }
        let degree = degree.min(samples.len() - 1);
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, _) in samples {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
        }
        let x_mid = (xmin + xmax) / 2.0;
        let x_half = ((xmax - xmin) / 2.0).max(1e-12);

        let n = degree + 1;
        // Normal equations: A^T A c = A^T y with Vandermonde A in t.
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut aty = vec![0.0f64; n];
        for &(x, y) in samples {
            let t = (x - x_mid) / x_half;
            let mut pow = vec![1.0f64; 2 * n - 1];
            for k in 1..2 * n - 1 {
                pow[k] = pow[k - 1] * t;
            }
            for i in 0..n {
                for j in 0..n {
                    ata[i][j] += pow[i + j];
                }
                aty[i] += pow[i] * y;
            }
        }
        let coeffs = solve(ata, aty)?;
        Some(Polynomial { coeffs, x_mid, x_half })
    }

    /// Evaluate at `x` (original domain).
    pub fn eval(&self, x: f64) -> f64 {
        let t = (x - self.x_mid) / self.x_half;
        // Horner.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * t + c)
    }

    /// Evaluate the derivative d/dx at `x`.
    pub fn deriv(&self, x: f64) -> f64 {
        let t = (x - self.x_mid) / self.x_half;
        let mut acc = 0.0;
        for (k, &c) in self.coeffs.iter().enumerate().skip(1).rev() {
            acc = acc * t + c * k as f64;
        }
        acc / self.x_half
    }

    /// Degree of the fitted polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Root-mean-square residual over a sample set.
    pub fn rms_residual(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let ss: f64 = samples
            .iter()
            .map(|&(x, y)| {
                let e = self.eval(x) - y;
                e * e
            })
            .sum();
        (ss / samples.len() as f64).sqrt()
    }
}

/// Solve `m x = b` by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // double-indexing one matrix
fn solve(mut m: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap_or(core::cmp::Ordering::Equal)
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// The paper's degree rule: `nr_samples / 3`, at least 1 (a constant fit
/// cannot expose a peak), capped for numerical stability.
pub fn paper_degree(nr_samples: usize) -> usize {
    (nr_samples / 3).clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn interpolates_exactly_at_full_degree() {
        let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (4.0, -1.0)];
        let p = Polynomial::fit(&pts, 3).unwrap();
        for &(x, y) in &pts {
            assert_close(p.eval(x), y, 1e-8);
        }
        assert!(p.rms_residual(&pts) < 1e-8);
    }

    #[test]
    fn recovers_known_quadratic() {
        // y = 2 - (x-3)^2 sampled on [0,6].
        let pts: Vec<(f64, f64)> =
            (0..=12).map(|i| i as f64 / 2.0).map(|x| (x, 2.0 - (x - 3.0).powi(2))).collect();
        let p = Polynomial::fit(&pts, 2).unwrap();
        assert_close(p.eval(3.0), 2.0, 1e-9);
        assert_close(p.eval(0.0), -7.0, 1e-9);
        assert_close(p.deriv(3.0), 0.0, 1e-9);
        assert_close(p.deriv(5.0), -4.0, 1e-9);
    }

    #[test]
    fn residual_decreases_with_degree() {
        // Noisy cubic-ish data.
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let x = i as f64 / 5.0;
                (x, x.sin() * 10.0 + if i % 2 == 0 { 0.3 } else { -0.3 })
            })
            .collect();
        let r1 = Polynomial::fit(&pts, 1).unwrap().rms_residual(&pts);
        let r3 = Polynomial::fit(&pts, 3).unwrap().rms_residual(&pts);
        let r6 = Polynomial::fit(&pts, 6).unwrap().rms_residual(&pts);
        assert!(r3 < r1);
        assert!(r6 <= r3 + 1e-9);
    }

    #[test]
    fn degree_clamped_to_samples() {
        let pts = [(0.0, 1.0), (1.0, 2.0)];
        let p = Polynomial::fit(&pts, 9).unwrap();
        assert_eq!(p.degree(), 1);
        assert_close(p.eval(0.5), 1.5, 1e-9);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(Polynomial::fit(&[], 2).is_none());
        // Single point: degree clamps to 0 → constant fit.
        let p = Polynomial::fit(&[(5.0, 7.0)], 3).unwrap();
        assert_close(p.eval(0.0), 7.0, 1e-9);
        assert_close(p.eval(100.0), 7.0, 1e-9);
    }

    #[test]
    fn all_same_x_does_not_explode() {
        // Duplicate x values: the high-degree system is singular, which
        // must surface as None rather than NaN coefficients.
        let pts = [(2.0, 1.0), (2.0, 3.0), (2.0, 2.0)];
        match Polynomial::fit(&pts, 2) {
            None => {}
            Some(p) => assert!(p.eval(2.0).is_finite()),
        }
    }

    #[test]
    fn paper_degree_rule() {
        assert_eq!(paper_degree(10), 3); // the paper's 10-sample example
        assert_eq!(paper_degree(3), 1);
        assert_eq!(paper_degree(1), 1);
        assert_eq!(paper_degree(100), 8, "capped for stability");
    }
}


daos_util::json_struct!(Polynomial { coeffs, x_mid, x_half });
