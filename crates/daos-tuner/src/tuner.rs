//! The end-to-end auto-tuning driver (§3.5).
//!
//! Given a parameter range (the scheme's aggressiveness knob), a time
//! budget, and a way to evaluate one parameter value (run the workload
//! under the tuned scheme, score the result), the tuner:
//!
//! 1. computes its sample budget `nr_samples = time_limit / unit_work_time`;
//! 2. spends 60 % of it on global random exploration;
//! 3. spends the remaining 40 % around the best sample so far;
//! 4. fits a degree-`nr_samples/3` polynomial to all samples;
//! 5. returns the highest peak of the fitted curve.

use daos_mm::clock::Ns;

use crate::peaks::{best_peak, Peak};
use crate::polyfit::{paper_degree, Polynomial};
use crate::sampler::Sampler;

/// Tuner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// Total tuning time budget (virtual time).
    pub time_limit: Ns,
    /// Time one sample takes to evaluate (workload run + stabilisation).
    pub unit_work_time: Ns,
    /// Parameter range searched, inclusive.
    pub range: (f64, f64),
    /// RNG seed for the sampling plan.
    pub seed: u64,
}

impl TunerConfig {
    /// The sample budget the time limit affords.
    pub fn nr_samples(&self) -> usize {
        (self.time_limit / self.unit_work_time.max(1)) as usize
    }
}

/// Everything the tuning run produced.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// All `(parameter, score)` samples in evaluation order; the first
    /// 60 % are the global phase.
    pub samples: Vec<(f64, f64)>,
    /// The fitted trend curve (`None` if fitting failed, e.g. 0 samples).
    pub curve: Option<Polynomial>,
    /// The chosen parameter value.
    pub best_x: f64,
    /// The estimated score at `best_x`.
    pub best_score: f64,
    /// Number of global-phase samples (rest are local).
    pub nr_global: usize,
}

/// Run the tuning procedure; `eval` maps a parameter value to a score
/// (higher is better).
pub fn tune<F: FnMut(f64) -> f64>(cfg: &TunerConfig, mut eval: F) -> TuneResult {
    let budget = cfg.nr_samples();
    let (nr_global, nr_local) = Sampler::split_budget(budget);
    let mut sampler = Sampler::new(cfg.range.0, cfg.range.1, cfg.seed);
    let mut samples: Vec<(f64, f64)> = Vec::with_capacity(budget);
    // Each sample advances the tuner's virtual clock by one unit of work.
    let mut now: Ns = 0;

    for x in sampler.plan_global(nr_global) {
        let score = eval(x);
        now += cfg.unit_work_time;
        daos_trace::trace!(now, TunerSample { x, score, phase: daos_trace::SamplePhase::Global });
        samples.push((x, score));
    }
    let best_so_far = samples
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal));
    if let Some((bx, _)) = best_so_far {
        for x in sampler.plan_local(bx, nr_local) {
            let score = eval(x);
            now += cfg.unit_work_time;
            daos_trace::trace!(now, TunerSample {
                x,
                score,
                phase: daos_trace::SamplePhase::Local,
            });
            samples.push((x, score));
        }
    }

    let degree = paper_degree(samples.len());
    daos_trace::trace!(now, TunerRefit { degree: degree as u64, nr_samples: samples.len() as u64 });
    let curve = Polynomial::fit(&samples, degree);
    // Search the fitted curve only over the sampled hull: outside it the
    // polynomial is pure extrapolation and its peaks are artefacts.
    let (hull_lo, hull_hi) = samples.iter().fold(
        (f64::INFINITY, f64::NEG_INFINITY),
        |(lo, hi), &(x, _)| (lo.min(x), hi.max(x)),
    );
    let (best_x, best_score) = match &curve {
        Some(poly) if hull_hi > hull_lo => {
            let Peak { x, y } = best_peak(poly, hull_lo, hull_hi);
            (x, y)
        }
        _ => best_so_far.unwrap_or((cfg.range.0, f64::NEG_INFINITY)),
    };
    daos_trace::trace!(now, TunerStep { best_x, best_score });
    // One TunerStep span covers the whole procedure: enter at virtual 0,
    // exit at `now` (the time the sampling budget actually consumed).
    daos_trace::span!(0, TunerStep, now);
    TuneResult { samples, curve, best_x, best_score, nr_global }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::clock::sec;

    fn cfg(nr_samples: u64) -> TunerConfig {
        TunerConfig {
            time_limit: sec(nr_samples * 10),
            unit_work_time: sec(10),
            range: (0.0, 60.0),
            seed: 42,
        }
    }

    #[test]
    fn sample_budget_from_time_limit() {
        assert_eq!(cfg(10).nr_samples(), 10);
        let c = TunerConfig {
            time_limit: sec(95),
            unit_work_time: sec(10),
            range: (0.0, 1.0),
            seed: 0,
        };
        assert_eq!(c.nr_samples(), 9, "truncates to whole samples");
    }

    #[test]
    fn finds_peak_of_smooth_noisy_curve() {
        // The Fig. 5 situation: true peak near min_age 16, noise on top.
        let truth = |x: f64| 25.0 - (x - 16.0).powi(2) / 30.0;
        let mut state = 0u64;
        let mut noisy = |x: f64| {
            // Cheap deterministic noise.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 2.0;
            truth(x) + noise
        };
        let result = tune(&cfg(10), &mut noisy);
        assert_eq!(result.samples.len(), 10);
        assert_eq!(result.nr_global, 6);
        assert!(
            (result.best_x - 16.0).abs() < 8.0,
            "estimated peak {} should be near 16",
            result.best_x
        );
        assert!(result.curve.is_some());
        // The local samples must cluster near the global best.
        let global_best = result.samples[..6]
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        for &(x, _) in &result.samples[6..] {
            assert!((x - global_best).abs() <= 6.0 + 1e-9, "local sample {x} near {global_best}");
        }
    }

    #[test]
    fn monotonic_score_picks_boundary() {
        // Peak search is clamped to the sampled hull, so the chosen value
        // sits at the outermost sample of the better flank — within one
        // global stratum width (60 / 5 global samples = 12) of the true
        // boundary.
        let result = tune(&cfg(9), |x| x); // more aggressive always better
        assert!(result.best_x > 60.0 - 13.0, "best_x {}", result.best_x);
        let result = tune(&cfg(9), |x| -x);
        assert!(result.best_x < 13.0, "best_x {}", result.best_x);
    }

    #[test]
    fn more_samples_improve_estimate() {
        let truth = |x: f64| 20.0 - (x - 30.0).powi(2) / 50.0;
        let mut phase = 0.0f64;
        let mut noisy = |x: f64| {
            phase += 1.7;
            truth(x) + phase.sin() * 3.0
        };
        let coarse = tune(&cfg(6), &mut noisy);
        let fine = tune(&cfg(30), &mut noisy);
        let err_c = (coarse.best_x - 30.0).abs();
        let err_f = (fine.best_x - 30.0).abs();
        assert!(err_f <= err_c + 5.0, "coarse {err_c}, fine {err_f}");
        assert!(err_f < 10.0, "fine estimate err {err_f}");
    }

    #[test]
    fn zero_budget_degrades_gracefully() {
        let result = tune(&cfg(0), |_| panic!("must not evaluate"));
        assert!(result.samples.is_empty());
        assert_eq!(result.best_x, 0.0);
    }

    #[test]
    fn single_sample_budget() {
        let result = tune(&cfg(1), |x| x * 2.0);
        assert_eq!(result.samples.len(), 1);
        assert!(result.best_score.is_finite());
    }

    #[test]
    fn tuner_events_reach_collector() {
        daos_trace::install(daos_trace::Collector::builder().build().unwrap()).unwrap();
        let result = tune(&cfg(10), |x| x);
        let collector = daos_trace::take().unwrap();
        let names: Vec<&str> =
            collector.events().iter().map(|te| te.event.name()).collect();
        assert_eq!(names.iter().filter(|n| **n == "TunerSample").count(), 10);
        assert!(names.contains(&"TunerRefit"));
        assert!(names.contains(&"TunerStep"));
        assert_eq!(collector.registry().gauge("tuner.best_x"), Some(result.best_x));
        assert_eq!(collector.registry().counter("tuner.samples"), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tune(&cfg(10), |x| (x - 20.0).cos() * 10.0);
        let b = tune(&cfg(10), |x| (x - 20.0).cos() * 10.0);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.best_x, b.best_x);
    }
}


daos_util::json_struct!(TunerConfig { time_limit, unit_work_time, range, seed });
