//! Score functions unifying performance and memory efficiency (§3.3).
//!
//! The default is the paper's Listing 2: equal weight on performance and
//! memory saving, with an SLA that tolerates at most a 10 % performance
//! drop — samples violating the SLA score as badly as the worst sample
//! seen so far. Scores are reported ×100 (percent points), matching the
//! 5–45 ranges plotted in Figures 4, 5 and 8.


/// Raw measurements of one sample run plus the no-action baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreInputs {
    /// Runtime of the tuned run (any consistent unit).
    pub runtime: f64,
    /// Runtime of the original (no scheme) run.
    pub orig_runtime: f64,
    /// Memory footprint (RSS) of the tuned run.
    pub rss: f64,
    /// Memory footprint of the original run.
    pub orig_rss: f64,
}

impl ScoreInputs {
    /// Performance score: `-(runtime/orig_runtime - 1)` — positive when
    /// the tuned run is faster.
    pub fn pscore(&self) -> f64 {
        -(self.runtime / self.orig_runtime - 1.0)
    }

    /// Memory score: `-(rss/orig_rss - 1)` — positive when memory shrank.
    pub fn mscore(&self) -> f64 {
        -(self.rss / self.orig_rss - 1.0)
    }
}

/// A (stateful) score function. Statefulness matters: Listing 2 returns
/// the *worst score seen so far* for SLA-violating samples.
pub trait ScoreFn {
    /// Score one sample.
    fn score(&mut self, inputs: &ScoreInputs) -> f64;
    /// Reset accumulated state between tuning sessions.
    fn reset(&mut self);
}

/// Listing 2 of the paper, verbatim (×100 for percent points):
///
/// ```text
/// pscore = -1 * (runtime / orig_runtime - 1)
/// mscore = -1 * (rss / orig_rss - 1)
/// if pscore > -0.1:
///     score = 0.5 * pscore + 0.5 * mscore
///     prev_scores.append(score)
///     return score
/// return min(prev_scores)
/// ```
#[derive(Debug, Clone)]
pub struct DefaultScore {
    /// SLA floor on `pscore` (−0.1 = at most 10 % slowdown).
    pub sla_pscore_floor: f64,
    /// Weight on performance (memory gets `1 - w`).
    pub perf_weight: f64,
    prev_scores: Vec<f64>,
}

impl Default for DefaultScore {
    fn default() -> Self {
        Self { sla_pscore_floor: -0.1, perf_weight: 0.5, prev_scores: Vec::new() }
    }
}

/// Floor for SLA-violation scores when no valid sample exists yet.
pub const WORST_SCORE: f64 = -100.0;

impl ScoreFn for DefaultScore {
    fn score(&mut self, inputs: &ScoreInputs) -> f64 {
        let pscore = inputs.pscore();
        let mscore = inputs.mscore();
        if pscore > self.sla_pscore_floor {
            let score =
                100.0 * (self.perf_weight * pscore + (1.0 - self.perf_weight) * mscore);
            self.prev_scores.push(score);
            score
        } else if self.prev_scores.is_empty() {
            // Listing 2 leaves this case (min of an empty list) undefined;
            // returning the raw weighted score keeps the value informative
            // (and still worse than any SLA-compliant sample's would be in
            // practice, since pscore < -0.1 dominates it).
            (100.0 * (self.perf_weight * pscore + (1.0 - self.perf_weight) * mscore))
                .max(WORST_SCORE)
        } else {
            self.prev_scores.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    fn reset(&mut self) {
        self.prev_scores.clear();
    }
}

/// A stateless score function wrapping a closure, for custom metrics
/// ("users can define a new score function", §3.5).
pub struct CustomScore<F: FnMut(&ScoreInputs) -> f64>(pub F);

impl<F: FnMut(&ScoreInputs) -> f64> ScoreFn for CustomScore<F> {
    fn score(&mut self, inputs: &ScoreInputs) -> f64 {
        (self.0)(inputs)
    }
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(runtime: f64, rss: f64) -> ScoreInputs {
        ScoreInputs { runtime, orig_runtime: 100.0, rss, orig_rss: 100.0 }
    }

    #[test]
    fn pscore_mscore_signs() {
        let i = inputs(90.0, 50.0);
        assert!((i.pscore() - 0.1).abs() < 1e-12, "10% faster → +0.1");
        assert!((i.mscore() - 0.5).abs() < 1e-12, "50% smaller → +0.5");
        let worse = inputs(120.0, 150.0);
        assert!(worse.pscore() < 0.0);
        assert!(worse.mscore() < 0.0);
    }

    #[test]
    fn equal_weight_combination() {
        let mut f = DefaultScore::default();
        // Same runtime, 40 % memory saved → score = 0.5*0 + 0.5*0.4 = 20.
        let s = f.score(&inputs(100.0, 60.0));
        assert!((s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sla_violation_returns_worst_so_far() {
        let mut f = DefaultScore::default();
        let good = f.score(&inputs(100.0, 60.0)); // 20
        let ok = f.score(&inputs(105.0, 80.0)); // 0.5*(-.05)+0.5*.2 = 7.5
        assert!(good > ok);
        // 30 % slowdown violates the 10 % SLA → min of previous = 7.5.
        let bad = f.score(&inputs(130.0, 10.0));
        assert!((bad - ok).abs() < 1e-9);
        // Exactly -0.1 pscore is also a violation (strict >).
        let edge = f.score(&ScoreInputs {
            runtime: 110.0,
            orig_runtime: 100.0,
            rss: 0.0,
            orig_rss: 100.0,
        });
        assert!((edge - ok).abs() < 1e-9);
    }

    #[test]
    fn sla_violation_with_no_history_returns_raw_score() {
        let mut f = DefaultScore::default();
        // 100% slowdown, 99% saving: raw = 100*(0.5*(-1.0)+0.5*0.99).
        let s = f.score(&inputs(200.0, 1.0));
        assert!((s - (-0.5)).abs() < 1e-9, "raw weighted score, got {s}");
        // Catastrophic violations floor at WORST_SCORE.
        f.reset();
        let s = f.score(&inputs(100_000.0, 100.0));
        assert_eq!(s, WORST_SCORE);
        f.reset();
        let s2 = f.score(&inputs(100.0, 50.0));
        assert!(s2 > 0.0, "reset clears the history");
    }

    #[test]
    fn custom_score_closure() {
        // Memory-only objective.
        let mut f = CustomScore(|i: &ScoreInputs| i.mscore() * 100.0);
        assert_eq!(f.score(&inputs(500.0, 25.0)), 75.0);
    }
}


daos_util::json_struct!(ScoreInputs { runtime, orig_runtime, rss, orig_rss });
