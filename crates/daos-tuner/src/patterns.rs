//! The six score-vs-aggressiveness patterns of Figure 3 (§3.3).
//!
//! The paper argues that, because performance degrades in a
//! gentle–steep–gentle S-curve as a reclaim action gets more aggressive
//! while memory efficiency improves in the mirror image, a
//! perf+memory score follows one of six shapes. Three "primary" shapes:
//!
//! 1. continuously increases (memory efficiency dominates);
//! 2. increases then decreases, but stays **above** the no-action level;
//! 3. increases then decreases, ending **below** the no-action level;
//!
//! and their three complements (4: continuously decreases; 5: decreases
//! then increases, ending below; 6: decreases then increases, ending
//! above). This module generates canonical curves for each pattern and
//! classifies measured curves into them.


use crate::polyfit::Polynomial;

/// One of the six Fig. 3 score patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScorePattern {
    /// 1: monotonically increasing with aggressiveness.
    Increasing,
    /// 2: rises, then falls, final score still above the no-action score.
    RiseFallAbove,
    /// 3: rises, then falls below the no-action score.
    RiseFallBelow,
    /// 4: monotonically decreasing.
    Decreasing,
    /// 5: falls, then rises but ends below the no-action score.
    FallRiseBelow,
    /// 6: falls, then rises above the no-action score.
    FallRiseAbove,
}

impl ScorePattern {
    /// All six, in the paper's numbering order.
    pub fn all() -> [ScorePattern; 6] {
        [
            ScorePattern::Increasing,
            ScorePattern::RiseFallAbove,
            ScorePattern::RiseFallBelow,
            ScorePattern::Decreasing,
            ScorePattern::FallRiseBelow,
            ScorePattern::FallRiseAbove,
        ]
    }

    /// Paper index (1-based).
    pub fn index(&self) -> usize {
        match self {
            ScorePattern::Increasing => 1,
            ScorePattern::RiseFallAbove => 2,
            ScorePattern::RiseFallBelow => 3,
            ScorePattern::Decreasing => 4,
            ScorePattern::FallRiseBelow => 5,
            ScorePattern::FallRiseAbove => 6,
        }
    }

    /// A canonical curve of this pattern over `t ∈ [0, 1]`
    /// (aggressiveness normalised), with score 0 at `t = 0`.
    pub fn canonical(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match self {
            ScorePattern::Increasing => 20.0 * t,
            ScorePattern::RiseFallAbove => 25.0 * t * (1.2 - t) / 0.36, // peak 25 at 0.6, ends ~14
            ScorePattern::RiseFallBelow => 100.0 * t * (0.7 - t),       // peak then negative
            ScorePattern::Decreasing => -20.0 * t,
            ScorePattern::FallRiseBelow => -25.0 * t * (1.2 - t) / 0.36,
            ScorePattern::FallRiseAbove => -100.0 * t * (0.7 - t),
        }
    }
}

impl core::fmt::Display for ScorePattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ScorePattern::Increasing => "1: continuously increasing",
            ScorePattern::RiseFallAbove => "2: rise then fall, still better than no action",
            ScorePattern::RiseFallBelow => "3: rise then fall, worse than no action",
            ScorePattern::Decreasing => "4: continuously decreasing",
            ScorePattern::FallRiseBelow => "5: fall then rise, worse than no action",
            ScorePattern::FallRiseAbove => "6: fall then rise, better than no action",
        };
        f.write_str(s)
    }
}

/// Classify a measured score curve.
///
/// `samples` are `(aggressiveness, score)` pairs (any order); the curve is
/// smoothed with a cubic fit before the shape test so per-run noise (the
/// paper notes "random score variations") does not masquerade as extra
/// inflections. Returns `None` for fewer than 4 samples or a degenerate
/// fit.
pub fn classify(samples: &[(f64, f64)]) -> Option<ScorePattern> {
    if samples.len() < 4 {
        return None;
    }
    let mut xs: Vec<f64> = samples.iter().map(|s| s.0).collect();
    xs.sort_by(f64::total_cmp);
    let (lo, hi) = (xs[0], xs[xs.len() - 1]);
    // NaN-safe emptiness check: deliberately NOT `hi <= lo` (NaN must bail).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(hi > lo) {
        return None;
    }
    let poly = Polynomial::fit(samples, 3.min(samples.len() - 1))?;

    // Sample the smoothed curve.
    const GRID: usize = 64;
    let ys: Vec<f64> = (0..=GRID)
        .map(|i| poly.eval(lo + (hi - lo) * i as f64 / GRID as f64))
        .collect();
    let y0 = ys[0];
    let yend = ys[GRID];
    let (max_i, &max_y) = ys
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(core::cmp::Ordering::Equal))?;
    let (min_i, &min_y) = ys
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(core::cmp::Ordering::Equal))?;

    let span = (max_y - min_y).max(1e-12);
    let near = |a: f64, b: f64| (a - b).abs() < 0.05 * span;
    let interior = |i: usize| i > GRID / 16 && i < GRID - GRID / 16;

    // Peak in the interior → rise-then-fall family.
    if interior(max_i) && !near(max_y, y0.max(yend)) {
        return Some(if yend >= y0 {
            ScorePattern::RiseFallAbove
        } else {
            ScorePattern::RiseFallBelow
        });
    }
    // Valley in the interior → fall-then-rise family.
    if interior(min_i) && !near(min_y, y0.min(yend)) {
        return Some(if yend >= y0 {
            ScorePattern::FallRiseAbove
        } else {
            ScorePattern::FallRiseBelow
        });
    }
    // Monotone families.
    Some(if yend >= y0 { ScorePattern::Increasing } else { ScorePattern::Decreasing })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: ScorePattern, noise: f64) -> Vec<(f64, f64)> {
        let mut state = 12345u64;
        (0..=30)
            .map(|i| {
                let t = i as f64 / 30.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let n = ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 2.0 * noise;
                (t, pattern.canonical(t) + n)
            })
            .collect()
    }

    #[test]
    fn canonical_curves_classify_as_themselves() {
        for p in ScorePattern::all() {
            let got = classify(&sample(p, 0.0)).unwrap();
            assert_eq!(got, p, "clean canonical curve of {p}");
        }
    }

    #[test]
    fn classification_robust_to_noise() {
        for p in ScorePattern::all() {
            let got = classify(&sample(p, 1.0)).unwrap();
            assert_eq!(got, p, "noisy curve of {p}");
        }
    }

    #[test]
    fn canonical_start_at_zero() {
        for p in ScorePattern::all() {
            assert!(p.canonical(0.0).abs() < 1e-9, "{p} must start at no-action score 0");
        }
    }

    #[test]
    fn pattern_2_3_end_relation() {
        assert!(ScorePattern::RiseFallAbove.canonical(1.0) > 0.0);
        assert!(ScorePattern::RiseFallBelow.canonical(1.0) < 0.0);
        assert!(ScorePattern::FallRiseAbove.canonical(1.0) > 0.0);
        assert!(ScorePattern::FallRiseBelow.canonical(1.0) < 0.0);
    }

    #[test]
    fn too_few_samples_is_none() {
        assert_eq!(classify(&[(0.0, 1.0), (1.0, 2.0)]), None);
        assert_eq!(classify(&[]), None);
        // Degenerate x range.
        assert_eq!(classify(&[(1.0, 1.0); 6]), None);
    }

    #[test]
    fn indices_match_paper_numbering() {
        let idx: Vec<usize> = ScorePattern::all().iter().map(|p| p.index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5, 6]);
    }
}


daos_util::json_enum!(ScorePattern {
    Increasing, RiseFallAbove, RiseFallBelow, Decreasing, FallRiseBelow,
    FallRiseAbove,
});
