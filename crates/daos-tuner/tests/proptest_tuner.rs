//! Property tests for the tuner's numerical components.

use daos_tuner::{best_peak, paper_degree, DefaultScore, Polynomial, ScoreFn, ScoreInputs};
use daos_util::prop::{btree_set_of, vec_of, TestCaseError};
use daos_util::{prop_assert, proptest};

proptest! {
    cases = 128;

    /// A full-degree fit interpolates its (distinct-x) samples.
    fn full_degree_fit_interpolates(
        xs in btree_set_of(-50i32..50, 2..6),
        ys in vec_of(-100i32..100, 6),
    ) {
        let pts: Vec<(f64, f64)> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| (x as f64, y as f64))
            .collect();
        let poly = Polynomial::fit(&pts, pts.len() - 1)
            .ok_or_else(|| TestCaseError::fail("fit failed"))?;
        for &(x, y) in &pts {
            prop_assert!((poly.eval(x) - y).abs() < 1e-5, "p({x}) = {} vs {y}", poly.eval(x));
        }
    }

    /// The derivative is consistent with finite differences.
    fn derivative_matches_finite_difference(
        coeff_seed in vec_of(-5.0f64..5.0, 3..6),
        x in -10.0f64..10.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let t = -10.0 + i as f64 * 2.0;
                let y: f64 = coeff_seed
                    .iter()
                    .enumerate()
                    .map(|(k, c)| c * (t / 10.0).powi(k as i32))
                    .sum();
                (t, y)
            })
            .collect();
        let poly = Polynomial::fit(&pts, coeff_seed.len() - 1)
            .ok_or_else(|| TestCaseError::fail("fit failed"))?;
        let h = 1e-5;
        let fd = (poly.eval(x + h) - poly.eval(x - h)) / (2.0 * h);
        prop_assert!((poly.deriv(x) - fd).abs() < 1e-3, "deriv {} vs fd {}", poly.deriv(x), fd);
    }

    /// best_peak returns a point inside the interval whose value is at
    /// least the curve's value at 64 probe points (within tolerance).
    fn best_peak_is_global_max_on_interval(
        ys in vec_of(-50i32..50, 6),
        lo in -20.0f64..0.0,
        width in 1.0f64..40.0,
    ) {
        let hi = lo + width;
        let pts: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| (lo + width * i as f64 / 5.0, y as f64))
            .collect();
        let poly = Polynomial::fit(&pts, 3).ok_or_else(|| TestCaseError::fail("fit"))?;
        let peak = best_peak(&poly, lo, hi);
        prop_assert!(peak.x >= lo - 1e-9 && peak.x <= hi + 1e-9);
        for i in 0..=64 {
            let x = lo + width * i as f64 / 64.0;
            prop_assert!(
                poly.eval(x) <= peak.y + 1e-6 + peak.y.abs() * 1e-9,
                "probe {} has {} > peak {}", x, poly.eval(x), peak.y
            );
        }
    }

    /// paper_degree stays within sane bounds for any budget.
    fn paper_degree_bounds(n in 0usize..10_000) {
        let d = paper_degree(n);
        prop_assert!((1..=8).contains(&d));
        if n >= 3 {
            prop_assert!(d <= n / 3 || n / 3 == 0);
        }
    }

    /// Listing-2 invariants: SLA-compliant scores are the weighted sum;
    /// violating scores never exceed the best compliant score seen.
    fn listing2_violations_never_beat_history(
        runs in vec_of((50.0f64..300.0, 1.0f64..200.0), 1..20),
    ) {
        let mut f = DefaultScore::default();
        let mut best_compliant = f64::NEG_INFINITY;
        for (runtime, rss) in runs {
            let inputs = ScoreInputs { runtime, orig_runtime: 100.0, rss, orig_rss: 100.0 };
            let s = f.score(&inputs);
            if inputs.pscore() > -0.1 {
                best_compliant = best_compliant.max(s);
            } else if best_compliant.is_finite() {
                prop_assert!(
                    s <= best_compliant + 1e-9,
                    "violation scored {} above best compliant {}", s, best_compliant
                );
            }
        }
    }
}
