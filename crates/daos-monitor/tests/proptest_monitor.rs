//! Property-based invariants of the adaptive regions mechanism (§5 of
//! DESIGN.md): byte conservation, ordering, count bounds, counter bounds.

use daos_mm::addr::{AddrRange, PAGE_SIZE};
use daos_mm::clock::ms;
use daos_monitor::{MonitorAttrs, MonitorCtx, RegionSet, SyntheticPrimitives, SyntheticSpace};
use daos_util::prop::{vec_of, Strategy, StrategyExt, TestCaseError};
use daos_util::rng::SmallRng;
use daos_util::{prop_assert, prop_assert_eq, proptest};

fn arb_ranges() -> impl Strategy<Value = Vec<AddrRange>> {
    // 1..4 disjoint page-aligned ranges of 1..2048 pages.
    vec_of((0u64..1000, 1u64..2048), 1..4).prop_map(|specs| {
        let mut start = 0u64;
        let mut out = Vec::new();
        for (gap, pages) in specs {
            start += (gap + 1) * PAGE_SIZE;
            let end = start + pages * PAGE_SIZE;
            out.push(AddrRange::new(start, end));
            start = end;
        }
        out
    })
}

proptest! {
    cases = 48;

    fn split_merge_cycles_conserve(
        ranges in arb_ranges(),
        seed in 0u64..500,
        cycles in 1usize..12,
        max_nr in 12usize..200,
    ) {
        let min_nr = 10usize;
        let mut set = RegionSet::init(&ranges, min_nr);
        let bytes = set.total_bytes();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..cycles {
            set.split(&mut rng, max_nr);
            prop_assert!(set.len() <= max_nr);
            prop_assert_eq!(set.total_bytes(), bytes);
            set.check_invariants().map_err(TestCaseError::fail)?;

            set.merge_with_aging(2, (bytes / min_nr as u64).max(PAGE_SIZE), min_nr);
            prop_assert_eq!(set.total_bytes(), bytes);
            set.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    fn nr_accesses_bounded_by_samples_per_window(
        seed in 0u64..200,
        hot_pages in 1u64..512,
    ) {
        let attrs = MonitorAttrs {
            sampling_interval: ms(5),
            aggregation_interval: ms(100),
            regions_update_interval: ms(1000),
            min_nr_regions: 10,
            max_nr_regions: 60,
            adaptive: true,
        };
        let space = AddrRange::new(0, 4 << 20);
        let hot = AddrRange::new(0, hot_pages.min(1024) * PAGE_SIZE);
        let mut env = SyntheticSpace::new(vec![space]);
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, seed);
        let mut sink = Vec::new();
        let mut now = 0;
        for _ in 0..80 {
            env.touch_range(hot);
            now += attrs.sampling_interval;
            ctx.step(&mut env, now, &mut sink);
        }
        let cap = attrs.max_nr_accesses();
        for agg in &sink {
            for r in &agg.regions {
                prop_assert!(
                    r.nr_accesses <= cap,
                    "nr_accesses {} exceeds samples/window {}", r.nr_accesses, cap
                );
            }
        }
        // The overhead bound: per tick, at most 2*max_nr_regions checks.
        prop_assert!(ctx.overhead.max_checks_per_tick <= 2 * attrs.max_nr_regions as u64);
    }

    fn update_ranges_covers_new_target_exactly(
        ranges in arb_ranges(),
        new_ranges in arb_ranges(),
    ) {
        let mut set = RegionSet::init(&ranges, 10);
        set.update_ranges(&new_ranges);
        set.check_invariants().map_err(TestCaseError::fail)?;
        let want: u64 = new_ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(set.total_bytes(), want);
    }
}
