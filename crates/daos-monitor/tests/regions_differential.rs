//! Differential equivalence tests: the struct-of-arrays `RegionSet`
//! (`daos_monitor::regions`) against the original array-of-structs
//! implementation kept as an oracle (`daos_monitor::reference`).
//!
//! Both stores are driven through identical seeded operation sequences —
//! two `SmallRng`s built from the same seed, consumed in the same order —
//! and compared region by region (range, nr_accesses, last_nr_accesses,
//! age, sampling_addr) after every step. Any semantic drift in the
//! rewritten hot path shows up as a field-level mismatch with the exact
//! seed and step in the panic message.

use daos_mm::addr::{AddrRange, PAGE_SIZE};
use daos_monitor::reference;
use daos_monitor::regions::RegionSet;
use daos_util::rng::SmallRng;

fn mb(n: u64) -> u64 {
    n << 20
}

/// Assert the two stores are region-for-region identical.
fn assert_same(soa: &RegionSet, aos: &reference::RegionSet, what: &str) {
    soa.check_invariants().unwrap_or_else(|e| panic!("{what}: SoA invariants: {e}"));
    aos.check_invariants().unwrap_or_else(|e| panic!("{what}: reference invariants: {e}"));
    assert_eq!(soa.len(), aos.len(), "{what}: region count");
    assert_eq!(soa.total_bytes(), aos.total_bytes(), "{what}: total bytes");
    for (i, (s, r)) in soa.iter().zip(aos.regions().iter()).enumerate() {
        assert_eq!(s.range, r.range, "{what}: region {i} range");
        assert_eq!(s.nr_accesses, r.nr_accesses, "{what}: region {i} nr_accesses");
        assert_eq!(s.last_nr_accesses, r.last_nr_accesses, "{what}: region {i} last_nr_accesses");
        assert_eq!(s.age, r.age, "{what}: region {i} age");
        assert_eq!(s.sampling_addr, r.sampling_addr, "{what}: region {i} sampling_addr");
    }
    assert_eq!(soa.snapshot(), aos.snapshot(), "{what}: snapshot");
}

/// Drive both stores through `windows` aggregation windows of synthetic
/// monitoring: prepare samples, check them against a deterministic
/// "young" predicate, merge+age, reset, split — comparing after every op.
fn run_monitor_cycle(seed: u64, ranges: &[AddrRange], windows: usize) {
    let min_nr = 10;
    let max_nr = 100;
    let threshold = 2;

    let mut soa = RegionSet::init(ranges, min_nr);
    let mut aos = reference::RegionSet::init(ranges, min_nr);
    assert_same(&soa, &aos, &format!("seed {seed}: init"));

    let mut rng_a = SmallRng::seed_from_u64(seed);
    let mut rng_b = SmallRng::seed_from_u64(seed);
    // Deterministic access oracle: the low third of each range is "hot".
    let hot = |addr: u64| ranges.iter().any(|r| r.contains(addr) && addr < r.start + r.len() / 3);

    for w in 0..windows {
        for tick in 0..5 {
            let tag = format!("seed {seed}: window {w} tick {tick}");
            let mut olded_a = Vec::new();
            let mut olded_b = Vec::new();
            let pa = soa.prepare_samples(&mut rng_a, |a| olded_a.push(a));
            let pb = aos.prepare_samples(&mut rng_b, |a| olded_b.push(a));
            assert_eq!(pa, pb, "{tag}: prepared count");
            assert_eq!(olded_a, olded_b, "{tag}: mkold order");
            assert_same(&soa, &aos, &format!("{tag}: after prepare"));

            let ca = soa.check_samples(hot);
            let cb = aos.check_samples(hot);
            assert_eq!(ca, cb, "{tag}: checked count");
            assert_same(&soa, &aos, &format!("{tag}: after check"));
        }
        let tag = format!("seed {seed}: window {w}");
        let sz_limit = (soa.total_bytes() / min_nr as u64).max(PAGE_SIZE);
        soa.merge_with_aging(threshold, sz_limit, min_nr);
        aos.merge_with_aging(threshold, sz_limit, min_nr);
        assert_same(&soa, &aos, &format!("{tag}: after merge"));

        soa.reset_aggregated();
        aos.reset_aggregated();
        assert_same(&soa, &aos, &format!("{tag}: after reset"));

        soa.split(&mut rng_a, max_nr);
        aos.split(&mut rng_b, max_nr);
        assert_same(&soa, &aos, &format!("{tag}: after split"));
    }
}

#[test]
fn monitor_cycle_matches_reference_across_seeds() {
    let ranges = [AddrRange::new(0, mb(32)), AddrRange::new(mb(100), mb(108))];
    for seed in 0..20 {
        run_monitor_cycle(seed, &ranges, 8);
    }
}

#[test]
fn monitor_cycle_matches_reference_on_single_range() {
    for seed in [1, 7, 42, 1337] {
        run_monitor_cycle(seed, &[AddrRange::new(mb(1), mb(65))], 12);
    }
}

#[test]
fn monitor_cycle_matches_reference_on_unaligned_ranges() {
    // Page-unaligned targets exercise the div_ceil page math and
    // `append_evenly`'s final-piece handling in both implementations.
    let ranges = [
        AddrRange::new(0x800, mb(4) + 0x333),
        AddrRange::new(mb(10) + 0xabc, mb(12) + 0x1),
    ];
    for seed in [3, 9, 27] {
        run_monitor_cycle(seed, &ranges, 8);
    }
}

#[test]
fn init_matches_reference_for_tiny_and_skewed_ranges() {
    let cases: &[&[AddrRange]] = &[
        &[AddrRange::new(0, PAGE_SIZE)],
        &[AddrRange::new(0, PAGE_SIZE), AddrRange::new(mb(1), mb(512))],
        &[AddrRange::new(0, 1)], // sub-page range: one single region
        &[AddrRange::new(0, mb(1)), AddrRange::empty(), AddrRange::new(mb(2), mb(3))],
    ];
    for ranges in cases {
        for min_nr in [1, 3, 10, 1000] {
            let soa = RegionSet::init(ranges, min_nr);
            let aos = reference::RegionSet::init(ranges, min_nr);
            assert_same(&soa, &aos, &format!("init min_nr={min_nr} ranges={ranges:?}"));
        }
    }
}

#[test]
fn update_ranges_matches_reference_through_target_churn() {
    // Grow, shrink, shift, punch holes — counters must clip identically.
    let mut soa = RegionSet::init(&[AddrRange::new(0, mb(16))], 10);
    let mut aos = reference::RegionSet::init(&[AddrRange::new(0, mb(16))], 10);
    let mut rng_a = SmallRng::seed_from_u64(99);
    let mut rng_b = SmallRng::seed_from_u64(99);

    let targets: &[&[AddrRange]] = &[
        // Grow at the tail.
        &[AddrRange::new(0, mb(24))],
        // Lose the head, keep the middle, add a far range.
        &[AddrRange::new(mb(2), mb(20)), AddrRange::new(mb(100), mb(104))],
        // Split the first range in two (a straddling region must
        // contribute its counters to both halves).
        &[
            AddrRange::new(mb(2), mb(8)),
            AddrRange::new(mb(12), mb(20)),
            AddrRange::new(mb(100), mb(104)),
        ],
        // Collapse to a sliver, unaligned.
        &[AddrRange::new(mb(5) + 0x123, mb(6) + 0x456)],
        // Everything disappears.
        &[],
        // And comes back.
        &[AddrRange::new(0, mb(8))],
    ];
    for (step, target) in targets.iter().enumerate() {
        // Accumulate some per-region state so clipping has counters to keep.
        soa.prepare_samples(&mut rng_a, |_| {});
        aos.prepare_samples(&mut rng_b, |_| {});
        soa.check_samples(|a| a % (3 * PAGE_SIZE) == 0);
        aos.check_samples(|a| a % (3 * PAGE_SIZE) == 0);
        soa.merge_with_aging(2, mb(4), 4);
        aos.merge_with_aging(2, mb(4), 4);

        soa.update_ranges(target);
        aos.update_ranges(target);
        assert_same(&soa, &aos, &format!("update step {step} → {target:?}"));
    }
}
