//! The monitoring context: the kdamond main loop, driven by virtual time.

use daos_mm::addr::PAGE_SIZE;
use daos_mm::clock::Ns;
use daos_util::rng::SmallRng;

use crate::attrs::MonitorAttrs;
use crate::overhead::OverheadStats;
use crate::primitives::Primitives;
use crate::regions::RegionSet;
use crate::snapshot::Aggregation;

/// Estimated CPU cost of per-region bookkeeping in one aggregation pass
/// (merge, snapshot, reset, split), per region, in ns.
const AGGR_PER_REGION_NS: Ns = 40;

/// A running monitoring context over some primitives implementation.
///
/// The caller advances the context with [`MonitorCtx::step`], passing the
/// current virtual time; all due sampling / aggregation / regions-update
/// work is performed and completed [`Aggregation`]s are appended to the
/// caller's sink (the callback mechanism of §3.1, inverted for Rust
/// ownership).
#[derive(Debug)]
pub struct MonitorCtx<P: Primitives> {
    /// The monitoring attributes in force.
    pub attrs: MonitorAttrs,
    prim: P,
    regions: RegionSet,
    rng: SmallRng,
    next_sample: Ns,
    next_aggr: Ns,
    next_update: Ns,
    /// Cumulative overhead counters.
    pub overhead: OverheadStats,
    /// Monitor CPU time accumulated since the last `take_work_ns`.
    pending_work_ns: Ns,
}

impl<P: Primitives> MonitorCtx<P> {
    /// Start monitoring at virtual time `now`. Target ranges are read
    /// from the primitives immediately and regions initialised to
    /// `attrs.min_nr_regions`.
    pub fn new(attrs: MonitorAttrs, mut prim: P, env: &P::Env, now: Ns, seed: u64) -> Self {
        debug_assert!(attrs.validate().is_ok());
        let ranges = prim.target_ranges(env);
        let regions = RegionSet::init(&ranges, attrs.min_nr_regions);
        Self {
            attrs,
            prim,
            regions,
            rng: SmallRng::seed_from_u64(seed),
            next_sample: now + attrs.sampling_interval,
            next_aggr: now + attrs.aggregation_interval,
            next_update: now + attrs.regions_update_interval,
            overhead: OverheadStats::default(),
            pending_work_ns: 0,
        }
    }

    /// Current regions (testing / diagnostics).
    pub fn regions(&self) -> &RegionSet {
        &self.regions
    }

    /// The primitives implementation.
    pub fn primitives(&self) -> &P {
        &self.prim
    }

    /// Drain the monitor CPU time accumulated since the last call; the
    /// runner charges it to the machine (→ interference slowdown).
    pub fn take_work_ns(&mut self) -> Ns {
        std::mem::take(&mut self.pending_work_ns)
    }

    /// Advance the monitor to `now`, pushing completed aggregation
    /// windows into `sink`.
    ///
    /// Tickless catch-up: the caller advances virtual time in workload
    /// quanta, and between two calls no memory state changes (there is no
    /// concurrent execution in a discrete-event simulation). When a slow
    /// quantum spans several sampling intervals, the intermediate ticks
    /// would observe nothing new — so at most **one** tick fires per
    /// call, at the latest due sample point. This mirrors a real
    /// machine, where a slowed workload still executes *between* every
    /// pair of monitor wakeups; replaying the skipped ticks back-to-back
    /// would instead let consecutive scheme passes observe (and evict)
    /// state the workload never got a chance to re-reference.
    pub fn step(&mut self, env: &mut P::Env, now: Ns, sink: &mut Vec<Aggregation>) {
        if self.next_sample > now {
            return;
        }
        let interval = self.attrs.sampling_interval;
        let skipped = (now - self.next_sample) / interval;
        let t = self.next_sample + skipped * interval;
        self.tick(env, t, sink);
        self.next_sample = t + interval;
    }

    /// One sampling tick at time `t`.
    fn tick(&mut self, env: &mut P::Env, t: Ns, sink: &mut Vec<Aggregation>) {
        let check_cost = self.prim.check_cost_ns(env);
        let mut checks: u64 = 0;

        // Phase 1: evaluate the samples prepared one interval ago.
        {
            let Self { regions, prim, .. } = self;
            checks += regions.check_samples(|addr| prim.young(env, addr));
        }

        // Aggregation boundary: merge+age, report, reset, split. The two
        // spans decompose the historical `final_regions × 40 ns` charge
        // (Aggregate covers merge+snapshot+reset over the merged count,
        // SplitMerge the regions the split added) so their sum equals the
        // old per-boundary cost exactly.
        if self.next_aggr <= t {
            let before_merge = self.regions.len() as u64;
            let after_merge;
            let aggregate_ns = daos_trace::span!(t, Aggregate, {
                if self.attrs.adaptive {
                    let sz_limit = (self.regions.total_bytes()
                        / self.attrs.min_nr_regions.max(1) as u64)
                        .max(PAGE_SIZE);
                    self.regions.merge_with_aging(
                        self.attrs.merge_threshold(),
                        sz_limit,
                        self.attrs.min_nr_regions,
                    );
                } else {
                    // Static sampling still needs the aging bookkeeping.
                    self.regions.merge_with_aging(self.attrs.merge_threshold(), 0, usize::MAX);
                }
                after_merge = self.regions.len() as u64;
                if after_merge != before_merge {
                    daos_trace::trace!(
                        t,
                        RegionMerge { before: before_merge, after: after_merge }
                    );
                }
                let snap = self.regions.snapshot();
                // Stream the window into the trace: one RegionSnapshot per
                // region, committed by the Aggregation event below — this
                // is what lets `daos report` rebuild a MonitorRecord.
                if daos_trace::enabled() {
                    for r in &snap {
                        daos_trace::emit(
                            t,
                            daos_trace::Event::RegionSnapshot {
                                start: r.range.start,
                                end: r.range.end,
                                nr_accesses: r.nr_accesses as u64,
                                age: r.age as u64,
                            },
                        );
                    }
                }
                sink.push(Aggregation {
                    at: t,
                    regions: snap,
                    max_nr_accesses: self.attrs.max_nr_accesses(),
                    aggregation_interval: self.attrs.aggregation_interval,
                });
                daos_trace::trace!(
                    t,
                    Aggregation {
                        nr_regions: after_merge,
                        window_ns: self.attrs.aggregation_interval,
                        max_nr_accesses: self.attrs.max_nr_accesses() as u64,
                    }
                );
                self.regions.reset_aggregated();
                after_merge * AGGR_PER_REGION_NS
            });
            let split_ns = daos_trace::span!(t, SplitMerge, {
                if self.attrs.adaptive {
                    self.regions.split(&mut self.rng, self.attrs.max_nr_regions);
                    let after_split = self.regions.len() as u64;
                    if after_split != after_merge {
                        daos_trace::trace!(
                            t,
                            RegionSplit { before: after_merge, after: after_split }
                        );
                    }
                }
                (self.regions.len() as u64 - after_merge) * AGGR_PER_REGION_NS
            });
            self.pending_work_ns += aggregate_ns + split_ns;
            self.overhead.nr_aggregations += 1;
            // Rebase (rather than increment) so a slow quantum does not
            // leave a backlog of aggregation windows firing in a burst.
            self.next_aggr = t + self.attrs.aggregation_interval;
        }

        // Regions-update boundary: follow mmap()/hotplug changes.
        if self.next_update <= t {
            let ranges = self.prim.target_ranges(env);
            self.regions.update_ranges(&ranges);
            self.next_update = t + self.attrs.regions_update_interval;
        }

        // Phase 2: prepare the next samples — one random page per region.
        {
            let Self { regions, prim, rng, .. } = self;
            checks += regions.prepare_samples(rng, |addr| prim.mkold(env, addr));
        }

        // Overhead accounting: this is where the paper's bound lives —
        // `checks` can never exceed 2 × max_nr_regions per tick.
        debug_assert!(checks <= 2 * self.attrs.max_nr_regions as u64);
        self.overhead.total_checks += checks;
        self.overhead.max_checks_per_tick = self.overhead.max_checks_per_tick.max(checks);
        self.overhead.nr_ticks += 1;
        let work = daos_trace::span!(t, Sample, checks * check_cost);
        self.overhead.work_ns += work;
        self.pending_work_ns += work;
        daos_trace::trace!(
            t,
            SamplingTick { checks, nr_regions: self.regions.len() as u64, work_ns: work }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{SyntheticPrimitives, SyntheticSpace};
    use daos_mm::addr::AddrRange;
    use daos_mm::clock::ms;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    fn small_attrs() -> MonitorAttrs {
        MonitorAttrs {
            sampling_interval: ms(5),
            aggregation_interval: ms(100),
            regions_update_interval: ms(1000),
            min_nr_regions: 10,
            max_nr_regions: 100,
            adaptive: true,
        }
    }

    /// Run the monitor over a synthetic space with a hot prefix and
    /// return the last aggregation.
    fn run_hot_prefix(hot_frac: f64, windows: usize) -> Aggregation {
        let space_range = AddrRange::new(0, mb(64));
        let hot = AddrRange::new(0, (mb(64) as f64 * hot_frac) as u64 / PAGE_SIZE * PAGE_SIZE);
        let mut env = SyntheticSpace::new(vec![space_range]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 42);
        let mut sink = Vec::new();
        let total_ticks = windows * (attrs.aggregation_interval / attrs.sampling_interval) as usize;
        let mut now = 0;
        for _ in 0..total_ticks {
            env.touch_range(hot); // workload touches hot pages every tick
            now += attrs.sampling_interval;
            ctx.step(&mut env, now, &mut sink);
        }
        assert!(!sink.is_empty());
        sink.pop().unwrap()
    }

    #[test]
    fn detects_hot_prefix() {
        let agg = run_hot_prefix(0.25, 30);
        let hot_end = mb(16);
        // Weighted frequency inside vs outside the hot prefix.
        let mut hot_w = 0.0;
        let mut cold_w = 0.0;
        for r in &agg.regions {
            let f = agg.freq_ratio(r) * r.range.len() as f64;
            if r.range.end <= hot_end {
                hot_w += f;
            } else if r.range.start >= hot_end {
                cold_w += f;
            }
        }
        assert!(
            hot_w > 10.0 * cold_w.max(1.0),
            "hot prefix must dominate: hot={hot_w} cold={cold_w}"
        );
        // Hot-byte estimate lands in the right ballpark (±60 %).
        let est = agg.hot_bytes_estimate() as f64;
        let truth = mb(16) as f64;
        assert!(est > truth * 0.4 && est < truth * 1.8, "estimate {est} vs truth {truth}");
    }

    #[test]
    fn region_bounds_hold_forever() {
        let space_range = AddrRange::new(0, mb(128));
        let mut env = SyntheticSpace::new(vec![space_range]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 7);
        let mut sink = Vec::new();
        let mut now = 0;
        for i in 0..600 {
            // Shifting hot window → lots of split/merge churn.
            let base = mb((i / 20) % 64);
            env.touch_range(AddrRange::new(base, base + mb(8)));
            now += attrs.sampling_interval;
            ctx.step(&mut env, now, &mut sink);
            let n = ctx.regions().len();
            assert!(n <= attrs.max_nr_regions, "region cap violated: {n}");
            ctx.regions().check_invariants().unwrap();
            assert_eq!(ctx.regions().total_bytes(), mb(128), "coverage conserved");
        }
        // Overhead bound: ≤ 2 checks per region per tick.
        assert!(ctx.overhead.max_checks_per_tick <= 2 * attrs.max_nr_regions as u64);
        assert!(ctx.overhead.nr_aggregations >= 25);
    }

    #[test]
    fn aging_tracks_idle_time() {
        // Nothing is ever touched → ages grow monotonically.
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(32))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 3);
        let mut sink = Vec::new();
        let mut now = 0;
        let mut last_min_age = 0;
        for w in 1..=20 {
            for _ in 0..20 {
                now += attrs.sampling_interval;
                ctx.step(&mut env, now, &mut sink);
            }
            let agg = sink.last().unwrap();
            let min_age = agg.regions.iter().map(|r| r.age).min().unwrap();
            assert!(min_age >= last_min_age, "idle ages must not regress (w={w})");
            last_min_age = min_age;
        }
        assert!(last_min_age >= 15, "after 20 idle windows ages should be large");
    }

    #[test]
    fn regions_update_follows_target_growth() {
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(8))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 5);
        let mut sink = Vec::new();
        ctx.step(&mut env, ms(500), &mut sink);
        assert_eq!(ctx.regions().total_bytes(), mb(8));
        // Target grows (mmap) — after the update interval the monitor follows.
        env.ranges = vec![AddrRange::new(0, mb(8)), AddrRange::new(mb(100), mb(116))];
        ctx.step(&mut env, ms(2100), &mut sink);
        assert_eq!(ctx.regions().total_bytes(), mb(24));
    }

    #[test]
    fn tickless_catchup_fires_one_tick_per_step() {
        // A caller that jumps far ahead (a slow workload quantum) gets
        // exactly one tick — the intermediate ticks would observe no new
        // state and replaying them would distort scheme decisions.
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(8))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 5);
        let mut sink = Vec::new();
        ctx.step(&mut env, ms(1000), &mut sink); // 200 sampling intervals due
        assert_eq!(ctx.overhead.nr_ticks, 1, "one representative tick");
        assert!(sink.len() <= 1, "at most one aggregation per tick");
        // The next step resumes on the grid right after the big jump.
        ctx.step(&mut env, ms(1005), &mut sink);
        assert_eq!(ctx.overhead.nr_ticks, 2);
    }

    #[test]
    fn steady_stepping_hits_every_tick() {
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(8))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 5);
        let mut sink = Vec::new();
        for i in 1..=100u64 {
            ctx.step(&mut env, i * ms(5), &mut sink);
        }
        assert_eq!(ctx.overhead.nr_ticks, 100);
        assert_eq!(ctx.overhead.nr_aggregations, 5, "one per 100 ms window");
    }

    #[test]
    fn static_mode_keeps_initial_region_grid() {
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(64))]);
        let attrs = MonitorAttrs { adaptive: false, min_nr_regions: 32, max_nr_regions: 32, ..small_attrs() };
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 5);
        let grid: Vec<_> = ctx.regions().iter().map(|r| r.range).collect();
        let mut sink = Vec::new();
        for i in 1..=200u64 {
            env.touch_range(AddrRange::new(0, mb(2)));
            ctx.step(&mut env, i * ms(5), &mut sink);
        }
        let after: Vec<_> = ctx.regions().iter().map(|r| r.range).collect();
        assert_eq!(grid, after, "no splits or merges in static mode");
        // Aging still works.
        let agg = sink.last().unwrap();
        assert!(agg.regions.iter().any(|r| r.age > 0));
    }

    #[test]
    fn trace_registry_is_one_source_of_truth() {
        // With a collector installed for the whole run, re-deriving
        // OverheadStats from the registry must equal the embedded struct.
        daos_trace::install(daos_trace::Collector::builder().build().unwrap()).unwrap();
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(64))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 11);
        let mut sink = Vec::new();
        for i in 1..=300u64 {
            env.touch_range(AddrRange::new(0, mb(4)));
            ctx.step(&mut env, i * ms(5), &mut sink);
        }
        let c = daos_trace::take().unwrap();
        assert_eq!(OverheadStats::from_registry(c.registry()), ctx.overhead);
        // The event stream carries the same bound witness.
        let max_from_events = c
            .events()
            .iter()
            .filter_map(|te| match te.event {
                daos_trace::Event::SamplingTick { checks, .. } => Some(checks),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_from_events, ctx.overhead.max_checks_per_tick);
    }

    #[test]
    fn spans_decompose_the_cost_model() {
        use daos_trace::{keys, Phase};
        daos_trace::install(daos_trace::Collector::builder().build().unwrap()).unwrap();
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(64))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 11);
        let mut sink = Vec::new();
        let mut charged = 0;
        for i in 1..=300u64 {
            env.touch_range(AddrRange::new(0, mb(4)));
            ctx.step(&mut env, i * ms(5), &mut sink);
            charged += ctx.take_work_ns();
        }
        let c = daos_trace::take().unwrap();
        assert_eq!(c.ring().dropped(), 0);
        let reg = c.registry();
        // The Sample span histogram carries exactly the monitor's tick
        // work: count = ticks, sum = work_ns.
        let sample = reg.hist(&keys::span(Phase::Sample)).unwrap();
        assert_eq!(sample.count(), ctx.overhead.nr_ticks);
        assert_eq!(sample.sum(), ctx.overhead.work_ns);
        // Aggregate + SplitMerge spans together equal the historical
        // per-boundary `final_regions × 40 ns` charge.
        let agg = reg.hist(&keys::span(Phase::Aggregate)).unwrap();
        let split = reg.hist(&keys::span(Phase::SplitMerge)).unwrap();
        assert_eq!(agg.count(), ctx.overhead.nr_aggregations);
        assert_eq!(split.count(), ctx.overhead.nr_aggregations);
        assert_eq!(sample.sum() + agg.sum() + split.sum(), charged, "spans cover all charged work");
        // One RegionSnapshot per region per delivered window.
        let expected: u64 = sink.iter().map(|a| a.regions.len() as u64).sum();
        assert_eq!(reg.counter("monitor.region_snapshots"), expected);
    }

    #[test]
    fn work_accounting_drains() {
        let mut env = SyntheticSpace::new(vec![AddrRange::new(0, mb(8))]);
        let attrs = small_attrs();
        let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &env, 0, 5);
        let mut sink = Vec::new();
        ctx.step(&mut env, ms(200), &mut sink);
        // Synthetic checks are free but aggregation bookkeeping is not.
        let w = ctx.take_work_ns();
        assert!(w > 0);
        assert_eq!(ctx.take_work_ns(), 0, "drained");
    }
}
