//! Aggregation results delivered to users (the paper's user-registered
//! callback data: "the access frequency and recency of each region").

use daos_mm::addr::AddrRange;
use daos_mm::clock::Ns;

use crate::region::RegionInfo;

/// One aggregation window's monitoring result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregation {
    /// Virtual time the window closed.
    pub at: Ns,
    /// Merged regions with their access counters and ages.
    pub regions: Vec<RegionInfo>,
    /// Maximum possible value of `nr_accesses` this window (for
    /// normalising counters to access-frequency ratios).
    pub max_nr_accesses: u32,
    /// Aggregation interval length (for converting ages to time).
    pub aggregation_interval: Ns,
}

impl Aggregation {
    /// Access-frequency ratio (0..=1) of a region in this window.
    pub fn freq_ratio(&self, r: &RegionInfo) -> f64 {
        if self.max_nr_accesses == 0 {
            0.0
        } else {
            r.nr_accesses as f64 / self.max_nr_accesses as f64
        }
    }

    /// A region's age expressed in nanoseconds of virtual time.
    pub fn age_ns(&self, r: &RegionInfo) -> Ns {
        r.age as Ns * self.aggregation_interval
    }

    /// Total monitored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.range.len()).sum()
    }

    /// Sum of `len × freq_ratio` — a working-set-size estimate.
    pub fn hot_bytes_estimate(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| (r.range.len() as f64 * self.freq_ratio(r)) as u64)
            .sum()
    }
}

/// A log of aggregations, as produced by the paper's `rec`/`prec`
/// configurations and consumed by the Fig. 6 heatmap renderer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MonitorRecord {
    /// All aggregation windows, in time order.
    pub aggregations: Vec<Aggregation>,
}

impl MonitorRecord {
    /// Empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one window.
    pub fn push(&mut self, a: Aggregation) {
        self.aggregations.push(a);
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.aggregations.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.aggregations.is_empty()
    }

    /// Time span `(first, last)` covered by the record.
    pub fn time_span(&self) -> Option<(Ns, Ns)> {
        Some((self.aggregations.first()?.at, self.aggregations.last()?.at))
    }

    /// The union of all observed region ranges (for axis scaling).
    pub fn address_span(&self) -> Option<AddrRange> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for a in &self.aggregations {
            for r in &a.regions {
                lo = lo.min(r.range.start);
                hi = hi.max(r.range.end);
            }
        }
        (lo < hi).then_some(AddrRange::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(start: u64, end: u64, nr: u32, age: u32) -> RegionInfo {
        RegionInfo { range: AddrRange::new(start, end), nr_accesses: nr, age }
    }

    #[test]
    fn ratios_and_ages() {
        let a = Aggregation {
            at: 100,
            regions: vec![info(0, 0x1000, 10, 3), info(0x1000, 0x3000, 0, 7)],
            max_nr_accesses: 20,
            aggregation_interval: 50,
        };
        assert_eq!(a.freq_ratio(&a.regions[0]), 0.5);
        assert_eq!(a.freq_ratio(&a.regions[1]), 0.0);
        assert_eq!(a.age_ns(&a.regions[0]), 150);
        assert_eq!(a.total_bytes(), 0x3000);
        assert_eq!(a.hot_bytes_estimate(), 0x800);
    }

    #[test]
    fn record_spans() {
        let mut rec = MonitorRecord::new();
        assert!(rec.is_empty());
        assert_eq!(rec.time_span(), None);
        assert_eq!(rec.address_span(), None);
        for t in [10, 20, 30] {
            rec.push(Aggregation {
                at: t,
                regions: vec![info(0x1000 * t, 0x1000 * t + 0x1000, 1, 0)],
                max_nr_accesses: 20,
                aggregation_interval: 10,
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.time_span(), Some((10, 30)));
        assert_eq!(rec.address_span(), Some(AddrRange::new(0xa000, 0x1f000)));
    }

    #[test]
    fn zero_max_accesses_safe() {
        let a = Aggregation {
            at: 0,
            regions: vec![info(0, 0x1000, 5, 0)],
            max_nr_accesses: 0,
            aggregation_interval: 1,
        };
        assert_eq!(a.freq_ratio(&a.regions[0]), 0.0);
    }
}


daos_util::json_struct!(Aggregation {
    at, regions, max_nr_accesses, aggregation_interval,
});
daos_util::json_struct!(MonitorRecord { aggregations });
