//! # daos-monitor — the Data Access Monitor
//!
//! The core of DAOS (§3.1 of the paper; upstreamed to Linux as DAMON):
//! best-effort data access monitoring whose overhead has a configurable
//! upper bound regardless of target memory size.
//!
//! * **Region-based sampling** — the target is divided into regions whose
//!   pages are assumed to share an access frequency; one random page per
//!   region is checked per sampling interval.
//! * **Adaptive regions adjustment** — regions are split at random points
//!   and re-merged when adjacent regions show similar access counts,
//!   bounded between `min_nr_regions` and `max_nr_regions`.
//! * **Aging** — each region tracks for how many aggregation windows its
//!   access pattern has been stable, providing the recency signal schemes
//!   need; ages are inherited on split and size-weight-averaged on merge.
//! * **Monitoring primitives** — target-specific access-check backends:
//!   virtual address spaces (VMAs + PTE accessed bits), the physical
//!   address space (rmap + PTE accessed bits), and a synthetic test space.
//!
//! ```
//! use daos_monitor::{MonitorAttrs, MonitorCtx, SyntheticPrimitives, SyntheticSpace};
//! use daos_mm::addr::AddrRange;
//!
//! let mut space = SyntheticSpace::new(vec![AddrRange::new(0, 64 << 20)]);
//! let attrs = MonitorAttrs::paper_defaults();
//! let mut ctx = MonitorCtx::new(attrs, SyntheticPrimitives, &space, 0, 42);
//! let mut sink = Vec::new();
//! for tick in 1..=40u64 {
//!     space.touch_range(AddrRange::new(0, 8 << 20)); // hot 8 MiB
//!     ctx.step(&mut space, tick * attrs.sampling_interval, &mut sink);
//! }
//! assert!(!sink.is_empty()); // aggregated access pattern delivered
//! ```

pub mod attrs;
pub mod ctx;
pub mod overhead;
pub mod primitives;
pub mod reference;
pub mod region;
pub mod regions;
pub mod snapshot;

pub use attrs::{AttrsBuilder, AttrsError, MonitorAttrs};
pub use ctx::MonitorCtx;
pub use overhead::OverheadStats;
pub use primitives::{
    three_regions, PaddrPrimitives, Primitives, SyntheticPrimitives, SyntheticSpace,
    VaddrPrimitives,
};
pub use region::{Region, RegionInfo};
pub use regions::RegionSet;
pub use snapshot::{Aggregation, MonitorRecord};
