//! Monitoring-overhead accounting.
//!
//! The paper's core claim about the monitor is an **upper-bound guarantee**:
//! per sampling interval at most `max_nr_regions` pages are checked, no
//! matter how large the monitored memory is. These counters let the test
//! suite and the Fig. 7 harness verify that bound and report CPU usage.

use daos_mm::clock::Ns;

/// Cumulative overhead counters for one monitoring context.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OverheadStats {
    /// Total access-check operations (mkold + young) performed.
    pub total_checks: u64,
    /// Largest number of checks in any single sampling tick.
    pub max_checks_per_tick: u64,
    /// Number of sampling ticks processed.
    pub nr_ticks: u64,
    /// Number of aggregation windows completed.
    pub nr_aggregations: u64,
    /// Total CPU time the monitor consumed.
    pub work_ns: Ns,
}

impl OverheadStats {
    /// Average checks per sampling tick.
    pub fn avg_checks_per_tick(&self) -> f64 {
        if self.nr_ticks == 0 {
            0.0
        } else {
            self.total_checks as f64 / self.nr_ticks as f64
        }
    }

    /// Monitor CPU utilisation of one core over `elapsed` virtual time —
    /// the paper reports 1.37 % (rec) / 1.46 % (prec) for this metric.
    pub fn cpu_share(&self, elapsed: Ns) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.work_ns as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let s = OverheadStats {
            total_checks: 100,
            nr_ticks: 10,
            work_ns: 50,
            ..Default::default()
        };
        assert_eq!(s.avg_checks_per_tick(), 10.0);
        assert_eq!(s.cpu_share(1000), 0.05);
        assert_eq!(OverheadStats::default().avg_checks_per_tick(), 0.0);
        assert_eq!(OverheadStats::default().cpu_share(0), 0.0);
    }
}


daos_util::json_struct!(OverheadStats {
    total_checks, max_checks_per_tick, nr_ticks, nr_aggregations, work_ns,
});
