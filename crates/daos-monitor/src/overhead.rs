//! Monitoring-overhead accounting.
//!
//! The paper's core claim about the monitor is an **upper-bound guarantee**:
//! per sampling interval at most `max_nr_regions` pages are checked, no
//! matter how large the monitored memory is. These counters let the test
//! suite and the Fig. 7 harness verify that bound and report CPU usage.

use daos_mm::clock::Ns;

/// Cumulative overhead counters for one monitoring context.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OverheadStats {
    /// Total access-check operations (mkold + young) performed.
    pub total_checks: u64,
    /// Largest number of checks in any single sampling tick.
    pub max_checks_per_tick: u64,
    /// Number of sampling ticks processed.
    pub nr_ticks: u64,
    /// Number of aggregation windows completed.
    pub nr_aggregations: u64,
    /// Total CPU time the monitor consumed.
    pub work_ns: Ns,
}

impl OverheadStats {
    /// Re-derive the counters from a trace [`Registry`] — the single
    /// source of truth when a collector is installed. The
    /// `monitor.checks_per_tick` histogram carries ticks (count), total
    /// checks (exact sum) and the per-tick peak (exact max); work and
    /// aggregation counts come from their counters. With a collector
    /// live for the whole run this equals the embedded struct exactly
    /// (pinned by a runner test).
    ///
    /// [`Registry`]: daos_trace::Registry
    pub fn from_registry(reg: &daos_trace::Registry) -> Self {
        use daos_trace::keys;
        let (total_checks, max_checks_per_tick, nr_ticks) =
            match reg.hist(keys::MONITOR_CHECKS_PER_TICK) {
                Some(h) => (h.sum(), h.max(), h.count()),
                None => (0, 0, 0),
            };
        OverheadStats {
            total_checks,
            max_checks_per_tick,
            nr_ticks,
            nr_aggregations: reg.counter(keys::MONITOR_AGGREGATIONS),
            work_ns: reg.counter(keys::MONITOR_WORK_NS),
        }
    }

    /// Average checks per sampling tick.
    pub fn avg_checks_per_tick(&self) -> f64 {
        if self.nr_ticks == 0 {
            0.0
        } else {
            self.total_checks as f64 / self.nr_ticks as f64
        }
    }

    /// Monitor CPU utilisation of one core over `elapsed` virtual time —
    /// the paper reports 1.37 % (rec) / 1.46 % (prec) for this metric.
    pub fn cpu_share(&self, elapsed: Ns) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.work_ns as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let s = OverheadStats {
            total_checks: 100,
            nr_ticks: 10,
            work_ns: 50,
            ..Default::default()
        };
        assert_eq!(s.avg_checks_per_tick(), 10.0);
        assert_eq!(s.cpu_share(1000), 0.05);
        assert_eq!(OverheadStats::default().avg_checks_per_tick(), 0.0);
        assert_eq!(OverheadStats::default().cpu_share(0), 0.0);
    }

    #[test]
    fn from_registry_rederives_counters() {
        use daos_trace::{Collector, Event};
        let mut c = Collector::builder().build().unwrap();
        c.record(0, Event::SamplingTick { checks: 10, nr_regions: 5, work_ns: 400 });
        c.record(5, Event::SamplingTick { checks: 30, nr_regions: 5, work_ns: 1200 });
        c.record(5, Event::Aggregation { nr_regions: 5, window_ns: 100, max_nr_accesses: 20 });
        let s = OverheadStats::from_registry(c.registry());
        let want = OverheadStats {
            total_checks: 40,
            max_checks_per_tick: 30,
            nr_ticks: 2,
            nr_aggregations: 1,
            work_ns: 1600,
        };
        assert_eq!(s, want);
        assert_eq!(OverheadStats::from_registry(&daos_trace::Registry::new()), OverheadStats::default());
    }
}


daos_util::json_struct!(OverheadStats {
    total_checks, max_checks_per_tick, nr_ticks, nr_aggregations, work_ns,
});
