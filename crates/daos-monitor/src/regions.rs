//! The region set and the paper's **adaptive regions adjustment**:
//! random-point splitting, similarity merging (with the aging mechanism
//! folded in, as in the kernel), and target-range updates.

use daos_mm::addr::{page_align_down, AddrRange, PAGE_SIZE};
use daos_util::rng::SmallRng;

use crate::region::{Region, RegionInfo};

/// An ordered, non-overlapping set of monitoring regions.
#[derive(Debug, Clone, Default)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl RegionSet {
    /// Build the initial regions: `min_nr` regions distributed over the
    /// target ranges proportionally to their size (each range gets at
    /// least one), each range divided evenly at page granularity.
    pub fn init(ranges: &[AddrRange], min_nr: usize) -> Self {
        let ranges: Vec<AddrRange> = ranges.iter().filter(|r| !r.is_empty()).copied().collect();
        let mut set = Self { regions: Vec::new() };
        if ranges.is_empty() {
            return set;
        }
        let total: u64 = ranges.iter().map(|r| r.len()).sum();
        for r in &ranges {
            let share =
                ((min_nr as u64 * r.len()) / total.max(1)).max(1).min(r.nr_pages()) as usize;
            set.append_evenly(*r, share);
        }
        set
    }

    fn append_evenly(&mut self, range: AddrRange, pieces: usize) {
        let pages = range.nr_pages();
        let pieces = (pieces as u64).min(pages).max(1);
        let base = pages / pieces;
        let extra = pages % pieces;
        let mut start = range.start;
        for i in 0..pieces {
            let nr = base + if i < extra { 1 } else { 0 };
            let end = if i == pieces - 1 { range.end } else { start + nr * PAGE_SIZE };
            self.regions.push(Region::new(AddrRange::new(start, end)));
            start = end;
        }
    }

    /// Shared view of the regions, sorted by address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Mutable view (the sampling loop updates counters in place).
    pub fn regions_mut(&mut self) -> &mut [Region] {
        &mut self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total monitored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.sz()).sum()
    }

    /// Immutable snapshot for callbacks/schemes.
    pub fn snapshot(&self) -> Vec<RegionInfo> {
        self.regions.iter().map(RegionInfo::from).collect()
    }

    /// End-of-window counter reset: remember this window's counts for the
    /// aging comparison, zero the live counters.
    pub fn reset_aggregated(&mut self) {
        for r in &mut self.regions {
            r.last_nr_accesses = r.nr_accesses;
            r.nr_accesses = 0;
        }
    }

    /// The aging + merge pass, run once per aggregation interval.
    ///
    /// Aging (§3.1): a region whose access count moved by more than
    /// `threshold` since the previous window has a *changed* pattern, so
    /// its age resets; otherwise age increments.
    ///
    /// Merging: adjacent regions whose access counts differ by at most
    /// `threshold` are combined, unless the result would exceed
    /// `sz_limit` bytes or shrink the set below `min_nr` regions (the
    /// paper's explicit lower bound).
    pub fn merge_with_aging(&mut self, threshold: u32, sz_limit: u64, min_nr: usize) {
        for r in &mut self.regions {
            if r.nr_accesses.abs_diff(r.last_nr_accesses) > threshold {
                r.age = 0;
            } else {
                r.age += 1;
            }
        }
        if self.regions.len() <= min_nr {
            return;
        }
        let mut merged: Vec<Region> = Vec::with_capacity(self.regions.len());
        let mut count = self.regions.len();
        for r in self.regions.drain(..) {
            match merged.last_mut() {
                Some(prev)
                    if count > min_nr
                        && prev.range.end == r.range.start
                        && prev.nr_accesses.abs_diff(r.nr_accesses) <= threshold
                        && prev.sz() + r.sz() <= sz_limit =>
                {
                    prev.merge_right(&r);
                    count -= 1;
                }
                _ => merged.push(r),
            }
        }
        self.regions = merged;
    }

    /// The random splitting pass, run once per aggregation interval.
    ///
    /// Each region is split into 2 (or 3, when far below the cap) pieces
    /// at random page-aligned points, so that sub-regions with distinct
    /// access frequencies can be discovered next window. Splitting stops
    /// at `max_nr` regions — the paper's overhead upper bound.
    pub fn split(&mut self, rng: &mut SmallRng, max_nr: usize) {
        let nr = self.regions.len();
        if nr == 0 || nr >= max_nr {
            return;
        }
        // Kernel heuristic: aim for 3 pieces while clearly below the cap.
        let nr_pieces = if nr * 3 <= max_nr { 3 } else { 2 };
        let mut out: Vec<Region> = Vec::with_capacity(nr * nr_pieces);
        let mut total = nr;
        for r in self.regions.drain(..) {
            let mut rest = r;
            for _ in 1..nr_pieces {
                if total >= max_nr || !rest.splittable() {
                    break;
                }
                // Random page-aligned split point strictly inside.
                let pages = rest.nr_pages();
                let cut_page = rng.random_range(1..pages);
                let mid = page_align_down(rest.range.start) + cut_page * PAGE_SIZE;
                if mid <= rest.range.start || mid >= rest.range.end {
                    break;
                }
                let (lo, hi) = rest.split_at(mid);
                out.push(lo);
                rest = hi;
                total += 1;
            }
            out.push(rest);
        }
        self.regions = out;
    }

    /// Adapt the region set to a changed set of target ranges (the
    /// `regions update interval` handler): regions are clipped to the new
    /// ranges, and uncovered parts of the new ranges get fresh regions.
    pub fn update_ranges(&mut self, new_ranges: &[AddrRange]) {
        let mut out: Vec<Region> = Vec::with_capacity(self.regions.len());
        for range in new_ranges.iter().filter(|r| !r.is_empty()) {
            let mut cursor = range.start;
            for old in &self.regions {
                let Some(isect) = old.range.intersect(range) else { continue };
                if isect.start > cursor {
                    out.push(Region::new(AddrRange::new(cursor, isect.start)));
                }
                let mut clipped = *old;
                clipped.range = isect;
                clipped.sampling_addr = None;
                out.push(clipped);
                cursor = isect.end.max(cursor);
            }
            if cursor < range.end {
                out.push(Region::new(AddrRange::new(cursor, range.end)));
            }
        }
        self.regions = out;
    }

    /// Debug invariant: sorted, non-overlapping, non-empty regions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.regions.windows(2) {
            if w[0].range.end > w[1].range.start {
                return Err(format!("overlap/order violation: {} then {}", w[0].range, w[1].range));
            }
        }
        if let Some(r) = self.regions.iter().find(|r| r.range.is_empty()) {
            return Err(format!("empty region at {}", r.range));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    #[test]
    fn init_distributes_proportionally() {
        let ranges = [AddrRange::new(0, mb(30)), AddrRange::new(mb(100), mb(110))];
        let set = RegionSet::init(&ranges, 8);
        assert!(set.len() >= 2);
        assert_eq!(set.total_bytes(), mb(40));
        set.check_invariants().unwrap();
        // The 30 MiB range should get ~3x the regions of the 10 MiB one.
        let in_big = set.regions().iter().filter(|r| r.range.end <= mb(30)).count();
        let in_small = set.len() - in_big;
        assert!(in_big > in_small);
    }

    #[test]
    fn init_with_empty_ranges() {
        let set = RegionSet::init(&[], 10);
        assert!(set.is_empty());
        let set = RegionSet::init(&[AddrRange::empty()], 10);
        assert!(set.is_empty());
    }

    #[test]
    fn init_single_page_range() {
        let set = RegionSet::init(&[AddrRange::new(0, PAGE_SIZE)], 10);
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_bytes(), PAGE_SIZE);
    }

    #[test]
    fn split_preserves_bytes_and_respects_max() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(64))], 10);
        let mut rng = SmallRng::seed_from_u64(1);
        let before = set.total_bytes();
        for _ in 0..10 {
            set.split(&mut rng, 100);
            assert_eq!(set.total_bytes(), before, "split conserves bytes");
            set.check_invariants().unwrap();
            assert!(set.len() <= 100);
        }
        assert_eq!(set.len(), 100, "splitting saturates at max_nr");
    }

    #[test]
    fn merge_similar_neighbours() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(8))], 8);
        // All counters zero → everything similar → merges down to min_nr.
        let before = set.total_bytes();
        set.merge_with_aging(2, u64::MAX, 3);
        assert_eq!(set.len(), 3, "merging floors at min_nr");
        assert_eq!(set.total_bytes(), before);
        set.check_invariants().unwrap();
    }

    #[test]
    fn merge_keeps_dissimilar_apart() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(4))], 4);
        // Make region 1 hot.
        set.regions_mut()[1].nr_accesses = 20;
        set.merge_with_aging(2, u64::MAX, 1);
        // Hot region must not merge into cold neighbours.
        assert!(set.len() >= 2);
        assert!(set.regions().iter().any(|r| r.nr_accesses >= 10));
    }

    #[test]
    fn merge_respects_sz_limit() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(8))], 8);
        let max_region = mb(2);
        set.merge_with_aging(2, max_region, 1);
        for r in set.regions() {
            assert!(r.sz() <= max_region);
        }
    }

    #[test]
    fn aging_increments_when_stable_resets_on_change() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 3);
        for r in set.regions_mut() {
            r.nr_accesses = 5;
            r.last_nr_accesses = 5;
        }
        set.merge_with_aging(2, PAGE_SIZE, 3); // sz_limit small: no merging
        assert!(set.regions().iter().all(|r| r.age == 1));
        set.reset_aggregated();
        for r in set.regions_mut() {
            r.nr_accesses = 15; // big change
        }
        set.merge_with_aging(2, PAGE_SIZE, 3);
        assert!(set.regions().iter().all(|r| r.age == 0), "age reset on change");
    }

    #[test]
    fn reset_aggregated_rolls_window() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 3);
        set.regions_mut()[0].nr_accesses = 9;
        set.reset_aggregated();
        assert_eq!(set.regions()[0].nr_accesses, 0);
        assert_eq!(set.regions()[0].last_nr_accesses, 9);
    }

    #[test]
    fn update_ranges_keeps_overlap_counters() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(4))], 4);
        for r in set.regions_mut() {
            r.nr_accesses = 7;
            r.age = 3;
        }
        // Target grew by 2 MiB and lost its first MiB.
        set.update_ranges(&[AddrRange::new(mb(1), mb(6))]);
        set.check_invariants().unwrap();
        assert_eq!(set.total_bytes(), mb(5));
        // Old overlap keeps counters; the new tail starts fresh.
        let first = &set.regions()[0];
        assert_eq!(first.nr_accesses, 7);
        assert_eq!(first.age, 3);
        let last = set.regions().last().unwrap();
        assert_eq!(last.nr_accesses, 0);
        assert_eq!(last.age, 0);
        assert_eq!(last.range.end, mb(6));
    }

    #[test]
    fn update_ranges_fills_holes_between_regions() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 3);
        // New target has a second disjoint range → fresh region there.
        set.update_ranges(&[AddrRange::new(0, mb(1)), AddrRange::new(mb(10), mb(12))]);
        set.check_invariants().unwrap();
        assert_eq!(set.total_bytes(), mb(3));
        assert!(set.regions().iter().any(|r| r.range.start >= mb(10)));
    }

    #[test]
    fn split_then_merge_roundtrip_conserves() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(16))], 10);
        let mut rng = SmallRng::seed_from_u64(7);
        let bytes = set.total_bytes();
        for _ in 0..20 {
            set.split(&mut rng, 50);
            set.merge_with_aging(2, mb(16) / 10, 10);
            assert_eq!(set.total_bytes(), bytes);
            set.check_invariants().unwrap();
            assert!(set.len() <= 50);
            assert!(set.len() >= 10 || set.len() == 50);
        }
    }
}
