//! The region set and the paper's **adaptive regions adjustment**:
//! random-point splitting, similarity merging (with the aging mechanism
//! folded in, as in the kernel), and target-range updates.
//!
//! ## Struct-of-arrays layout
//!
//! Regions live in parallel flat arrays (`starts`/`ends`/`nr_accesses`/
//! `last_nr_accesses`/`ages`/`sampling`) rather than a `Vec<Region>`.
//! The monitor's per-tick loops touch one or two of those fields for
//! every region; packing each field contiguously keeps the hot loops in
//! cache and turns merge/split/update into index walks instead of
//! 48-byte struct moves. Total coverage is maintained incrementally so
//! `total_bytes` is O(1) — the adaptive `sz_limit` computation at every
//! aggregation boundary no longer rescans the set.
//!
//! Semantics are pinned to the reference array-of-structs implementation
//! in [`crate::reference`] by differential tests; `split` and
//! `prepare_samples` consume the rng in exactly the same order as the
//! reference so both produce identical sequences from one seed.

use daos_mm::addr::{page_align_down, AddrRange, PAGE_SIZE};
use daos_util::rng::SmallRng;

use crate::region::{Region, RegionInfo};

/// Sentinel in the `sampling` column for "no sample outstanding".
const NO_SAMPLE: u64 = u64::MAX;

/// Size-weighted average of two per-region counters (`wavg` of §3.1's
/// merge rule: weights are the byte sizes of the two regions).
#[inline]
fn wavg(x: u32, y: u32, sa: u64, sb: u64) -> u32 {
    ((x as u64 * sa + y as u64 * sb) / (sa + sb).max(1)) as u32
}

/// An ordered, non-overlapping set of monitoring regions, stored as
/// struct-of-arrays.
#[derive(Debug, Clone, Default)]
pub struct RegionSet {
    starts: Vec<u64>,
    ends: Vec<u64>,
    nr_accesses: Vec<u32>,
    last_nr_accesses: Vec<u32>,
    ages: Vec<u32>,
    /// Outstanding sample address per region; [`NO_SAMPLE`] when none.
    sampling: Vec<u64>,
    /// Incrementally maintained sum of region sizes.
    total_bytes: u64,
}

impl RegionSet {
    /// Build the initial regions: `min_nr` regions distributed over the
    /// target ranges proportionally to their size (each range gets at
    /// least one), each range divided evenly at page granularity.
    pub fn init(ranges: &[AddrRange], min_nr: usize) -> Self {
        let ranges: Vec<AddrRange> = ranges.iter().filter(|r| !r.is_empty()).copied().collect();
        let mut set = Self::default();
        if ranges.is_empty() {
            return set;
        }
        let total: u64 = ranges.iter().map(|r| r.len()).sum();
        for r in &ranges {
            let share =
                ((min_nr as u64 * r.len()) / total.max(1)).max(1).min(r.nr_pages()) as usize;
            set.append_evenly(*r, share);
        }
        set
    }

    /// Append one fresh (zero-counter) region covering `[start, end)`.
    fn push_fresh(&mut self, start: u64, end: u64) {
        self.starts.push(start);
        self.ends.push(end);
        self.nr_accesses.push(0);
        self.last_nr_accesses.push(0);
        self.ages.push(0);
        self.sampling.push(NO_SAMPLE);
        self.total_bytes += end - start;
    }

    fn append_evenly(&mut self, range: AddrRange, pieces: usize) {
        let pages = range.nr_pages();
        let pieces = (pieces as u64).min(pages).max(1);
        let base = pages / pieces;
        let extra = pages % pieces;
        let mut start = range.start;
        for i in 0..pieces {
            let nr = base + if i < extra { 1 } else { 0 };
            let end = if i == pieces - 1 { range.end } else { start + nr * PAGE_SIZE };
            self.push_fresh(start, end);
            start = end;
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total monitored bytes. O(1) — maintained incrementally.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Materialise region `i` (testing / diagnostics).
    pub fn get(&self, i: usize) -> Region {
        Region {
            range: AddrRange::new(self.starts[i], self.ends[i]),
            nr_accesses: self.nr_accesses[i],
            last_nr_accesses: self.last_nr_accesses[i],
            age: self.ages[i],
            sampling_addr: (self.sampling[i] != NO_SAMPLE).then_some(self.sampling[i]),
        }
    }

    /// Iterate materialised copies of the regions, in address order.
    pub fn iter(&self) -> impl Iterator<Item = Region> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Overwrite region `i`'s live access counter (tests / tools).
    pub fn set_nr_accesses(&mut self, i: usize, v: u32) {
        self.nr_accesses[i] = v;
    }

    /// Overwrite region `i`'s previous-window counter (tests / tools).
    pub fn set_last_nr_accesses(&mut self, i: usize, v: u32) {
        self.last_nr_accesses[i] = v;
    }

    /// Immutable snapshot for callbacks/schemes.
    pub fn snapshot(&self) -> Vec<RegionInfo> {
        (0..self.len())
            .map(|i| RegionInfo {
                range: AddrRange::new(self.starts[i], self.ends[i]),
                nr_accesses: self.nr_accesses[i],
                age: self.ages[i],
            })
            .collect()
    }

    /// End-of-window counter reset: remember this window's counts for the
    /// aging comparison, zero the live counters. One swap + one fill, no
    /// per-region struct writes.
    pub fn reset_aggregated(&mut self) {
        std::mem::swap(&mut self.last_nr_accesses, &mut self.nr_accesses);
        self.nr_accesses.fill(0);
    }

    /// The aging + merge pass, run once per aggregation interval.
    ///
    /// Aging (§3.1): a region whose access count moved by more than
    /// `threshold` since the previous window has a *changed* pattern, so
    /// its age resets; otherwise age increments.
    ///
    /// Merging: adjacent regions whose access counts differ by at most
    /// `threshold` are combined, unless the result would exceed
    /// `sz_limit` bytes or shrink the set below `min_nr` regions (the
    /// paper's explicit lower bound). Runs as one in-place compaction
    /// walk over the arrays.
    pub fn merge_with_aging(&mut self, threshold: u32, sz_limit: u64, min_nr: usize) {
        for i in 0..self.len() {
            if self.nr_accesses[i].abs_diff(self.last_nr_accesses[i]) > threshold {
                self.ages[i] = 0;
            } else {
                self.ages[i] += 1;
            }
        }
        let n = self.len();
        if n <= min_nr {
            return;
        }
        let mut count = n;
        let mut w = 0usize; // regions[..w] is the compacted output
        for r in 0..n {
            if w > 0
                && count > min_nr
                && self.ends[w - 1] == self.starts[r]
                && self.nr_accesses[w - 1].abs_diff(self.nr_accesses[r]) <= threshold
                && (self.ends[w - 1] - self.starts[w - 1]) + (self.ends[r] - self.starts[r])
                    <= sz_limit
            {
                let sa = self.ends[w - 1] - self.starts[w - 1];
                let sb = self.ends[r] - self.starts[r];
                self.nr_accesses[w - 1] =
                    wavg(self.nr_accesses[w - 1], self.nr_accesses[r], sa, sb);
                self.last_nr_accesses[w - 1] =
                    wavg(self.last_nr_accesses[w - 1], self.last_nr_accesses[r], sa, sb);
                self.ages[w - 1] = wavg(self.ages[w - 1], self.ages[r], sa, sb);
                self.ends[w - 1] = self.ends[r];
                self.sampling[w - 1] = NO_SAMPLE;
                count -= 1;
            } else {
                if w != r {
                    self.starts[w] = self.starts[r];
                    self.ends[w] = self.ends[r];
                    self.nr_accesses[w] = self.nr_accesses[r];
                    self.last_nr_accesses[w] = self.last_nr_accesses[r];
                    self.ages[w] = self.ages[r];
                    self.sampling[w] = self.sampling[r];
                }
                w += 1;
            }
        }
        self.truncate(w);
    }

    fn truncate(&mut self, n: usize) {
        self.starts.truncate(n);
        self.ends.truncate(n);
        self.nr_accesses.truncate(n);
        self.last_nr_accesses.truncate(n);
        self.ages.truncate(n);
        self.sampling.truncate(n);
    }

    /// The random splitting pass, run once per aggregation interval.
    ///
    /// Each region is split into 2 (or 3, when far below the cap) pieces
    /// at random page-aligned points, so that sub-regions with distinct
    /// access frequencies can be discovered next window. Splitting stops
    /// at `max_nr` regions — the paper's overhead upper bound. The rng is
    /// consumed in exactly the reference implementation's order.
    pub fn split(&mut self, rng: &mut SmallRng, max_nr: usize) {
        let nr = self.len();
        if nr == 0 || nr >= max_nr {
            return;
        }
        // Kernel heuristic: aim for 3 pieces while clearly below the cap.
        let nr_pieces = if nr * 3 <= max_nr { 3 } else { 2 };
        let mut out = Self::default();
        out.reserve(nr * nr_pieces);
        let mut total = nr;
        for i in 0..nr {
            let mut rest_start = self.starts[i];
            let rest_end = self.ends[i];
            let (na, la, age) = (self.nr_accesses[i], self.last_nr_accesses[i], self.ages[i]);
            let mut was_split = false;
            for _ in 1..nr_pieces {
                // splittable(): at least two pages to cut between.
                if total >= max_nr || rest_end - rest_start < 2 * PAGE_SIZE {
                    break;
                }
                // Random page-aligned split point strictly inside.
                let pages = (rest_end - rest_start).div_ceil(PAGE_SIZE);
                let cut_page = rng.random_range(1..pages);
                let mid = page_align_down(rest_start) + cut_page * PAGE_SIZE;
                if mid <= rest_start || mid >= rest_end {
                    break;
                }
                out.push_with(rest_start, mid, na, la, age, NO_SAMPLE);
                rest_start = mid;
                was_split = true;
                total += 1;
            }
            // An untouched region keeps its outstanding sample; split
            // pieces have theirs invalidated (as Region::split_at does).
            let sample = if was_split { NO_SAMPLE } else { self.sampling[i] };
            out.push_with(rest_start, rest_end, na, la, age, sample);
        }
        *self = out;
    }

    fn reserve(&mut self, n: usize) {
        self.starts.reserve(n);
        self.ends.reserve(n);
        self.nr_accesses.reserve(n);
        self.last_nr_accesses.reserve(n);
        self.ages.reserve(n);
        self.sampling.reserve(n);
    }

    fn push_with(&mut self, start: u64, end: u64, nr: u32, last: u32, age: u32, sample: u64) {
        self.starts.push(start);
        self.ends.push(end);
        self.nr_accesses.push(nr);
        self.last_nr_accesses.push(last);
        self.ages.push(age);
        self.sampling.push(sample);
        self.total_bytes += end - start;
    }

    /// Adapt the region set to a changed set of target ranges (the
    /// `regions update interval` handler): regions are clipped to the new
    /// ranges, and uncovered parts of the new ranges get fresh regions.
    ///
    /// A single sorted sweep: one cursor over the (sorted) regions, one
    /// pass over the ranges — O(regions + ranges), not O(ranges ×
    /// regions). `new_ranges` must be ascending and disjoint, which is
    /// what every primitives backend produces (sorted VMA lists, the
    /// physical space, synthetic spaces).
    pub fn update_ranges(&mut self, new_ranges: &[AddrRange]) {
        debug_assert!(
            new_ranges.windows(2).all(|w| w[0].end <= w[1].start || w[1].is_empty()),
            "target ranges must be sorted and disjoint"
        );
        let n = self.len();
        let mut out = Self::default();
        out.reserve(n);
        let mut ri = 0usize;
        for range in new_ranges.iter().filter(|r| !r.is_empty()) {
            // Skip regions that end before this range begins.
            while ri < n && self.ends[ri] <= range.start {
                ri += 1;
            }
            let mut cursor = range.start;
            while ri < n && self.starts[ri] < range.end {
                let isect_start = self.starts[ri].max(range.start);
                let isect_end = self.ends[ri].min(range.end);
                if isect_start < isect_end {
                    if isect_start > cursor {
                        out.push_fresh(cursor, isect_start);
                    }
                    // Clipped region keeps its counters; outstanding
                    // samples are invalidated (may fall outside the clip).
                    out.push_with(
                        isect_start,
                        isect_end,
                        self.nr_accesses[ri],
                        self.last_nr_accesses[ri],
                        self.ages[ri],
                        NO_SAMPLE,
                    );
                    cursor = isect_end.max(cursor);
                }
                if self.ends[ri] > range.end {
                    // Straddler: it also overlaps the next range.
                    break;
                }
                ri += 1;
            }
            if cursor < range.end {
                out.push_fresh(cursor, range.end);
            }
        }
        *self = out;
    }

    /// Phase-1 sampling: consume every outstanding sample, incrementing
    /// the region's counter when `young` reports the page was accessed.
    /// Returns the number of checks performed. Keeping the loop inside
    /// the store lets it stream the `sampling` and `nr_accesses` columns.
    pub fn check_samples(&mut self, mut young: impl FnMut(u64) -> bool) -> u64 {
        let mut checks = 0;
        for i in 0..self.len() {
            let addr = self.sampling[i];
            if addr != NO_SAMPLE {
                self.sampling[i] = NO_SAMPLE;
                if young(addr) {
                    self.nr_accesses[i] += 1;
                }
                checks += 1;
            }
        }
        checks
    }

    /// Phase-2 sampling: pick one random page per region, age it via
    /// `mkold`, and remember it for the next check. Returns the number of
    /// samples prepared. Consumes the rng in the reference
    /// implementation's exact order (one draw per non-empty region).
    pub fn prepare_samples(&mut self, rng: &mut SmallRng, mut mkold: impl FnMut(u64)) -> u64 {
        let mut checks = 0;
        for i in 0..self.len() {
            let pages = (self.ends[i] - self.starts[i]).div_ceil(PAGE_SIZE);
            if pages == 0 {
                continue;
            }
            let page = rng.random_range(0..pages);
            let addr = page_align_down(self.starts[i]) + page * PAGE_SIZE;
            mkold(addr);
            self.sampling[i] = addr;
            checks += 1;
        }
        checks
    }

    /// Debug invariant: sorted, non-overlapping, non-empty regions, and a
    /// consistent incremental byte total.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 1..self.len() {
            if self.ends[i - 1] > self.starts[i] {
                return Err(format!(
                    "overlap/order violation: [{:#x}, {:#x}) then [{:#x}, {:#x})",
                    self.starts[i - 1],
                    self.ends[i - 1],
                    self.starts[i],
                    self.ends[i]
                ));
            }
        }
        for i in 0..self.len() {
            if self.starts[i] >= self.ends[i] {
                return Err(format!("empty region at [{:#x}, {:#x})", self.starts[i], self.ends[i]));
            }
        }
        let sum: u64 = (0..self.len()).map(|i| self.ends[i] - self.starts[i]).sum();
        if sum != self.total_bytes {
            return Err(format!(
                "total_bytes drift: cached {} actual {sum}",
                self.total_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    #[test]
    fn init_distributes_proportionally() {
        let ranges = [AddrRange::new(0, mb(30)), AddrRange::new(mb(100), mb(110))];
        let set = RegionSet::init(&ranges, 8);
        assert!(set.len() >= 2);
        assert_eq!(set.total_bytes(), mb(40));
        set.check_invariants().unwrap();
        // The 30 MiB range should get ~3x the regions of the 10 MiB one.
        let in_big = set.iter().filter(|r| r.range.end <= mb(30)).count();
        let in_small = set.len() - in_big;
        assert!(in_big > in_small);
    }

    #[test]
    fn init_with_empty_ranges() {
        let set = RegionSet::init(&[], 10);
        assert!(set.is_empty());
        let set = RegionSet::init(&[AddrRange::empty()], 10);
        assert!(set.is_empty());
    }

    #[test]
    fn init_single_page_range() {
        let set = RegionSet::init(&[AddrRange::new(0, PAGE_SIZE)], 10);
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_bytes(), PAGE_SIZE);
    }

    #[test]
    fn split_preserves_bytes_and_respects_max() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(64))], 10);
        let mut rng = SmallRng::seed_from_u64(1);
        let before = set.total_bytes();
        for _ in 0..10 {
            set.split(&mut rng, 100);
            assert_eq!(set.total_bytes(), before, "split conserves bytes");
            set.check_invariants().unwrap();
            assert!(set.len() <= 100);
        }
        assert_eq!(set.len(), 100, "splitting saturates at max_nr");
    }

    #[test]
    fn merge_similar_neighbours() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(8))], 8);
        // All counters zero → everything similar → merges down to min_nr.
        let before = set.total_bytes();
        set.merge_with_aging(2, u64::MAX, 3);
        assert_eq!(set.len(), 3, "merging floors at min_nr");
        assert_eq!(set.total_bytes(), before);
        set.check_invariants().unwrap();
    }

    #[test]
    fn merge_keeps_dissimilar_apart() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(4))], 4);
        // Make region 1 hot.
        set.set_nr_accesses(1, 20);
        set.merge_with_aging(2, u64::MAX, 1);
        // Hot region must not merge into cold neighbours.
        assert!(set.len() >= 2);
        assert!(set.iter().any(|r| r.nr_accesses >= 10));
    }

    #[test]
    fn merge_respects_sz_limit() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(8))], 8);
        let max_region = mb(2);
        set.merge_with_aging(2, max_region, 1);
        for r in set.iter() {
            assert!(r.sz() <= max_region);
        }
    }

    #[test]
    fn aging_increments_when_stable_resets_on_change() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 3);
        for i in 0..set.len() {
            set.set_nr_accesses(i, 5);
            set.set_last_nr_accesses(i, 5);
        }
        set.merge_with_aging(2, PAGE_SIZE, 3); // sz_limit small: no merging
        assert!(set.iter().all(|r| r.age == 1));
        set.reset_aggregated();
        for i in 0..set.len() {
            set.set_nr_accesses(i, 15); // big change
        }
        set.merge_with_aging(2, PAGE_SIZE, 3);
        assert!(set.iter().all(|r| r.age == 0), "age reset on change");
    }

    #[test]
    fn reset_aggregated_rolls_window() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 3);
        set.set_nr_accesses(0, 9);
        set.reset_aggregated();
        assert_eq!(set.get(0).nr_accesses, 0);
        assert_eq!(set.get(0).last_nr_accesses, 9);
    }

    #[test]
    fn update_ranges_keeps_overlap_counters() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(4))], 4);
        for i in 0..set.len() {
            set.set_nr_accesses(i, 7);
            set.ages[i] = 3;
        }
        // Target grew by 2 MiB and lost its first MiB.
        set.update_ranges(&[AddrRange::new(mb(1), mb(6))]);
        set.check_invariants().unwrap();
        assert_eq!(set.total_bytes(), mb(5));
        // Old overlap keeps counters; the new tail starts fresh.
        let first = set.get(0);
        assert_eq!(first.nr_accesses, 7);
        assert_eq!(first.age, 3);
        let last = set.get(set.len() - 1);
        assert_eq!(last.nr_accesses, 0);
        assert_eq!(last.age, 0);
        assert_eq!(last.range.end, mb(6));
    }

    #[test]
    fn update_ranges_fills_holes_between_regions() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 3);
        // New target has a second disjoint range → fresh region there.
        set.update_ranges(&[AddrRange::new(0, mb(1)), AddrRange::new(mb(10), mb(12))]);
        set.check_invariants().unwrap();
        assert_eq!(set.total_bytes(), mb(3));
        assert!(set.iter().any(|r| r.range.start >= mb(10)));
    }

    #[test]
    fn update_ranges_clips_region_straddling_two_ranges() {
        // One big region overlapping both halves of a split target must
        // contribute its counters to both clipped pieces.
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(4))], 1);
        set.set_nr_accesses(0, 9);
        set.update_ranges(&[AddrRange::new(0, mb(1)), AddrRange::new(mb(2), mb(3))]);
        set.check_invariants().unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.iter().all(|r| r.nr_accesses == 9));
        assert_eq!(set.total_bytes(), mb(2));
    }

    #[test]
    fn split_then_merge_roundtrip_conserves() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(16))], 10);
        let mut rng = SmallRng::seed_from_u64(7);
        let bytes = set.total_bytes();
        for _ in 0..20 {
            set.split(&mut rng, 50);
            set.merge_with_aging(2, mb(16) / 10, 10);
            assert_eq!(set.total_bytes(), bytes);
            set.check_invariants().unwrap();
            assert!(set.len() <= 50);
            assert!(set.len() >= 10 || set.len() == 50);
        }
    }

    #[test]
    fn sample_roundtrip_counts_young_pages() {
        let mut set = RegionSet::init(&[AddrRange::new(0, mb(1))], 4);
        let mut rng = SmallRng::seed_from_u64(3);
        let prepared = set.prepare_samples(&mut rng, |_| {});
        assert_eq!(prepared, set.len() as u64);
        assert!(set.iter().all(|r| r.sampling_addr.is_some()));
        // Every sampled page reads young → every region counts one.
        let checked = set.check_samples(|_| true);
        assert_eq!(checked, prepared);
        assert!(set.iter().all(|r| r.nr_accesses == 1));
        assert!(set.iter().all(|r| r.sampling_addr.is_none()), "samples consumed");
        // No outstanding samples → no checks.
        assert_eq!(set.check_samples(|_| true), 0);
    }
}
