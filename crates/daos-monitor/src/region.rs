//! A monitoring region: the unit of the paper's space-based sampling.

use daos_mm::addr::{AddrRange, PAGE_SIZE};

/// One monitored region: adjacent pages assumed to share an access
/// frequency, with its access counter and age.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Byte range covered by the region.
    pub range: AddrRange,
    /// Positive access checks in the current aggregation window.
    pub nr_accesses: u32,
    /// `nr_accesses` of the previous window — the aging mechanism
    /// compares against this to decide whether the pattern changed.
    pub last_nr_accesses: u32,
    /// Number of aggregation intervals the region's access frequency has
    /// stayed (roughly) the same. Reset when the pattern shifts.
    pub age: u32,
    /// Page currently being sampled (set by `prepare`, consumed by
    /// `check`); `None` when no sample is outstanding.
    pub sampling_addr: Option<u64>,
}

impl Region {
    /// Fresh region over `range` with zeroed counters.
    pub fn new(range: AddrRange) -> Self {
        Self {
            range,
            nr_accesses: 0,
            last_nr_accesses: 0,
            age: 0,
            sampling_addr: None,
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn sz(&self) -> u64 {
        self.range.len()
    }

    /// Split at byte offset `mid` (absolute address). Both halves keep
    /// the access counters and **inherit the age** (§3.1: "When a region
    /// is split, each sub-region inherits the age of the old region").
    pub fn split_at(&self, mid: u64) -> (Region, Region) {
        let (lo, hi) = self.range.split_at(mid);
        let mut a = *self;
        let mut b = *self;
        a.range = lo;
        b.range = hi;
        a.sampling_addr = None;
        b.sampling_addr = None;
        (a, b)
    }

    /// Merge `other` (which must be address-adjacent on the right) into
    /// `self`. Counters and age become **size-weighted averages** (§3.1:
    /// "the new region gets an age which is the size-weighted average of
    /// the old regions' ages").
    pub fn merge_right(&mut self, other: &Region) {
        debug_assert_eq!(self.range.end, other.range.start);
        let sa = self.sz();
        let sb = other.sz();
        let total = (sa + sb).max(1);
        let wavg =
            |x: u32, y: u32| -> u32 { ((x as u64 * sa + y as u64 * sb) / total) as u32 };
        self.nr_accesses = wavg(self.nr_accesses, other.nr_accesses);
        self.last_nr_accesses = wavg(self.last_nr_accesses, other.last_nr_accesses);
        self.age = wavg(self.age, other.age);
        self.range.end = other.range.end;
        self.sampling_addr = None;
    }

    /// Number of whole pages (the split-point granularity).
    #[inline]
    pub fn nr_pages(&self) -> u64 {
        self.range.nr_pages()
    }

    /// Whether the region is large enough to split in two pages.
    #[inline]
    pub fn splittable(&self) -> bool {
        self.sz() >= 2 * PAGE_SIZE
    }
}

/// Immutable per-region view handed to callbacks/schemes at aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionInfo {
    /// Region address range.
    pub range: AddrRange,
    /// Access counter for the finished window.
    pub nr_accesses: u32,
    /// Age in aggregation intervals.
    pub age: u32,
}

impl From<&Region> for RegionInfo {
    fn from(r: &Region) -> Self {
        Self { range: r.range, nr_accesses: r.nr_accesses, age: r.age }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u64, end: u64, nr: u32, age: u32) -> Region {
        Region {
            range: AddrRange::new(start, end),
            nr_accesses: nr,
            last_nr_accesses: nr,
            age,
            sampling_addr: Some(start),
        }
    }

    #[test]
    fn split_inherits_age_and_counters() {
        let r = region(0, 0x8000, 7, 4);
        let (a, b) = r.split_at(0x2000);
        assert_eq!(a.range, AddrRange::new(0, 0x2000));
        assert_eq!(b.range, AddrRange::new(0x2000, 0x8000));
        for half in [a, b] {
            assert_eq!(half.age, 4, "age inherited");
            assert_eq!(half.nr_accesses, 7);
            assert_eq!(half.sampling_addr, None, "sample invalidated");
        }
    }

    #[test]
    fn merge_takes_size_weighted_average() {
        // 1 page at nr=10/age=10 merged with 3 pages at nr=2/age=2:
        // avg = (10*1 + 2*3)/4 = 4.
        let mut a = region(0, 0x1000, 10, 10);
        let b = region(0x1000, 0x4000, 2, 2);
        a.merge_right(&b);
        assert_eq!(a.range, AddrRange::new(0, 0x4000));
        assert_eq!(a.nr_accesses, 4);
        assert_eq!(a.age, 4);
    }

    #[test]
    fn merge_weighted_average_never_exceeds_max_parent() {
        let mut a = region(0, 0x3000, 5, 9);
        let b = region(0x3000, 0x5000, 3, 1);
        let max_age = a.age.max(b.age);
        a.merge_right(&b);
        assert!(a.age <= max_age);
    }

    #[test]
    fn splittable_bounds() {
        assert!(!region(0, 0x1000, 0, 0).splittable());
        assert!(region(0, 0x2000, 0, 0).splittable());
    }
}


daos_util::json_struct!(RegionInfo { range, nr_accesses, age });
