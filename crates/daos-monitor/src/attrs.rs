//! Monitoring attributes (the paper's §3.1 knobs).

use daos_mm::clock::{ms, sec, Ns};
use std::fmt;

/// Why a [`MonitorAttrs`] configuration is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrsError {
    /// `sampling_interval` is zero.
    ZeroSamplingInterval,
    /// `aggregation_interval` is shorter than `sampling_interval`.
    AggregationBelowSampling,
    /// `min_nr_regions` is below the floor of 3 (an aggregation needs at
    /// least three regions to express a split).
    TooFewRegions(usize),
    /// `max_nr_regions` is below `min_nr_regions`.
    MaxBelowMin {
        /// The configured lower bound.
        min: usize,
        /// The configured (smaller) upper bound.
        max: usize,
    },
}

impl fmt::Display for AttrsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrsError::ZeroSamplingInterval => write!(f, "sampling_interval must be > 0"),
            AttrsError::AggregationBelowSampling => {
                write!(f, "aggregation_interval must be >= sampling_interval")
            }
            AttrsError::TooFewRegions(n) => {
                write!(f, "min_nr_regions must be >= 3 (got {n})")
            }
            AttrsError::MaxBelowMin { min, max } => {
                write!(f, "max_nr_regions ({max}) must be >= min_nr_regions ({min})")
            }
        }
    }
}

impl std::error::Error for AttrsError {}

/// The five user-set monitoring parameters.
///
/// The paper's evaluation uses 5 ms sampling, 100 ms aggregation, 1 s
/// regions update, and a 10..1000 regions range (§4, "Workloads").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorAttrs {
    /// Interval between access checks of each region's sample page.
    pub sampling_interval: Ns,
    /// Interval after which per-region access counters are aggregated,
    /// reported, and reset.
    pub aggregation_interval: Ns,
    /// Interval after which the monitoring target (e.g. the VMA set) is
    /// re-examined for changes such as `mmap()`.
    pub regions_update_interval: Ns,
    /// Lower bound on the number of regions (accuracy floor).
    pub min_nr_regions: usize,
    /// Upper bound on the number of regions (overhead ceiling).
    pub max_nr_regions: usize,
    /// Whether the adaptive regions adjustment (random split + similarity
    /// merge) runs. Disabling it degrades the monitor to *static*
    /// space-based sampling — the prior-work baseline the paper's
    /// adaptive mechanism improves on (§2.2); exposed for ablation.
    pub adaptive: bool,
}

impl Default for MonitorAttrs {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl MonitorAttrs {
    /// The configuration used throughout the paper's evaluation.
    pub fn paper_defaults() -> Self {
        Self {
            sampling_interval: ms(5),
            aggregation_interval: ms(100),
            regions_update_interval: sec(1),
            min_nr_regions: 10,
            max_nr_regions: 1000,
            adaptive: true,
        }
    }

    /// Maximum value one region's access counter can reach in one
    /// aggregation window (= samples per window).
    pub fn max_nr_accesses(&self) -> u32 {
        (self.aggregation_interval / self.sampling_interval.max(1)) as u32
    }

    /// The merge-similarity threshold the adaptive adjustment uses:
    /// 10 % of the maximum possible access count, as in the kernel
    /// implementation.
    pub fn merge_threshold(&self) -> u32 {
        (self.max_nr_accesses() / 10).max(1)
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), AttrsError> {
        if self.sampling_interval == 0 {
            return Err(AttrsError::ZeroSamplingInterval);
        }
        if self.aggregation_interval < self.sampling_interval {
            return Err(AttrsError::AggregationBelowSampling);
        }
        if self.min_nr_regions < 3 {
            return Err(AttrsError::TooFewRegions(self.min_nr_regions));
        }
        if self.max_nr_regions < self.min_nr_regions {
            return Err(AttrsError::MaxBelowMin {
                min: self.min_nr_regions,
                max: self.max_nr_regions,
            });
        }
        Ok(())
    }

    /// Start building attributes from [`paper_defaults`](Self::paper_defaults);
    /// [`AttrsBuilder::build`] validates the result.
    pub fn builder() -> AttrsBuilder {
        AttrsBuilder { attrs: Self::paper_defaults() }
    }
}

/// Builder for [`MonitorAttrs`]; every field starts at the paper's
/// evaluation value, and [`build`](Self::build) rejects inconsistent
/// combinations (e.g. `min_nr_regions > max_nr_regions`) with a typed
/// [`AttrsError`].
#[derive(Debug, Clone)]
pub struct AttrsBuilder {
    attrs: MonitorAttrs,
}

impl AttrsBuilder {
    /// Interval between access checks (must be > 0).
    pub fn sampling_interval(mut self, ns: Ns) -> Self {
        self.attrs.sampling_interval = ns;
        self
    }

    /// Aggregation window length (must be ≥ the sampling interval).
    pub fn aggregation_interval(mut self, ns: Ns) -> Self {
        self.attrs.aggregation_interval = ns;
        self
    }

    /// Target re-examination interval.
    pub fn regions_update_interval(mut self, ns: Ns) -> Self {
        self.attrs.regions_update_interval = ns;
        self
    }

    /// Lower bound on the region count (≥ 3).
    pub fn min_nr_regions(mut self, n: usize) -> Self {
        self.attrs.min_nr_regions = n;
        self
    }

    /// Upper bound on the region count (≥ the lower bound).
    pub fn max_nr_regions(mut self, n: usize) -> Self {
        self.attrs.max_nr_regions = n;
        self
    }

    /// Enable/disable the adaptive regions adjustment.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.attrs.adaptive = on;
        self
    }

    /// Validate and produce the attributes.
    pub fn build(self) -> Result<MonitorAttrs, AttrsError> {
        self.attrs.validate()?;
        Ok(self.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_evaluation_setup() {
        let a = MonitorAttrs::paper_defaults();
        assert_eq!(a.sampling_interval, ms(5));
        assert_eq!(a.aggregation_interval, ms(100));
        assert_eq!(a.regions_update_interval, sec(1));
        assert_eq!(a.min_nr_regions, 10);
        assert_eq!(a.max_nr_regions, 1000);
        assert_eq!(a.max_nr_accesses(), 20);
        assert_eq!(a.merge_threshold(), 2);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut a = MonitorAttrs::paper_defaults();
        a.sampling_interval = 0;
        assert!(a.validate().is_err());

        let mut a = MonitorAttrs::paper_defaults();
        a.aggregation_interval = a.sampling_interval / 2;
        assert!(a.validate().is_err());

        let mut a = MonitorAttrs::paper_defaults();
        a.min_nr_regions = 2;
        assert!(a.validate().is_err());

        let mut a = MonitorAttrs::paper_defaults();
        a.max_nr_regions = a.min_nr_regions - 1;
        assert!(a.validate().is_err());
    }

    #[test]
    fn builder_validates_at_build() {
        let a = MonitorAttrs::builder()
            .sampling_interval(ms(10))
            .aggregation_interval(ms(200))
            .min_nr_regions(20)
            .max_nr_regions(500)
            .adaptive(false)
            .build()
            .unwrap();
        assert_eq!(a.sampling_interval, ms(10));
        assert_eq!(a.max_nr_accesses(), 20);
        assert!(!a.adaptive);
        // Defaults flow through untouched.
        assert_eq!(a.regions_update_interval, sec(1));

        let err = MonitorAttrs::builder()
            .min_nr_regions(100)
            .max_nr_regions(50)
            .build()
            .unwrap_err();
        assert_eq!(err, AttrsError::MaxBelowMin { min: 100, max: 50 });
        assert!(err.to_string().contains("max_nr_regions"));

        assert_eq!(
            MonitorAttrs::builder().sampling_interval(0).build().unwrap_err(),
            AttrsError::ZeroSamplingInterval
        );
    }

    #[test]
    fn merge_threshold_floor_is_one() {
        let mut a = MonitorAttrs::paper_defaults();
        a.aggregation_interval = a.sampling_interval; // 1 sample/window
        assert_eq!(a.max_nr_accesses(), 1);
        assert_eq!(a.merge_threshold(), 1);
    }
}


daos_util::json_struct!(MonitorAttrs {
    sampling_interval, aggregation_interval, regions_update_interval,
    min_nr_regions, max_nr_regions, adaptive,
});
