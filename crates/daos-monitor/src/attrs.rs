//! Monitoring attributes (the paper's §3.1 knobs).

use daos_mm::clock::{ms, sec, Ns};

/// The five user-set monitoring parameters.
///
/// The paper's evaluation uses 5 ms sampling, 100 ms aggregation, 1 s
/// regions update, and a 10..1000 regions range (§4, "Workloads").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorAttrs {
    /// Interval between access checks of each region's sample page.
    pub sampling_interval: Ns,
    /// Interval after which per-region access counters are aggregated,
    /// reported, and reset.
    pub aggregation_interval: Ns,
    /// Interval after which the monitoring target (e.g. the VMA set) is
    /// re-examined for changes such as `mmap()`.
    pub regions_update_interval: Ns,
    /// Lower bound on the number of regions (accuracy floor).
    pub min_nr_regions: usize,
    /// Upper bound on the number of regions (overhead ceiling).
    pub max_nr_regions: usize,
    /// Whether the adaptive regions adjustment (random split + similarity
    /// merge) runs. Disabling it degrades the monitor to *static*
    /// space-based sampling — the prior-work baseline the paper's
    /// adaptive mechanism improves on (§2.2); exposed for ablation.
    pub adaptive: bool,
}

impl Default for MonitorAttrs {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl MonitorAttrs {
    /// The configuration used throughout the paper's evaluation.
    pub fn paper_defaults() -> Self {
        Self {
            sampling_interval: ms(5),
            aggregation_interval: ms(100),
            regions_update_interval: sec(1),
            min_nr_regions: 10,
            max_nr_regions: 1000,
            adaptive: true,
        }
    }

    /// Maximum value one region's access counter can reach in one
    /// aggregation window (= samples per window).
    pub fn max_nr_accesses(&self) -> u32 {
        (self.aggregation_interval / self.sampling_interval.max(1)) as u32
    }

    /// The merge-similarity threshold the adaptive adjustment uses:
    /// 10 % of the maximum possible access count, as in the kernel
    /// implementation.
    pub fn merge_threshold(&self) -> u32 {
        (self.max_nr_accesses() / 10).max(1)
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.sampling_interval == 0 {
            return Err("sampling_interval must be > 0".into());
        }
        if self.aggregation_interval < self.sampling_interval {
            return Err("aggregation_interval must be >= sampling_interval".into());
        }
        if self.min_nr_regions < 3 {
            return Err("min_nr_regions must be >= 3".into());
        }
        if self.max_nr_regions < self.min_nr_regions {
            return Err("max_nr_regions must be >= min_nr_regions".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_evaluation_setup() {
        let a = MonitorAttrs::paper_defaults();
        assert_eq!(a.sampling_interval, ms(5));
        assert_eq!(a.aggregation_interval, ms(100));
        assert_eq!(a.regions_update_interval, sec(1));
        assert_eq!(a.min_nr_regions, 10);
        assert_eq!(a.max_nr_regions, 1000);
        assert_eq!(a.max_nr_accesses(), 20);
        assert_eq!(a.merge_threshold(), 2);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut a = MonitorAttrs::paper_defaults();
        a.sampling_interval = 0;
        assert!(a.validate().is_err());

        let mut a = MonitorAttrs::paper_defaults();
        a.aggregation_interval = a.sampling_interval / 2;
        assert!(a.validate().is_err());

        let mut a = MonitorAttrs::paper_defaults();
        a.min_nr_regions = 2;
        assert!(a.validate().is_err());

        let mut a = MonitorAttrs::paper_defaults();
        a.max_nr_regions = a.min_nr_regions - 1;
        assert!(a.validate().is_err());
    }

    #[test]
    fn merge_threshold_floor_is_one() {
        let mut a = MonitorAttrs::paper_defaults();
        a.aggregation_interval = a.sampling_interval; // 1 sample/window
        assert_eq!(a.max_nr_accesses(), 1);
        assert_eq!(a.merge_threshold(), 1);
    }
}


daos_util::json_struct!(MonitorAttrs {
    sampling_interval, aggregation_interval, regions_update_interval,
    min_nr_regions, max_nr_regions, adaptive,
});
