//! Monitoring Primitives layer (Fig. 2 of the paper).
//!
//! The access-check method depends on the monitoring target; the monitor
//! core is generic over this trait. The paper provides two reference
//! implementations — virtual address spaces (`struct vma` + PTE accessed
//! bits) and the physical address space (rmap + PTE accessed bits) — and
//! lets users plug in their own (e.g. Intel CMT/PML). We additionally
//! provide a synthetic primitive for exact-accuracy unit tests.

use daos_mm::addr::{page_align_down, AddrRange};
use daos_mm::clock::Ns;
use daos_mm::process::Pid;
use daos_mm::system::MemorySystem;

/// The target-specific operations the monitor core needs.
///
/// Two-phase sampling, as in the kernel: `mkold` clears the accessed bit
/// of the sample page when the sample is *prepared*; one sampling interval
/// later `young` reads whether the CPU set it again.
pub trait Primitives {
    /// The environment checks run against (the simulated machine, or a
    /// synthetic space in tests).
    type Env;

    /// Current monitoring target ranges (re-read every regions-update
    /// interval to follow `mmap()`/hotplug events).
    fn target_ranges(&mut self, env: &Self::Env) -> Vec<AddrRange>;

    /// Clear the accessed state of the page at `addr` (sample prepare).
    fn mkold(&mut self, env: &mut Self::Env, addr: u64);

    /// Whether the page at `addr` was accessed since the last `mkold`.
    fn young(&mut self, env: &mut Self::Env, addr: u64) -> bool;

    /// CPU cost of a single `mkold`/`young` operation.
    fn check_cost_ns(&self, env: &Self::Env) -> Ns;
}

// ---------------------------------------------------------------------
// Virtual address spaces
// ---------------------------------------------------------------------

/// Primitives for one process's virtual address space, tracking targets
/// through its VMA list and checking PTE accessed bits.
#[derive(Debug, Clone, Copy)]
pub struct VaddrPrimitives {
    /// The monitored process.
    pub pid: Pid,
}

impl VaddrPrimitives {
    /// Monitor the virtual address space of `pid`.
    pub fn new(pid: Pid) -> Self {
        Self { pid }
    }
}

/// The kernel's "three regions" heuristic: a process address space has two
/// big gaps (between heap, mmap area and stack); monitoring the gaps is
/// pure waste, so the initial target is the three spans separated by the
/// two biggest gaps.
pub fn three_regions(vmas: &[AddrRange]) -> Vec<AddrRange> {
    if vmas.is_empty() {
        return Vec::new();
    }
    if vmas.len() == 1 {
        return vec![vmas[0]];
    }
    // Find the two largest gaps between adjacent VMAs.
    let mut gaps: Vec<(u64, usize)> = vmas
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[1].start - w[0].end, i))
        .collect();
    gaps.sort_unstable_by_key(|&(gap, _)| std::cmp::Reverse(gap));
    let mut cut_idx: Vec<usize> = gaps.iter().take(2).filter(|(g, _)| *g > 0).map(|&(_, i)| i).collect();
    cut_idx.sort_unstable();
    let mut out = Vec::with_capacity(3);
    let mut span_start = vmas[0].start;
    for &i in &cut_idx {
        out.push(AddrRange::new(span_start, vmas[i].end));
        span_start = vmas[i + 1].start;
    }
    out.push(AddrRange::new(span_start, vmas[vmas.len() - 1].end));
    out
}

impl Primitives for VaddrPrimitives {
    type Env = MemorySystem;

    fn target_ranges(&mut self, env: &MemorySystem) -> Vec<AddrRange> {
        three_regions(&env.vma_ranges(self.pid))
    }

    fn mkold(&mut self, env: &mut MemorySystem, addr: u64) {
        let _ = env.check_accessed_clear(self.pid, addr);
    }

    fn young(&mut self, env: &mut MemorySystem, addr: u64) -> bool {
        // The three-regions span covers gaps between VMAs; samples landing
        // in a gap simply read as not-accessed, like unmapped PTEs.
        env.peek_accessed(self.pid, addr).unwrap_or(false)
    }

    fn check_cost_ns(&self, env: &MemorySystem) -> Ns {
        env.machine().access_check_ns
    }
}

// ---------------------------------------------------------------------
// Physical address space
// ---------------------------------------------------------------------

/// Primitives for the machine's physical address space: targets are the
/// whole DRAM range, and checks go through the reverse mapping to the
/// owning PTE — slightly costlier than a direct VMA walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaddrPrimitives;

impl Primitives for PaddrPrimitives {
    type Env = MemorySystem;

    fn target_ranges(&mut self, env: &MemorySystem) -> Vec<AddrRange> {
        vec![env.phys_space()]
    }

    fn mkold(&mut self, env: &mut MemorySystem, paddr: u64) {
        let _ = env.check_paddr_accessed_clear(paddr);
    }

    fn young(&mut self, env: &mut MemorySystem, paddr: u64) -> bool {
        match env.phys_owner(paddr) {
            Some((pid, vaddr)) => env.peek_accessed(pid, vaddr).unwrap_or(false),
            None => false,
        }
    }

    fn check_cost_ns(&self, env: &MemorySystem) -> Ns {
        let m = env.machine();
        (m.access_check_ns as f64 * m.rmap_check_factor) as Ns
    }
}

// ---------------------------------------------------------------------
// Synthetic space (tests)
// ---------------------------------------------------------------------

/// A fully scriptable page space: tests set exactly which pages are
/// accessed and verify the monitor's output against that ground truth.
#[derive(Debug, Default, Clone)]
pub struct SyntheticSpace {
    /// Target ranges reported to the monitor.
    pub ranges: Vec<AddrRange>,
    /// Page-aligned addresses whose accessed bit is currently set.
    pub accessed: std::collections::HashSet<u64>,
}

impl SyntheticSpace {
    /// New space over the given ranges.
    pub fn new(ranges: Vec<AddrRange>) -> Self {
        Self { ranges, accessed: Default::default() }
    }

    /// Set the accessed bit on every page of `range`.
    pub fn touch_range(&mut self, range: AddrRange) {
        for p in range.pages() {
            self.accessed.insert(p);
        }
    }
}

/// Primitives over a [`SyntheticSpace`]; checks are free.
#[derive(Debug, Default, Clone, Copy)]
pub struct SyntheticPrimitives;

impl Primitives for SyntheticPrimitives {
    type Env = SyntheticSpace;

    fn target_ranges(&mut self, env: &SyntheticSpace) -> Vec<AddrRange> {
        env.ranges.clone()
    }

    fn mkold(&mut self, env: &mut SyntheticSpace, addr: u64) {
        env.accessed.remove(&page_align_down(addr));
    }

    fn young(&mut self, env: &mut SyntheticSpace, addr: u64) -> bool {
        env.accessed.contains(&page_align_down(addr))
    }

    fn check_cost_ns(&self, _env: &SyntheticSpace) -> Ns {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::access::AccessBatch;
    use daos_mm::machine::MachineProfile;
    use daos_mm::swap::SwapConfig;
    use daos_mm::vma::ThpMode;

    #[test]
    fn three_regions_splits_at_biggest_gaps() {
        let vmas = vec![
            AddrRange::new(0x1000, 0x2000),
            AddrRange::new(0x3000, 0x4000),      // gap 0x1000 before
            AddrRange::new(0x100_0000, 0x200_0000), // huge gap before
            AddrRange::new(0x7f00_0000, 0x7f10_0000), // huge gap before
        ];
        let regions = three_regions(&vmas);
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0], AddrRange::new(0x1000, 0x4000));
        assert_eq!(regions[1], AddrRange::new(0x100_0000, 0x200_0000));
        assert_eq!(regions[2], AddrRange::new(0x7f00_0000, 0x7f10_0000));
    }

    #[test]
    fn three_regions_few_vmas() {
        assert!(three_regions(&[]).is_empty());
        let one = vec![AddrRange::new(0x1000, 0x9000)];
        assert_eq!(three_regions(&one), one);
        // Two VMAs: the single gap is cut out, so the far area (e.g. the
        // stack) does not drag the unmapped void into the target.
        let two = vec![AddrRange::new(0x1000, 0x2000), AddrRange::new(0x8000, 0x9000)];
        assert_eq!(three_regions(&two), two);
    }

    #[test]
    fn three_regions_adjacent_vmas_no_gap() {
        let vmas = vec![
            AddrRange::new(0x1000, 0x2000),
            AddrRange::new(0x2000, 0x3000),
            AddrRange::new(0x3000, 0x4000),
        ];
        let regions = three_regions(&vmas);
        assert_eq!(regions, vec![AddrRange::new(0x1000, 0x4000)]);
    }

    #[test]
    fn vaddr_primitive_two_phase() {
        let mut sys =
            MemorySystem::new(MachineProfile::test_tiny(), SwapConfig::paper_zram(), 1);
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        let mut prim = VaddrPrimitives::new(pid);
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();

        prim.mkold(&mut sys, range.start); // prepare clears the bit
        assert!(!prim.young(&mut sys, range.start));
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert!(prim.young(&mut sys, range.start), "touch after mkold → young");
        assert!(prim.check_cost_ns(&sys) > 0);
    }

    #[test]
    fn paddr_primitive_reads_through_rmap() {
        let mut sys =
            MemorySystem::new(MachineProfile::test_tiny(), SwapConfig::paper_zram(), 1);
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let mut prim = PaddrPrimitives;
        let targets = prim.target_ranges(&sys);
        assert_eq!(targets, vec![sys.phys_space()]);
        let owned = sys
            .phys_space()
            .pages()
            .find(|p| sys.phys_owner(*p).is_some())
            .unwrap();
        assert!(prim.young(&mut sys, owned));
        prim.mkold(&mut sys, owned);
        assert!(!prim.young(&mut sys, owned));
        // Physical checks cost more than virtual ones (rmap walk).
        assert!(prim.check_cost_ns(&sys) > VaddrPrimitives::new(pid).check_cost_ns(&sys));
    }

    #[test]
    fn synthetic_primitive_scriptable() {
        let mut space = SyntheticSpace::new(vec![AddrRange::new(0, 0x10000)]);
        let mut prim = SyntheticPrimitives;
        space.touch_range(AddrRange::new(0x1000, 0x3000));
        assert!(prim.young(&mut space, 0x1000));
        assert!(prim.young(&mut space, 0x1234), "sub-page addr maps to its page");
        assert!(!prim.young(&mut space, 0x4000));
        prim.mkold(&mut space, 0x1500);
        assert!(!prim.young(&mut space, 0x1000));
        assert!(prim.young(&mut space, 0x2000));
    }
}
