//! Reference region-set implementation: the original `Vec<Region>` code,
//! kept verbatim as the cross-validation oracle for the struct-of-arrays
//! store in [`crate::regions`] (the Virtuoso method: a faster substrate
//! is only trustworthy if differentially tested against the slower
//! reference it replaced). Not used on the hot path.

use daos_mm::addr::{page_align_down, AddrRange, PAGE_SIZE};
use daos_util::rng::SmallRng;

use crate::region::{Region, RegionInfo};

/// An ordered, non-overlapping set of monitoring regions (reference
/// array-of-structs implementation).
#[derive(Debug, Clone, Default)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl RegionSet {
    /// Build the initial regions: `min_nr` regions distributed over the
    /// target ranges proportionally to their size (each range gets at
    /// least one), each range divided evenly at page granularity.
    pub fn init(ranges: &[AddrRange], min_nr: usize) -> Self {
        let ranges: Vec<AddrRange> = ranges.iter().filter(|r| !r.is_empty()).copied().collect();
        let mut set = Self { regions: Vec::new() };
        if ranges.is_empty() {
            return set;
        }
        let total: u64 = ranges.iter().map(|r| r.len()).sum();
        for r in &ranges {
            let share =
                ((min_nr as u64 * r.len()) / total.max(1)).max(1).min(r.nr_pages()) as usize;
            set.append_evenly(*r, share);
        }
        set
    }

    fn append_evenly(&mut self, range: AddrRange, pieces: usize) {
        let pages = range.nr_pages();
        let pieces = (pieces as u64).min(pages).max(1);
        let base = pages / pieces;
        let extra = pages % pieces;
        let mut start = range.start;
        for i in 0..pieces {
            let nr = base + if i < extra { 1 } else { 0 };
            let end = if i == pieces - 1 { range.end } else { start + nr * PAGE_SIZE };
            self.regions.push(Region::new(AddrRange::new(start, end)));
            start = end;
        }
    }

    /// Shared view of the regions, sorted by address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Mutable view (tests adjust counters in place).
    pub fn regions_mut(&mut self) -> &mut [Region] {
        &mut self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total monitored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.sz()).sum()
    }

    /// Immutable snapshot for callbacks/schemes.
    pub fn snapshot(&self) -> Vec<RegionInfo> {
        self.regions.iter().map(RegionInfo::from).collect()
    }

    /// End-of-window counter reset: remember this window's counts for the
    /// aging comparison, zero the live counters.
    pub fn reset_aggregated(&mut self) {
        for r in &mut self.regions {
            r.last_nr_accesses = r.nr_accesses;
            r.nr_accesses = 0;
        }
    }

    /// The aging + merge pass, run once per aggregation interval.
    pub fn merge_with_aging(&mut self, threshold: u32, sz_limit: u64, min_nr: usize) {
        for r in &mut self.regions {
            if r.nr_accesses.abs_diff(r.last_nr_accesses) > threshold {
                r.age = 0;
            } else {
                r.age += 1;
            }
        }
        if self.regions.len() <= min_nr {
            return;
        }
        let mut merged: Vec<Region> = Vec::with_capacity(self.regions.len());
        let mut count = self.regions.len();
        for r in self.regions.drain(..) {
            match merged.last_mut() {
                Some(prev)
                    if count > min_nr
                        && prev.range.end == r.range.start
                        && prev.nr_accesses.abs_diff(r.nr_accesses) <= threshold
                        && prev.sz() + r.sz() <= sz_limit =>
                {
                    prev.merge_right(&r);
                    count -= 1;
                }
                _ => merged.push(r),
            }
        }
        self.regions = merged;
    }

    /// The random splitting pass, run once per aggregation interval.
    /// Consumes the rng in exactly the same order as the SoA store's
    /// `split` — one `random_range(1..pages)` per attempted cut, gated by
    /// the same pre-checks — so both can be driven from one seed.
    pub fn split(&mut self, rng: &mut SmallRng, max_nr: usize) {
        let nr = self.regions.len();
        if nr == 0 || nr >= max_nr {
            return;
        }
        // Kernel heuristic: aim for 3 pieces while clearly below the cap.
        let nr_pieces = if nr * 3 <= max_nr { 3 } else { 2 };
        let mut out: Vec<Region> = Vec::with_capacity(nr * nr_pieces);
        let mut total = nr;
        for r in self.regions.drain(..) {
            let mut rest = r;
            for _ in 1..nr_pieces {
                if total >= max_nr || !rest.splittable() {
                    break;
                }
                // Random page-aligned split point strictly inside.
                let pages = rest.nr_pages();
                let cut_page = rng.random_range(1..pages);
                let mid = page_align_down(rest.range.start) + cut_page * PAGE_SIZE;
                if mid <= rest.range.start || mid >= rest.range.end {
                    break;
                }
                let (lo, hi) = rest.split_at(mid);
                out.push(lo);
                rest = hi;
                total += 1;
            }
            out.push(rest);
        }
        self.regions = out;
    }

    /// Adapt the region set to a changed set of target ranges (the
    /// `regions update interval` handler): regions are clipped to the new
    /// ranges, and uncovered parts of the new ranges get fresh regions.
    pub fn update_ranges(&mut self, new_ranges: &[AddrRange]) {
        let mut out: Vec<Region> = Vec::with_capacity(self.regions.len());
        for range in new_ranges.iter().filter(|r| !r.is_empty()) {
            let mut cursor = range.start;
            for old in &self.regions {
                let Some(isect) = old.range.intersect(range) else { continue };
                if isect.start > cursor {
                    out.push(Region::new(AddrRange::new(cursor, isect.start)));
                }
                let mut clipped = *old;
                clipped.range = isect;
                clipped.sampling_addr = None;
                out.push(clipped);
                cursor = isect.end.max(cursor);
            }
            if cursor < range.end {
                out.push(Region::new(AddrRange::new(cursor, range.end)));
            }
        }
        self.regions = out;
    }

    /// Phase-1 sampling: consume outstanding samples, counting accesses.
    /// Mirrors [`crate::regions::RegionSet::check_samples`].
    pub fn check_samples(&mut self, mut young: impl FnMut(u64) -> bool) -> u64 {
        let mut checks = 0;
        for r in &mut self.regions {
            if let Some(addr) = r.sampling_addr.take() {
                if young(addr) {
                    r.nr_accesses += 1;
                }
                checks += 1;
            }
        }
        checks
    }

    /// Phase-2 sampling: pick one random page per region, age it via
    /// `mkold`, and remember it for the next check. Consumes the rng
    /// identically to [`crate::regions::RegionSet::prepare_samples`].
    pub fn prepare_samples(&mut self, rng: &mut SmallRng, mut mkold: impl FnMut(u64)) -> u64 {
        let mut checks = 0;
        for r in &mut self.regions {
            let pages = r.range.nr_pages();
            if pages == 0 {
                continue;
            }
            let page = rng.random_range(0..pages);
            let addr = page_align_down(r.range.start) + page * PAGE_SIZE;
            mkold(addr);
            r.sampling_addr = Some(addr);
            checks += 1;
        }
        checks
    }

    /// Debug invariant: sorted, non-overlapping, non-empty regions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.regions.windows(2) {
            if w[0].range.end > w[1].range.start {
                return Err(format!("overlap/order violation: {} then {}", w[0].range, w[1].range));
            }
        }
        if let Some(r) = self.regions.iter().find(|r| r.range.is_empty()) {
            return Err(format!("empty region at {}", r.range));
        }
        Ok(())
    }
}
