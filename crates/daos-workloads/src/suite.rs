//! The 24 Parsec3 / Splash-2x workload analogs used throughout the
//! paper's evaluation (§4, "Workloads").
//!
//! Footprints are the paper's Fig. 6 address-space extents scaled down by
//! the same factor as the machine profiles; behaviours reproduce each
//! workload's qualitative Fig. 6 heatmap: hot-set size, phase changes,
//! streaming sweeps, footprint growth, and (for the `_ncp`/non-contiguous
//! codes) strided layouts, which are the THP-bloat-prone patterns.

use daos_mm::clock::{ms, sec, Ns};

use crate::spec::{Behavior, Suite, WorkloadSpec};
use crate::workload::SyntheticWorkload;

const MIB: u64 = 1 << 20;

fn w(
    name: &'static str,
    suite: Suite,
    footprint_mib: u64,
    nr_epochs: u64,
    compute_ns: Ns,
    behavior: Behavior,
) -> WorkloadSpec {
    WorkloadSpec { name, suite, footprint: footprint_mib * MIB, nr_epochs, compute_ns, behavior }
}

/// All 24 workload specs, in the paper's Fig. 7 order
/// (Parsec3 alphabetical, then Splash-2x alphabetical).
pub fn paper_suite() -> Vec<WorkloadSpec> {
    use Behavior::*;
    use Suite::{Parsec3 as P, Splash2x as S};
    vec![
        w("blackscholes", P, 48, 26_000, ms(2),
            CompactHot { hot_frac: 0.15, apc: 3.0, cold_touch_prob: 0.0002 }),
        w("bodytrack", P, 24, 24_000, ms(2),
            PhaseShift { nr_phases: 4, hot_frac: 0.2, apc: 4.0, phase_len: sec(3) }),
        w("canneal", P, 64, 26_000, ms(2),
            PointerChase { random_touches: 18, core_frac: 0.05, apc: 8.0 }),
        w("dedup", P, 96, 9_000, ms(1),
            Growing { built_by_frac: 0.8, hot_tail_frac: 0.12, apc: 4.0 }),
        w("facesim", P, 48, 24_000, ms(2),
            CompactHot { hot_frac: 0.18, apc: 4.0, cold_touch_prob: 0.0002 }),
        w("fluidanimate", P, 48, 26_000, ms(2),
            PhaseShift { nr_phases: 2, hot_frac: 0.3, apc: 6.0, phase_len: sec(5) }),
        w("freqmine", P, 96, 26_000, ms(2),
            MostlyIdle { active_frac: 0.07, apc: 4.0, stray_prob: 0.05 }),
        w("raytrace", P, 48, 26_000, ms(2),
            PhaseShift { nr_phases: 3, hot_frac: 0.22, apc: 8.0, phase_len: sec(3) }),
        w("streamcluster", P, 32, 30_000, ms(1),
            Streaming { window_frac: 0.15, stride: 1, apc: 10.0, sweep_period: sec(8) }),
        w("swaptions", P, 16, 22_000, ms(2),
            CompactHot { hot_frac: 0.5, apc: 3.0, cold_touch_prob: 0.0 }),
        w("vips", P, 48, 22_000, ms(2),
            Growing { built_by_frac: 0.9, hot_tail_frac: 0.18, apc: 4.0 }),
        w("x264", P, 32, 20_000, ms(2),
            Streaming { window_frac: 0.15, stride: 1, apc: 8.0, sweep_period: sec(12) }),
        w("barnes", S, 96, 24_000, ms(2),
            PhaseShift { nr_phases: 2, hot_frac: 0.12, apc: 6.0, phase_len: sec(6) }),
        w("fft", S, 96, 10_000, ms(1),
            PhaseShift { nr_phases: 3, hot_frac: 0.12, apc: 14.0, phase_len: sec(4) }),
        w("lu_cb", S, 48, 22_000, ms(1),
            CompactHot { hot_frac: 0.25, apc: 14.0, cold_touch_prob: 0.0002 }),
        w("lu_ncb", S, 48, 22_000, ms(1),
            Streaming { window_frac: 0.2, stride: 2, apc: 14.0, sweep_period: sec(6) }),
        w("ocean_cp", S, 96, 16_000, ms(1),
            Streaming { window_frac: 0.1, stride: 1, apc: 16.0, sweep_period: sec(10) }),
        w("ocean_ncp", S, 128, 18_000, ms(1),
            Streaming { window_frac: 0.1, stride: 2, apc: 24.0, sweep_period: sec(20) }),
        w("radiosity", S, 64, 22_000, ms(2),
            PointerChase { random_touches: 12, core_frac: 0.08, apc: 6.0 }),
        w("radix", S, 64, 9_000, ms(1),
            Streaming { window_frac: 0.2, stride: 1, apc: 10.0, sweep_period: sec(5) }),
        w("raytrace", S, 16, 24_000, ms(2),
            PhaseShift { nr_phases: 5, hot_frac: 0.2, apc: 4.0, phase_len: sec(5) }),
        w("volrend", S, 24, 22_000, ms(2),
            CompactHot { hot_frac: 0.3, apc: 3.0, cold_touch_prob: 0.0003 }),
        w("water_nsquared", S, 16, 28_000, ms(2),
            PhaseShift { nr_phases: 3, hot_frac: 0.3, apc: 5.0, phase_len: sec(10) }),
        w("water_spatial", S, 24, 24_000, ms(2),
            CompactHot { hot_frac: 0.4, apc: 4.0, cold_touch_prob: 0.0 }),
    ]
}

/// Look a spec up by `suite/name` path (e.g. `"parsec3/raytrace"`).
pub fn by_path(path: &str) -> Option<WorkloadSpec> {
    paper_suite().into_iter().find(|s| s.path_name() == path)
}

/// Instantiate a spec as a runnable workload.
pub fn instantiate(spec: WorkloadSpec, seed: u64) -> SyntheticWorkload {
    SyntheticWorkload::new(spec, seed)
}

/// The 16 workloads the paper plots in Fig. 4 (of the 24 it ran).
pub fn fig4_subset() -> Vec<WorkloadSpec> {
    const NAMES: [&str; 16] = [
        "parsec3/blackscholes",
        "parsec3/bodytrack",
        "parsec3/dedup",
        "parsec3/fluidanimate",
        "parsec3/raytrace",
        "parsec3/streamcluster",
        "parsec3/canneal",
        "parsec3/x264",
        "splash2x/barnes",
        "splash2x/fft",
        "splash2x/lu_ncb",
        "splash2x/ocean_cp",
        "splash2x/ocean_ncp",
        "splash2x/radix",
        "splash2x/raytrace",
        "splash2x/water_nsquared",
    ];
    // lint: allow(panic, NAMES is static and covered by the suite tests below)
    NAMES.iter().map(|n| by_path(n).expect("suite member")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::addr::PAGE_SIZE;

    #[test]
    fn suite_has_24_workloads_12_per_suite() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 24);
        let parsec = suite.iter().filter(|s| s.suite == Suite::Parsec3).count();
        let splash = suite.iter().filter(|s| s.suite == Suite::Splash2x).count();
        assert_eq!(parsec, 12);
        assert_eq!(splash, 12);
    }

    #[test]
    fn plot_names_unique() {
        let suite = paper_suite();
        let mut names: Vec<String> = suite.iter().map(|s| s.plot_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24, "duplicate plot names");
    }

    #[test]
    fn raytrace_exists_in_both_suites() {
        assert!(by_path("parsec3/raytrace").is_some());
        assert!(by_path("splash2x/raytrace").is_some());
        assert!(by_path("parsec3/nonexistent").is_none());
    }

    #[test]
    fn fig4_subset_matches_paper_panels() {
        let subset = fig4_subset();
        assert_eq!(subset.len(), 16);
    }

    #[test]
    fn per_epoch_touch_budget_is_bounded() {
        // Keeps whole-figure sweeps tractable on one core: every workload
        // must expect < 4k page touches per epoch and > 100 (else the
        // monitor has nothing to see).
        for spec in paper_suite() {
            let w = instantiate(spec, 0);
            let t = w.expected_touches_per_epoch();
            assert!(
                (100.0..4000.0).contains(&t),
                "{}: {} touches/epoch out of budget",
                spec.path_name(),
                t
            );
        }
    }

    #[test]
    fn footprints_fit_the_smallest_paper_machine() {
        let dram = daos_mm::machine::MachineProfile::z1d_metal().dram_bytes;
        for spec in paper_suite() {
            // Leave 25 % headroom for THP bloat experiments.
            assert!(
                spec.footprint * 2 <= dram,
                "{} footprint {} too large for {}",
                spec.path_name(),
                spec.footprint,
                dram
            );
            assert_eq!(spec.footprint % PAGE_SIZE, 0);
        }
    }

    #[test]
    fn durations_cover_the_fig4_min_age_range() {
        // Fig. 4 sweeps min_age up to 60 s; nominal runtimes must be long
        // enough that a 60 s threshold is meaningful for most workloads.
        let long_enough = paper_suite()
            .iter()
            .filter(|s| s.nominal_duration() >= daos_mm::clock::sec(75))
            .count();
        assert!(long_enough >= 18, "only {long_enough}/24 run >= 75 s");
    }
}
