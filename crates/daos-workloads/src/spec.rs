//! Workload specifications: the declarative description of one synthetic
//! benchmark analog.
//!
//! Each of the paper's 24 workloads is reproduced as a parameterised
//! instance of a small set of access-behaviour archetypes that match the
//! qualitative pattern visible in the paper's Fig. 6 heatmap for that
//! workload (hot-set size, phase changes, streaming sweeps, growth, ...).

use daos_mm::clock::{Ns, MSEC};

/// Which benchmark suite the analog belongss to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// PARSEC 3.0.
    Parsec3,
    /// Splash-2x.
    Splash2x,
    /// The §4.4 production serverless fleet (one spec per worker
    /// process, replicated by the fleet engine).
    Fleet,
}

impl Suite {
    /// The paper's plot prefix (`P/`, `S/` or `F/`).
    pub fn prefix(&self) -> &'static str {
        match self {
            Suite::Parsec3 => "P/",
            Suite::Splash2x => "S/",
            Suite::Fleet => "F/",
        }
    }

    /// The suite's lowercase path name (`parsec3` / `splash2x` / `fleet`).
    pub fn path(&self) -> &'static str {
        match self {
            Suite::Parsec3 => "parsec3",
            Suite::Splash2x => "splash2x",
            Suite::Fleet => "fleet",
        }
    }
}

/// Spatio-temporal access behaviour archetypes.
///
/// All fractions are of the workload's footprint; all periods are virtual
/// time. `apc` is accesses-per-page (cost intensity: high values model
/// TLB-bound compute kernels that benefit from huge pages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// A fixed hot prefix, intensely accessed; the cold remainder is
    /// touched only with a small probability. (blackscholes, swaptions…)
    CompactHot {
        /// Fraction of the footprint that is hot.
        hot_frac: f64,
        /// Accesses per hot page per epoch.
        apc: f32,
        /// Per-epoch touch probability of each cold page.
        cold_touch_prob: f32,
    },
    /// Random pointer chasing over the whole footprint plus a small hot
    /// core (canneal's netlist + its index structures).
    PointerChase {
        /// Random page draws per epoch over the full footprint.
        random_touches: u32,
        /// Fraction of the footprint forming the always-hot core.
        core_frac: f64,
        /// Accesses per core page per epoch.
        apc: f32,
    },
    /// A sequential window sweeping the footprint repeatedly
    /// (streamcluster's point batches, ocean's grid passes). `stride > 1`
    /// models non-contiguous layouts (ocean_ncp) that touch every n-th
    /// page — the THP-bloat-prone pattern.
    Streaming {
        /// Window length as a fraction of the footprint.
        window_frac: f64,
        /// Pages touched within the window: every `stride`-th.
        stride: u32,
        /// Accesses per touched page per epoch.
        apc: f32,
        /// Time for one full pass over the footprint.
        sweep_period: Ns,
    },
    /// The hot region jumps to a different part of the footprint every
    /// phase (fft's transpose/compute phases, splash raytrace frames).
    PhaseShift {
        /// Number of distinct hot locations cycled through.
        nr_phases: u32,
        /// Fraction of the footprint hot in each phase.
        hot_frac: f64,
        /// Accesses per hot page per epoch.
        apc: f32,
        /// Length of one phase.
        phase_len: Ns,
    },
    /// Footprint builds up over the run; only a head window stays hot
    /// (dedup's growing dedup store, x264's frame window).
    Growing {
        /// Fraction of the run after which the footprint is fully built.
        built_by_frac: f64,
        /// Trailing window (fraction of *built* footprint) that stays hot.
        hot_tail_frac: f64,
        /// Accesses per hot page per epoch.
        apc: f32,
    },
    /// Large structure built at start, then mostly idle: a small active
    /// fraction plus rare stray touches (freqmine's FP-tree — the
    /// workload where prcl saves 91 % memory at 0.9 % slowdown).
    MostlyIdle {
        /// Fraction that remains actively used.
        active_frac: f64,
        /// Accesses per active page per epoch.
        apc: f32,
        /// Per-epoch probability of one stray touch to the idle part.
        stray_prob: f32,
    },
}

impl Behavior {
    /// Short human-readable archetype name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Behavior::CompactHot { .. } => "compact-hot",
            Behavior::PointerChase { .. } => "pointer-chase",
            Behavior::Streaming { .. } => "streaming",
            Behavior::PhaseShift { .. } => "phase-shift",
            Behavior::Growing { .. } => "growing",
            Behavior::MostlyIdle { .. } => "mostly-idle",
        }
    }
}

/// A complete workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name without suite prefix (e.g. `"blackscholes"`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Mapped footprint in bytes (scaled from the paper's Fig. 6 sizes).
    pub footprint: u64,
    /// Nominal run length in epochs (one epoch ≈ 5 ms of work).
    pub nr_epochs: u64,
    /// Pure-CPU work per epoch, ns (at the 3 GHz reference clock).
    pub compute_ns: Ns,
    /// The access behaviour.
    pub behavior: Behavior,
}

/// Nominal epoch quantum the specs are calibrated around.
pub const EPOCH_TARGET: Ns = 5 * MSEC;

impl WorkloadSpec {
    /// Full display name with suite prefix, as in the paper's plots
    /// (`P/blackscholes`).
    pub fn plot_name(&self) -> String {
        format!("{}{}", self.suite.prefix(), self.name)
    }

    /// Full path name (`parsec3/blackscholes`).
    pub fn path_name(&self) -> String {
        format!("{}/{}", self.suite.path(), self.name)
    }

    /// Nominal duration if every epoch took exactly [`EPOCH_TARGET`].
    pub fn nominal_duration(&self) -> Ns {
        self.nr_epochs * EPOCH_TARGET
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_prefixes() {
        let spec = WorkloadSpec {
            name: "blackscholes",
            suite: Suite::Parsec3,
            footprint: 64 << 20,
            nr_epochs: 1000,
            compute_ns: 1_000_000,
            behavior: Behavior::CompactHot { hot_frac: 0.3, apc: 8.0, cold_touch_prob: 0.0 },
        };
        assert_eq!(spec.plot_name(), "P/blackscholes");
        assert_eq!(spec.path_name(), "parsec3/blackscholes");
        assert_eq!(spec.nominal_duration(), 5_000 * MSEC * 1000 / 1000);
        assert_eq!(Suite::Splash2x.prefix(), "S/");
        assert_eq!(Suite::Splash2x.path(), "splash2x");
    }
}


use daos_util::json::{self, FromJson, Json, JsonError, ToJson};

daos_util::json_enum!(Suite { Parsec3, Splash2x, Fleet });

impl ToJson for Behavior {
    fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        match *self {
            Behavior::CompactHot { hot_frac, apc, cold_touch_prob } => json::tagged(
                "CompactHot",
                obj(vec![
                    ("hot_frac", hot_frac.to_json()),
                    ("apc", apc.to_json()),
                    ("cold_touch_prob", cold_touch_prob.to_json()),
                ]),
            ),
            Behavior::PointerChase { random_touches, core_frac, apc } => json::tagged(
                "PointerChase",
                obj(vec![
                    ("random_touches", random_touches.to_json()),
                    ("core_frac", core_frac.to_json()),
                    ("apc", apc.to_json()),
                ]),
            ),
            Behavior::Streaming { window_frac, stride, apc, sweep_period } => json::tagged(
                "Streaming",
                obj(vec![
                    ("window_frac", window_frac.to_json()),
                    ("stride", stride.to_json()),
                    ("apc", apc.to_json()),
                    ("sweep_period", sweep_period.to_json()),
                ]),
            ),
            Behavior::PhaseShift { nr_phases, hot_frac, apc, phase_len } => json::tagged(
                "PhaseShift",
                obj(vec![
                    ("nr_phases", nr_phases.to_json()),
                    ("hot_frac", hot_frac.to_json()),
                    ("apc", apc.to_json()),
                    ("phase_len", phase_len.to_json()),
                ]),
            ),
            Behavior::Growing { built_by_frac, hot_tail_frac, apc } => json::tagged(
                "Growing",
                obj(vec![
                    ("built_by_frac", built_by_frac.to_json()),
                    ("hot_tail_frac", hot_tail_frac.to_json()),
                    ("apc", apc.to_json()),
                ]),
            ),
            Behavior::MostlyIdle { active_frac, apc, stray_prob } => json::tagged(
                "MostlyIdle",
                obj(vec![
                    ("active_frac", active_frac.to_json()),
                    ("apc", apc.to_json()),
                    ("stray_prob", stray_prob.to_json()),
                ]),
            ),
        }
    }
}

impl FromJson for Behavior {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, p) = json::untag(v)?;
        match tag {
            "CompactHot" => Ok(Behavior::CompactHot {
                hot_frac: p.field("hot_frac")?,
                apc: p.field("apc")?,
                cold_touch_prob: p.field("cold_touch_prob")?,
            }),
            "PointerChase" => Ok(Behavior::PointerChase {
                random_touches: p.field("random_touches")?,
                core_frac: p.field("core_frac")?,
                apc: p.field("apc")?,
            }),
            "Streaming" => Ok(Behavior::Streaming {
                window_frac: p.field("window_frac")?,
                stride: p.field("stride")?,
                apc: p.field("apc")?,
                sweep_period: p.field("sweep_period")?,
            }),
            "PhaseShift" => Ok(Behavior::PhaseShift {
                nr_phases: p.field("nr_phases")?,
                hot_frac: p.field("hot_frac")?,
                apc: p.field("apc")?,
                phase_len: p.field("phase_len")?,
            }),
            "Growing" => Ok(Behavior::Growing {
                built_by_frac: p.field("built_by_frac")?,
                hot_tail_frac: p.field("hot_tail_frac")?,
                apc: p.field("apc")?,
            }),
            "MostlyIdle" => Ok(Behavior::MostlyIdle {
                active_frac: p.field("active_frac")?,
                apc: p.field("apc")?,
                stray_prob: p.field("stray_prob")?,
            }),
            other => Err(JsonError::msg(format!("unknown Behavior '{other}'"))),
        }
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), self.name.to_json()),
            ("suite".into(), self.suite.to_json()),
            ("footprint".into(), self.footprint.to_json()),
            ("nr_epochs".into(), self.nr_epochs.to_json()),
            ("compute_ns".into(), self.compute_ns.to_json()),
            ("behavior".into(), self.behavior.to_json()),
        ])
    }
}

impl FromJson for WorkloadSpec {
    /// The `name` field is a `&'static str`, so decoding resolves it
    /// against the paper-suite catalog; all other fields come from the
    /// JSON (a decoded spec may deviate from the catalog entry, e.g. a
    /// scaled footprint).
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name: String = v.field("name")?;
        let suite: Suite = v.field("suite")?;
        let catalog = crate::suite::paper_suite();
        let entry = catalog
            .iter()
            .find(|s| s.name == name && s.suite == suite)
            .ok_or_else(|| {
                JsonError::msg(format!("unknown workload '{name}' in suite {suite:?}"))
            })?;
        Ok(WorkloadSpec {
            name: entry.name,
            suite,
            footprint: v.field("footprint")?,
            nr_epochs: v.field("nr_epochs")?,
            compute_ns: v.field("compute_ns")?,
            behavior: v.field("behavior")?,
        })
    }
}
