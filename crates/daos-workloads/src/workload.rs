//! The workload trait and the spec-driven synthetic workload.

use daos_mm::access::AccessBatch;
use daos_mm::addr::{AddrRange, PAGE_SIZE};
use daos_mm::clock::Ns;
use daos_mm::error::MmResult;
use daos_mm::process::{Pid, STACK_BASE};
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;
use daos_util::rng::SmallRng;

use crate::spec::{Behavior, WorkloadSpec};

/// A driver-facing workload: maps its memory, then produces one epoch of
/// access behaviour at a time.
pub trait Workload {
    /// Display name (e.g. `parsec3/blackscholes`).
    fn name(&self) -> String;

    /// Create the process and its mappings; `thp` is the system THP mode
    /// the run configuration dictates. Returns the workload's pid.
    fn setup(&mut self, sys: &mut MemorySystem, thp: ThpMode) -> MmResult<Pid>;

    /// Total epochs in the run.
    fn nr_epochs(&self) -> u64;

    /// Produce epoch `idx` at virtual time `now`: push access batches to
    /// `out` and return the epoch's pure-compute nanoseconds (reference
    /// clock). Behaviour phases progress with *work done* (the epoch
    /// index), not wall time: a run slowed down by refault storms sweeps
    /// and phase-shifts over proportionally more wall time, exactly as a
    /// real program would — it cannot skip its own work.
    fn epoch(&mut self, idx: u64, now: Ns, out: &mut Vec<AccessBatch>) -> Ns;

    /// Ground truth: the ranges the workload considers hot during epoch
    /// `idx` (for monitoring-accuracy validation).
    fn hot_ranges(&self, idx: u64) -> Vec<AddrRange>;

    /// The workload's process id (valid after `setup`).
    fn pid(&self) -> Pid;
}

/// Snap `range.start` down onto the stride grid anchored at `base`.
fn stride_align(range: AddrRange, base: u64, stride: u32) -> AddrRange {
    let step = stride.max(1) as u64 * PAGE_SIZE;
    if range.is_empty() || step == PAGE_SIZE {
        return range;
    }
    let off = (range.start - base) % step;
    AddrRange::new(range.start - off, range.end)
}

/// Clip a fraction pair of `range` to page-aligned addresses.
fn sub_range(range: AddrRange, lo_frac: f64, hi_frac: f64) -> AddrRange {
    let len = range.len() as f64;
    let lo = range.start + ((len * lo_frac) as u64 / PAGE_SIZE) * PAGE_SIZE;
    let hi = range.start + ((len * hi_frac) as u64 / PAGE_SIZE) * PAGE_SIZE;
    AddrRange::new(lo.min(range.end), hi.min(range.end))
}

/// A [`WorkloadSpec`] interpreter.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    pid: Pid,
    region: AddrRange,
    rng: SmallRng,
    /// Highest built byte offset (Growing behaviour).
    built_end: u64,
}

impl SyntheticWorkload {
    /// Instantiate a spec with a deterministic seed.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Self {
            spec,
            pid: 0,
            region: AddrRange::empty(),
            rng: SmallRng::seed_from_u64(seed ^ spec.footprint),
            built_end: 0,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The main data mapping (valid after setup).
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Position in a cyclic sweep, in [0, 1), driven by epoch index with
    /// the cycle length interpreted at the nominal epoch quantum.
    fn cycle_pos(idx: u64, period: Ns) -> f64 {
        let period_epochs = (period / crate::spec::EPOCH_TARGET).max(1);
        (idx % period_epochs) as f64 / period_epochs as f64
    }

    /// Current phase number for a phase-shifting behaviour.
    fn phase_idx(idx: u64, phase_len: Ns, nr_phases: u32) -> u64 {
        let phase_epochs = (phase_len / crate::spec::EPOCH_TARGET).max(1);
        (idx / phase_epochs) % nr_phases as u64
    }

    /// Expected page touches in one nominal epoch (cost-budget sanity).
    pub fn expected_touches_per_epoch(&self) -> f64 {
        let pages = (self.spec.footprint / PAGE_SIZE) as f64;
        match self.spec.behavior {
            Behavior::CompactHot { hot_frac, cold_touch_prob, .. } => {
                pages * hot_frac + pages * (1.0 - hot_frac) * cold_touch_prob as f64
            }
            Behavior::PointerChase { random_touches, core_frac, .. } => {
                random_touches as f64 + pages * core_frac
            }
            Behavior::Streaming { window_frac, stride, .. } => {
                pages * window_frac / stride.max(1) as f64
            }
            Behavior::PhaseShift { hot_frac, .. } => pages * hot_frac,
            Behavior::Growing { hot_tail_frac, .. } => pages * hot_tail_frac,
            Behavior::MostlyIdle { active_frac, .. } => pages * active_frac,
        }
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> String {
        self.spec.path_name()
    }

    fn setup(&mut self, sys: &mut MemorySystem, thp: ThpMode) -> MmResult<Pid> {
        let pid = sys.spawn();
        self.pid = pid;
        self.region = sys.mmap(pid, self.spec.footprint, thp)?;
        // A small far-away stack area, giving the address space the big
        // gap the three-regions targeting heuristic expects.
        sys.mmap_at(pid, STACK_BASE, 64 * PAGE_SIZE, ThpMode::Never)?;

        // Initialisation pass: most benchmarks build their data set up
        // front, making the whole footprint resident. Growing workloads
        // build theirs during the run instead.
        let init = match self.spec.behavior {
            Behavior::Growing { .. } => {
                self.built_end = self.region.start;
                None
            }
            Behavior::Streaming { stride, .. } if stride > 1 => {
                // Non-contiguous layouts only ever materialise their own
                // stride of pages.
                Some(AccessBatch::stride(self.region, stride, 1.0))
            }
            _ => Some(AccessBatch::all(self.region, 1.0)),
        };
        if let Some(batch) = init {
            sys.apply_access(pid, &batch)?;
        }
        Ok(pid)
    }

    fn nr_epochs(&self) -> u64 {
        self.spec.nr_epochs
    }

    fn epoch(&mut self, idx: u64, _now: Ns, out: &mut Vec<AccessBatch>) -> Ns {
        let r = self.region;
        match self.spec.behavior {
            Behavior::CompactHot { hot_frac, apc, cold_touch_prob } => {
                out.push(AccessBatch::all(sub_range(r, 0.0, hot_frac), apc));
                let cold = sub_range(r, hot_frac, 1.0);
                let expect = cold.nr_pages() as f64 * cold_touch_prob as f64;
                let count = poisson_ish(&mut self.rng, expect);
                if count > 0 {
                    out.push(AccessBatch::random(cold, count, 1.0));
                }
            }
            Behavior::PointerChase { random_touches, core_frac, apc } => {
                out.push(AccessBatch::all(sub_range(r, 0.0, core_frac), apc));
                out.push(AccessBatch::random(r, random_touches, 1.5));
            }
            Behavior::Streaming { window_frac, stride, apc, sweep_period } => {
                let pos = Self::cycle_pos(idx, sweep_period);
                let win_lo = pos;
                let win_hi = pos + window_frac;
                // Keep the window start on a stride boundary so a strided
                // (non-contiguous) layout touches the same page class on
                // every pass, as the real codes do.
                out.push(AccessBatch::stride(
                    stride_align(sub_range(r, win_lo, win_hi.min(1.0)), r.start, stride),
                    stride,
                    apc,
                ));
                if win_hi > 1.0 {
                    // Wrap around the footprint.
                    out.push(AccessBatch::stride(sub_range(r, 0.0, win_hi - 1.0), stride, apc));
                }
            }
            Behavior::PhaseShift { nr_phases, hot_frac, apc, phase_len } => {
                let phase = Self::phase_idx(idx, phase_len, nr_phases) as f64;
                let start = phase / nr_phases as f64 * (1.0 - hot_frac);
                out.push(AccessBatch::all(sub_range(r, start, start + hot_frac), apc));
            }
            Behavior::Growing { built_by_frac, hot_tail_frac, apc } => {
                let progress =
                    (idx as f64 / self.spec.nr_epochs as f64 / built_by_frac).min(1.0);
                let target_end = sub_range(r, 0.0, progress).end;
                if target_end > self.built_end {
                    out.push(AccessBatch::all(
                        AddrRange::new(self.built_end, target_end),
                        1.0,
                    ));
                    self.built_end = target_end;
                }
                let built_frac = (self.built_end - r.start) as f64 / r.len().max(1) as f64;
                let tail_lo = (built_frac - hot_tail_frac * built_frac).max(0.0);
                if self.built_end > r.start {
                    out.push(AccessBatch::all(sub_range(r, tail_lo, built_frac), apc));
                }
            }
            Behavior::MostlyIdle { active_frac, apc, stray_prob } => {
                out.push(AccessBatch::all(sub_range(r, 0.0, active_frac), apc));
                if self.rng.random::<f32>() < stray_prob {
                    out.push(AccessBatch::random(sub_range(r, active_frac, 1.0), 1, 1.0));
                }
            }
        }
        self.spec.compute_ns
    }

    fn hot_ranges(&self, idx: u64) -> Vec<AddrRange> {
        let r = self.region;
        match self.spec.behavior {
            Behavior::CompactHot { hot_frac, .. } => vec![sub_range(r, 0.0, hot_frac)],
            Behavior::PointerChase { core_frac, .. } => vec![sub_range(r, 0.0, core_frac)],
            Behavior::Streaming { window_frac, sweep_period, .. } => {
                let pos = Self::cycle_pos(idx, sweep_period);
                vec![sub_range(r, pos, (pos + window_frac).min(1.0))]
            }
            Behavior::PhaseShift { nr_phases, hot_frac, phase_len, .. } => {
                let phase = Self::phase_idx(idx, phase_len, nr_phases) as f64;
                let start = phase / nr_phases as f64 * (1.0 - hot_frac);
                vec![sub_range(r, start, start + hot_frac)]
            }
            Behavior::Growing { hot_tail_frac, .. } => {
                let built_frac = (self.built_end.saturating_sub(r.start)) as f64
                    / r.len().max(1) as f64;
                let tail_lo = (built_frac - hot_tail_frac * built_frac).max(0.0);
                vec![sub_range(r, tail_lo, built_frac)]
            }
            Behavior::MostlyIdle { active_frac, .. } => vec![sub_range(r, 0.0, active_frac)],
        }
    }

    fn pid(&self) -> Pid {
        self.pid
    }
}

/// Integer draw with the right expectation for a small mean.
fn poisson_ish(rng: &mut SmallRng, expect: f64) -> u32 {
    let base = expect.floor();
    let frac = expect - base;
    base as u32 + if rng.random::<f64>() < frac { 1 } else { 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Suite;
    use daos_mm::machine::MachineProfile;
    use daos_mm::swap::SwapConfig;

    fn sys() -> MemorySystem {
        let mut m = MachineProfile::test_tiny();
        m.dram_bytes = 256 << 20;
        MemorySystem::new(m, SwapConfig::paper_zram(), 5)
    }

    fn spec(behavior: Behavior) -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            suite: Suite::Parsec3,
            footprint: 32 << 20,
            nr_epochs: 100,
            compute_ns: 1_000_000,
            behavior,
        }
    }

    #[test]
    fn setup_builds_full_footprint_for_static_behaviours() {
        let mut sys = sys();
        let mut w = SyntheticWorkload::new(
            spec(Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.001 }),
            1,
        );
        let pid = w.setup(&mut sys, ThpMode::Never).unwrap();
        assert_eq!(sys.rss_bytes(pid), (32 << 20) + 64 * PAGE_SIZE * 0); // stack unfaulted
        assert!(sys.vma_ranges(pid).len() >= 2, "data + stack VMAs");
    }

    #[test]
    fn compact_hot_epochs_touch_hot_prefix() {
        let mut sys = sys();
        let mut w = SyntheticWorkload::new(
            spec(Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.0 }),
            1,
        );
        let pid = w.setup(&mut sys, ThpMode::Never).unwrap();
        // Drop the accessed bits the init pass left behind.
        for p in w.region().pages() {
            sys.check_accessed_clear(pid, p);
        }
        let mut batches = Vec::new();
        let compute = w.epoch(0, 0, &mut batches);
        assert_eq!(compute, 1_000_000);
        assert!(!batches.is_empty());
        let hot = w.hot_ranges(0)[0];
        assert_eq!(hot.len(), 8 << 20);
        for b in &batches {
            sys.apply_access(pid, b).unwrap();
        }
        // Hot pages have accessed bits; a far cold page does not.
        assert_eq!(sys.peek_accessed(pid, hot.start), Some(true));
        let cold_addr = w.region().end - PAGE_SIZE;
        assert_eq!(sys.peek_accessed(pid, cold_addr), Some(false));
    }

    #[test]
    fn streaming_window_moves_with_time() {
        let mut w = SyntheticWorkload::new(
            spec(Behavior::Streaming {
                window_frac: 0.1,
                stride: 1,
                apc: 8.0,
                sweep_period: daos_mm::clock::sec(10),
            }),
            1,
        );
        let mut sys = sys();
        w.setup(&mut sys, ThpMode::Never).unwrap();
        // 10 s sweep at the 5 ms nominal quantum = 2000 epochs/cycle.
        let h0 = w.hot_ranges(0)[0];
        let h5 = w.hot_ranges(1000)[0];
        assert_ne!(h0, h5);
        assert!(h5.start > h0.start);
        // After one full period the window is back.
        let h10 = w.hot_ranges(2000)[0];
        assert_eq!(h0, h10);
    }

    #[test]
    fn streaming_stride_materialises_half_the_pages() {
        let mut sys = sys();
        let mut w = SyntheticWorkload::new(
            spec(Behavior::Streaming {
                window_frac: 0.1,
                stride: 2,
                apc: 8.0,
                sweep_period: daos_mm::clock::sec(10),
            }),
            1,
        );
        let pid = w.setup(&mut sys, ThpMode::Never).unwrap();
        assert_eq!(sys.rss_bytes(pid), 16 << 20, "stride-2 init = half footprint");
    }

    #[test]
    fn phase_shift_cycles_locations() {
        let phase_len = daos_mm::clock::sec(2);
        let mut w = SyntheticWorkload::new(
            spec(Behavior::PhaseShift { nr_phases: 4, hot_frac: 0.2, apc: 4.0, phase_len }),
            1,
        );
        let mut sys = sys();
        w.setup(&mut sys, ThpMode::Never).unwrap();
        // 2 s phases = 400 epochs each.
        let locations: Vec<AddrRange> = (0..4).map(|p| w.hot_ranges(p * 400)[0]).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(locations[i], locations[j], "phases {i} and {j} overlap");
            }
        }
        assert_eq!(w.hot_ranges(4 * 400)[0], locations[0], "cycles back");
    }

    #[test]
    fn growing_footprint_builds_up() {
        let mut sys = sys();
        let mut w = SyntheticWorkload::new(
            spec(Behavior::Growing { built_by_frac: 0.5, hot_tail_frac: 0.2, apc: 4.0 }),
            1,
        );
        let pid = w.setup(&mut sys, ThpMode::Never).unwrap();
        assert_eq!(sys.rss_bytes(pid), 0, "growing workloads start empty");
        let mut batches = Vec::new();
        for idx in 0..50 {
            batches.clear();
            w.epoch(idx, idx * 5_000_000, &mut batches);
            for b in &batches {
                sys.apply_access(pid, b).unwrap();
            }
        }
        // At idx 50 of 100 epochs with built_by 0.5 → fully built.
        assert!(sys.rss_bytes(pid) >= (31 << 20), "fully built: {}", sys.rss_bytes(pid));
    }

    #[test]
    fn mostly_idle_touches_only_active_fraction() {
        let mut sys = sys();
        let mut w = SyntheticWorkload::new(
            spec(Behavior::MostlyIdle { active_frac: 0.1, apc: 4.0, stray_prob: 0.0 }),
            1,
        );
        let pid = w.setup(&mut sys, ThpMode::Never).unwrap();
        // Clear all accessed bits, run an epoch, check only 10% accessed.
        let region = w.region();
        for p in region.pages() {
            sys.check_accessed_clear(pid, p);
        }
        let mut batches = Vec::new();
        w.epoch(0, 0, &mut batches);
        let mut cost = 0;
        for b in &batches {
            cost += sys.apply_access(pid, b).unwrap().touched_pages;
        }
        let total_pages = region.nr_pages();
        assert!(cost <= total_pages / 9, "touched {cost} of {total_pages}");
    }

    #[test]
    fn expected_touches_sane() {
        let w = SyntheticWorkload::new(
            spec(Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.01 }),
            1,
        );
        let pages = (32 << 20) / PAGE_SIZE;
        let expect = w.expected_touches_per_epoch();
        assert!(expect > pages as f64 * 0.25);
        assert!(expect < pages as f64 * 0.27);
    }

    #[test]
    fn pointer_chase_hits_random_pages() {
        let mut sys = sys();
        let mut w = SyntheticWorkload::new(
            spec(Behavior::PointerChase { random_touches: 64, core_frac: 0.05, apc: 8.0 }),
            1,
        );
        let pid = w.setup(&mut sys, ThpMode::Never).unwrap();
        let mut batches = Vec::new();
        w.epoch(0, 0, &mut batches);
        let mut touched = 0;
        for b in &batches {
            touched += sys.apply_access(pid, b).unwrap().touched_pages;
        }
        let core_pages = ((32 << 20) as f64 * 0.05 / PAGE_SIZE as f64) as u64;
        assert!(touched >= core_pages);
        assert!(touched <= core_pages + 64);
    }
}
