//! Trace-backed workloads: record the exact access batches a synthetic
//! workload emits, save them as a portable text trace, and replay them
//! later — the hook for driving the stack with *real* traces (e.g.
//! converted from `damo record` output or instrumentation logs) instead
//! of the built-in generators.
//!
//! Trace format (line-oriented, `#` comments):
//!
//! ```text
//! daos-trace v1
//! footprint 50331648
//! epoch 2000000              # compute_ns for the following batches
//! all 0 8388608 4            # pattern start end apc
//! stride 8388608 50331648 2 1.5
//! prob 0 4096 0.25 1
//! random 0 50331648 64 1
//! epoch 2000000
//! ...
//! ```

use daos_mm::access::{AccessBatch, TouchPattern};
use daos_mm::addr::{AddrRange, PAGE_SIZE};
use daos_mm::clock::Ns;
use daos_mm::error::MmResult;
use daos_mm::process::{Pid, STACK_BASE};
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;

use crate::workload::Workload;

/// One recorded epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEpoch {
    /// Pure-CPU time of the epoch (reference clock).
    pub compute_ns: Ns,
    /// Access batches, with ranges relative to the mapping base.
    pub batches: Vec<AccessBatch>,
}

/// A complete recorded trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Bytes of address space the trace needs mapped.
    pub footprint: u64,
    /// The epochs, in order.
    pub epochs: Vec<TraceEpoch>,
}

impl Trace {
    /// Serialise to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("daos-trace v1\n");
        out.push_str(&format!("footprint {}\n", self.footprint));
        for e in &self.epochs {
            out.push_str(&format!("epoch {}\n", e.compute_ns));
            for b in &e.batches {
                let (s, eaddr) = (b.range.start, b.range.end);
                match b.pattern {
                    TouchPattern::All => {
                        out.push_str(&format!("all {s} {eaddr} {}\n", b.accesses_per_page))
                    }
                    TouchPattern::Stride(n) => out.push_str(&format!(
                        "stride {s} {eaddr} {n} {}\n",
                        b.accesses_per_page
                    )),
                    TouchPattern::Prob(p) => out.push_str(&format!(
                        "prob {s} {eaddr} {p} {}\n",
                        b.accesses_per_page
                    )),
                    TouchPattern::Random { count } => out.push_str(&format!(
                        "random {s} {eaddr} {count} {}\n",
                        b.accesses_per_page
                    )),
                }
            }
        }
        out
    }

    /// Parse the text format.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate().filter_map(|(i, l)| {
            let l = l.split('#').next().unwrap_or("").trim();
            (!l.is_empty()).then_some((i + 1, l))
        });
        match lines.next() {
            Some((_, "daos-trace v1")) => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut trace = Trace::default();
        for (ln, line) in lines {
            let tok: Vec<&str> = line.split_whitespace().collect();
            let num = |s: &str| -> Result<u64, String> {
                s.parse().map_err(|_| format!("line {ln}: bad number '{s}'"))
            };
            let fnum = |s: &str| -> Result<f32, String> {
                s.parse().map_err(|_| format!("line {ln}: bad number '{s}'"))
            };
            match tok[0] {
                "footprint" if tok.len() == 2 => trace.footprint = num(tok[1])?,
                "epoch" if tok.len() == 2 => trace
                    .epochs
                    .push(TraceEpoch { compute_ns: num(tok[1])?, batches: Vec::new() }),
                pattern => {
                    let epoch = trace
                        .epochs
                        .last_mut()
                        .ok_or(format!("line {ln}: batch before any 'epoch' line"))?;
                    let batch = match (pattern, tok.len()) {
                        ("all", 4) => AccessBatch::all(
                            AddrRange::new(num(tok[1])?, num(tok[2])?),
                            fnum(tok[3])?,
                        ),
                        ("stride", 5) => AccessBatch::stride(
                            AddrRange::new(num(tok[1])?, num(tok[2])?),
                            num(tok[3])? as u32,
                            fnum(tok[4])?,
                        ),
                        ("prob", 5) => AccessBatch::prob(
                            AddrRange::new(num(tok[1])?, num(tok[2])?),
                            fnum(tok[3])?,
                            fnum(tok[4])?,
                        ),
                        ("random", 5) => AccessBatch::random(
                            AddrRange::new(num(tok[1])?, num(tok[2])?),
                            num(tok[3])? as u32,
                            fnum(tok[4])?,
                        ),
                        _ => return Err(format!("line {ln}: unrecognised record '{line}'")),
                    };
                    epoch.batches.push(batch);
                }
            }
        }
        Ok(trace)
    }

    /// Record a trace by running another workload's generator.
    pub fn record<W: Workload>(wl: &mut W, footprint: u64, base: u64) -> Trace {
        let mut trace = Trace { footprint, epochs: Vec::new() };
        let mut batches = Vec::new();
        for idx in 0..wl.nr_epochs() {
            batches.clear();
            let compute_ns = wl.epoch(idx, idx * crate::spec::EPOCH_TARGET, &mut batches);
            trace.epochs.push(TraceEpoch {
                compute_ns,
                batches: batches
                    .iter()
                    .map(|b| AccessBatch {
                        range: AddrRange::new(
                            b.range.start.saturating_sub(base),
                            b.range.end.saturating_sub(base),
                        ),
                        ..*b
                    })
                    .collect(),
            });
        }
        trace
    }
}

/// A [`Workload`] that replays a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    trace: Trace,
    pid: Pid,
    base: u64,
}

impl TraceWorkload {
    /// Wrap a trace for replay.
    pub fn new(name: &str, trace: Trace) -> Self {
        Self { name: name.to_string(), trace, pid: 0, base: 0 }
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> String {
        format!("trace/{}", self.name)
    }

    fn setup(&mut self, sys: &mut MemorySystem, thp: ThpMode) -> MmResult<Pid> {
        let pid = sys.spawn();
        self.pid = pid;
        let region = sys.mmap(pid, self.trace.footprint.max(PAGE_SIZE), thp)?;
        self.base = region.start;
        sys.mmap_at(pid, STACK_BASE, 64 * PAGE_SIZE, ThpMode::Never)?;
        Ok(pid)
    }

    fn nr_epochs(&self) -> u64 {
        self.trace.epochs.len() as u64
    }

    fn epoch(&mut self, idx: u64, _now: Ns, out: &mut Vec<AccessBatch>) -> Ns {
        let Some(e) = self.trace.epochs.get(idx as usize) else { return 0 };
        for b in &e.batches {
            out.push(AccessBatch {
                range: AddrRange::new(self.base + b.range.start, self.base + b.range.end),
                ..*b
            });
        }
        e.compute_ns
    }

    fn hot_ranges(&self, idx: u64) -> Vec<AddrRange> {
        // Best effort: everything the epoch touches.
        self.trace
            .epochs
            .get(idx as usize)
            .map(|e| {
                e.batches
                    .iter()
                    .map(|b| AddrRange::new(self.base + b.range.start, self.base + b.range.end))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn pid(&self) -> Pid {
        self.pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Behavior, Suite, WorkloadSpec};
    use crate::workload::SyntheticWorkload;
    use daos_mm::machine::MachineProfile;
    use daos_mm::swap::SwapConfig;

    fn sample_trace() -> Trace {
        Trace {
            footprint: 8 << 20,
            epochs: vec![
                TraceEpoch {
                    compute_ns: 1_000_000,
                    batches: vec![
                        AccessBatch::all(AddrRange::new(0, 1 << 20), 4.0),
                        AccessBatch::random(AddrRange::new(1 << 20, 8 << 20), 32, 1.0),
                    ],
                },
                TraceEpoch {
                    compute_ns: 2_000_000,
                    batches: vec![
                        AccessBatch::stride(AddrRange::new(0, 4 << 20), 2, 1.5),
                        AccessBatch::prob(AddrRange::new(0, 1 << 20), 0.25, 1.0),
                    ],
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let t = sample_trace();
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_errors() {
        assert!(Trace::from_text("not a trace").is_err());
        assert!(Trace::from_text("daos-trace v1\nall 0 100 1\n").is_err(), "batch before epoch");
        assert!(Trace::from_text("daos-trace v1\nepoch x\n").is_err());
        assert!(Trace::from_text("daos-trace v1\nepoch 1\nwarp 0 1 2\n").is_err());
        // Comments and blanks are fine.
        let t = Trace::from_text("daos-trace v1\n# hi\n\nfootprint 4096\n").unwrap();
        assert_eq!(t.footprint, 4096);
    }

    #[test]
    fn replay_reproduces_recorded_behaviour() {
        // Record a synthetic workload, replay the trace, and compare the
        // resulting memory state — they must match page for page.
        let spec = WorkloadSpec {
            name: "t",
            suite: Suite::Parsec3,
            footprint: 8 << 20,
            nr_epochs: 50,
            compute_ns: 1_000_000,
            behavior: Behavior::CompactHot { hot_frac: 0.25, apc: 4.0, cold_touch_prob: 0.0 },
        };
        let machine = MachineProfile::test_tiny();

        // Original run.
        let mut sys_a = MemorySystem::new(machine.clone(), SwapConfig::paper_zram(), 3);
        let mut wl = SyntheticWorkload::new(spec, 3);
        let pid_a = wl.setup(&mut sys_a, ThpMode::Never).unwrap();
        let base_a = wl.region().start;
        let mut batches = Vec::new();
        let mut rss_a = Vec::new();
        for idx in 0..wl.nr_epochs() {
            batches.clear();
            wl.epoch(idx, 0, &mut batches);
            for b in &batches {
                sys_a.apply_access(pid_a, b).unwrap();
            }
            rss_a.push(sys_a.rss_bytes(pid_a));
        }

        // Record (fresh instance with the same seed) and replay.
        let mut recorder = SyntheticWorkload::new(spec, 3);
        let mut sys_tmp = MemorySystem::new(machine.clone(), SwapConfig::paper_zram(), 3);
        recorder.setup(&mut sys_tmp, ThpMode::Never).unwrap();
        let base = recorder.region().start;
        let trace = Trace::record(&mut recorder, spec.footprint, base);

        let mut sys_b = MemorySystem::new(machine, SwapConfig::paper_zram(), 3);
        let mut replay = TraceWorkload::new("t", trace);
        let pid_b = replay.setup(&mut sys_b, ThpMode::Never).unwrap();
        // The replay does not run the init pass, so fault the footprint
        // in the same way setup did.
        sys_b
            .apply_access(pid_b, &AccessBatch::all(AddrRange::new(base_a, base_a + spec.footprint), 1.0))
            .unwrap();
        for idx in 0..replay.nr_epochs() {
            batches.clear();
            replay.epoch(idx, 0, &mut batches);
            for b in &batches {
                sys_b.apply_access(pid_b, b).unwrap();
            }
            assert_eq!(sys_b.rss_bytes(pid_b), rss_a[idx as usize], "epoch {idx}");
        }
    }
}
