//! # daos-workloads — workload analogs for the DAOS evaluation
//!
//! Synthetic reproductions of the access behaviour of the 24 Parsec3 and
//! Splash-2x workloads the paper evaluates with, plus the §4.4 serverless
//! production fleet. DAMON only ever observes *which pages are touched
//! when*, so generators that reproduce each workload's spatio-temporal
//! access pattern (as visible in the paper's Fig. 6 heatmaps) exercise
//! the monitoring, scheme and tuning code paths identically to the real
//! binaries — at laptop scale and deterministically.
//!
//! ```
//! use daos_workloads::{paper_suite, instantiate, Workload};
//! use daos_mm::{MachineProfile, MemorySystem, SwapConfig, ThpMode};
//!
//! let spec = paper_suite()[0]; // parsec3/blackscholes
//! let mut wl = instantiate(spec, 42);
//! let mut sys = MemorySystem::new(MachineProfile::i3_metal(), SwapConfig::paper_zram(), 42);
//! let pid = wl.setup(&mut sys, ThpMode::Never).unwrap();
//! assert_eq!(sys.rss_bytes(pid), spec.footprint);
//! ```

pub mod serverless;
pub mod spec;
pub mod suite;
pub mod trace;
pub mod workload;

pub use serverless::{FleetConfig, ServerlessFleet};
pub use spec::{Behavior, Suite, WorkloadSpec, EPOCH_TARGET};
pub use suite::{by_path, fig4_subset, instantiate, paper_suite};
pub use trace::{Trace, TraceEpoch, TraceWorkload};
pub use workload::{SyntheticWorkload, Workload};
