//! The production serverless workload of §4.4 / Fig. 9.
//!
//! "The production system is composed of several processes running to
//! serve client requests. The measured memory overhead of this service is
//! relatively large, with a difference between resident sets and working
//! sets of approximately 90%."
//!
//! We model a fleet of worker processes, each with a large resident heap
//! of which only ~10 % is ever touched while serving requests; request
//! arrivals touch the hot part plus occasional cold strays.

use daos_mm::access::AccessBatch;
use daos_mm::addr::AddrRange;
use daos_mm::clock::Ns;
use daos_mm::error::MmResult;
use daos_mm::process::Pid;
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;
use daos_util::rng::SmallRng;

/// Fleet configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of worker processes.
    pub nr_workers: usize,
    /// Heap size per worker.
    pub worker_footprint: u64,
    /// Fraction of each heap that the request path actually uses
    /// (the paper reports a ~90 % resident/working-set gap → 0.1).
    pub working_frac: f64,
    /// Accesses per hot page per epoch.
    pub apc: f32,
    /// Per-epoch probability that a request strays into cold heap.
    pub stray_prob: f32,
    /// Pure-CPU request handling per worker per epoch, ns.
    pub compute_ns: Ns,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nr_workers: 8,
            worker_footprint: 24 << 20,
            working_frac: 0.1,
            apc: 4.0,
            stray_prob: 0.02,
            compute_ns: 500_000,
        }
    }
}

impl FleetConfig {
    /// One worker process as a [`crate::WorkloadSpec`]: a mostly-idle
    /// heap of `worker_footprint` bytes whose request path touches only
    /// `working_frac` of it. The fleet engine replicates this spec per
    /// process (each with its own seed), which is how the §4.4 service
    /// scales past the in-process [`ServerlessFleet`] model.
    pub fn worker_spec(&self, nr_epochs: u64) -> crate::WorkloadSpec {
        crate::WorkloadSpec {
            name: "serverless",
            suite: crate::Suite::Fleet,
            footprint: self.worker_footprint,
            nr_epochs,
            compute_ns: self.compute_ns,
            behavior: crate::Behavior::MostlyIdle {
                active_frac: self.working_frac,
                apc: self.apc,
                stray_prob: self.stray_prob,
            },
        }
    }
}

/// A running serverless fleet.
#[derive(Debug)]
pub struct ServerlessFleet {
    cfg: FleetConfig,
    workers: Vec<(Pid, AddrRange)>,
    rng: SmallRng,
}

impl ServerlessFleet {
    /// Create the fleet (workers not yet spawned).
    pub fn new(cfg: FleetConfig, seed: u64) -> Self {
        Self { cfg, workers: Vec::new(), rng: SmallRng::seed_from_u64(seed) }
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Spawn all workers and build their heaps (everything resident, as
    /// the production service's startup does).
    pub fn setup(&mut self, sys: &mut MemorySystem) -> MmResult<()> {
        for _ in 0..self.cfg.nr_workers {
            let pid = sys.spawn();
            let heap = sys.mmap(pid, self.cfg.worker_footprint, ThpMode::Never)?;
            sys.apply_access(pid, &AccessBatch::all(heap, 1.0))?;
            self.workers.push((pid, heap));
        }
        Ok(())
    }

    /// The worker pids.
    pub fn pids(&self) -> Vec<Pid> {
        self.workers.iter().map(|w| w.0).collect()
    }

    /// Serve one epoch of requests across the fleet; returns the total
    /// cost (the caller advances the clock).
    pub fn epoch(&mut self, sys: &mut MemorySystem) -> MmResult<Ns> {
        let mut cost = 0;
        for &(pid, heap) in &self.workers {
            let hot_end = heap.start
                + ((heap.len() as f64 * self.cfg.working_frac) as u64 / 4096) * 4096;
            let hot = AddrRange::new(heap.start, hot_end);
            let out = sys.apply_access(pid, &AccessBatch::all(hot, self.cfg.apc))?;
            cost += out.cost_ns;
            if self.rng.random::<f32>() < self.cfg.stray_prob {
                let cold = AddrRange::new(hot_end, heap.end);
                let out = sys.apply_access(pid, &AccessBatch::random(cold, 2, 1.0))?;
                cost += out.cost_ns;
            }
            cost += self.cfg.compute_ns;
        }
        Ok(cost)
    }

    /// Total resident bytes across the fleet.
    pub fn total_rss(&self, sys: &MemorySystem) -> u64 {
        self.workers.iter().map(|&(pid, _)| sys.rss_bytes(pid)).sum()
    }

    /// Total *system memory* attributable to the fleet: RSS plus the
    /// memory the zram device holds for its swapped pages. This is the
    /// honest Fig. 9 metric — zram savings are smaller than file-swap
    /// savings precisely because compressed pages still occupy DRAM.
    pub fn total_memory_usage(&self, sys: &MemorySystem) -> u64 {
        let zram_resident = match sys.swap().config() {
            daos_mm::swap::SwapConfig::Zram { .. } => sys.swap().used_bytes(),
            _ => 0,
        };
        self.total_rss(sys) + zram_resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::machine::MachineProfile;
    use daos_mm::swap::SwapConfig;

    fn sys(swap: SwapConfig) -> MemorySystem {
        let mut m = MachineProfile::i3_metal();
        m.dram_bytes = 512 << 20;
        MemorySystem::new(m, swap, 11)
    }

    #[test]
    fn fleet_builds_full_resident_sets() {
        let mut sys = sys(SwapConfig::paper_zram());
        let mut fleet = ServerlessFleet::new(FleetConfig::default(), 1);
        fleet.setup(&mut sys).unwrap();
        let expect = 8 * (24 << 20) as u64;
        assert_eq!(fleet.total_rss(&sys), expect);
        assert_eq!(fleet.pids().len(), 8);
    }

    #[test]
    fn requests_touch_only_working_set() {
        let mut sys = sys(SwapConfig::paper_zram());
        let mut fleet = ServerlessFleet::new(
            FleetConfig { stray_prob: 0.0, ..FleetConfig::default() },
            1,
        );
        fleet.setup(&mut sys).unwrap();
        // Clear all accessed bits.
        for &(pid, heap) in &fleet.workers {
            for p in heap.pages() {
                sys.check_accessed_clear(pid, p);
            }
        }
        fleet.epoch(&mut sys).unwrap();
        // Only ~10% of each heap should be young now.
        let (pid, heap) = fleet.workers[0];
        let young = heap.pages().filter(|&p| sys.peek_accessed(pid, p) == Some(true)).count();
        let total = heap.nr_pages() as usize;
        assert!(young * 9 <= total, "young {young} of {total}");
        assert!(young > 0);
    }

    #[test]
    fn memory_usage_counts_zram_residency() {
        let mut sys = sys(SwapConfig::Zram { capacity_bytes: 256 << 20, compression_ratio: 4.0 });
        let mut fleet = ServerlessFleet::new(FleetConfig::default(), 1);
        fleet.setup(&mut sys).unwrap();
        let before = fleet.total_memory_usage(&sys);
        // Page out one worker's entire heap (reference pass + eviction).
        let (pid, heap) = fleet.workers[0];
        sys.pageout(pid, heap).unwrap();
        sys.pageout(pid, heap).unwrap();
        let after = fleet.total_memory_usage(&sys);
        // RSS dropped by the heap, but zram holds heap/4 of it.
        let heap_len = heap.len();
        assert_eq!(after, before - heap_len + heap_len / 4);
    }
}
